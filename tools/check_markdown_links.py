#!/usr/bin/env python
"""Check that intra-repository Markdown links resolve.

Scans ``README.md`` and every ``docs/*.md`` file for inline links
(``[text](target)``), skips external targets (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``), and verifies that each
remaining target — resolved relative to the file containing the link,
with any ``#fragment`` stripped — exists on disk.

Used by the CI docs job and wrapped by ``tests/docs/test_docs.py``.
Exit code 0 when every link resolves; 1 otherwise, with one line per
broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Inline Markdown links, excluding images; target is group 1.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path) -> Iterator[Path]:
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_file(path: Path, root: Path) -> List[Tuple[int, str]]:
    """Broken links of one file as ``(line_number, target)`` pairs."""
    broken: List[Tuple[int, str]] = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                broken.append((line_number, f"{target} (escapes the repository)"))
                continue
            if not resolved.exists():
                broken.append((line_number, target))
    return broken


def main(root: Path) -> int:
    failures = 0
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        for line_number, target in check_file(path, root):
            failures += 1
            print(f"{path.relative_to(root)}:{line_number}: broken link -> {target}")
    if not checked:
        print("no Markdown files found", file=sys.stderr)
        return 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all intra-repo links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    repo_root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    sys.exit(main(repo_root))
