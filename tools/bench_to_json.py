#!/usr/bin/env python
"""Record benchmark trajectory points as ``BENCH_*.json``.

Runs one of the repo's measurement protocols — the sharded-engine
throughput of ``benchmarks/test_bench_sharded.py``, the matching
hot-path throughput of ``benchmarks/test_bench_matching.py``, the
delta-repair vs per-window re-solve comparison of
``benchmarks/test_bench_dynamic.py`` (``churn_city``), or the dispatch
service quote latency of ``benchmarks/test_bench_service.py``
(``hotspot_burst``; the others run ``city_scale``) — by default at the
full ~1M-task horizon, and
**appends** the result to the machine-readable baseline future perf PRs
are compared against::

    PYTHONPATH=src python tools/bench_to_json.py                     # sharded, full 1M run
    PYTHONPATH=src python tools/bench_to_json.py --benchmark matching
    PYTHONPATH=src python tools/bench_to_json.py --benchmark dynamic
    PYTHONPATH=src python tools/bench_to_json.py --scale 0.05        # quick look
    PYTHONPATH=src python tools/bench_to_json.py --shards 1 8 --halo 2
    PYTHONPATH=src python tools/bench_to_json.py --benchmark matching \
        --configs vectorized capped-16 vgreedy

Output schema: ``{"benchmark": ..., "runs": [run, run, ...]}`` where each
run carries the measurement payload plus ``host`` and ``created``
metadata.  Appending (the default) preserves the existing trajectory so
the files accumulate one point per significant change; ``--overwrite``
starts a fresh trajectory.  Legacy single-run files (the original
``BENCH_sharded.json`` layout) are wrapped into the trajectory schema on
first append — readers should accept both.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.bench_dynamic import (  # noqa: E402
    measure_dynamic_throughput,
)
from repro.experiments.bench_matching import (  # noqa: E402
    DEFAULT_CONFIGS,
    measure_matching_throughput,
)
from repro.experiments.bench_runtime import (  # noqa: E402
    measure_multicore_scaling,
    measure_runtime_throughput,
)
from repro.experiments.bench_service import measure_service_latency  # noqa: E402
from repro.experiments.bench_sharded import measure_sharded_throughput  # noqa: E402
from repro.kernels import (  # noqa: E402
    KERNEL_MODES,
    active_kernel_mode,
    numba_version,
    set_kernel_mode,
)
from repro.utils.affinity import effective_cpu_count  # noqa: E402

DEFAULT_OUTPUTS = {
    "sharded": REPO_ROOT / "BENCH_sharded.json",
    "matching": REPO_ROOT / "BENCH_matching.json",
    "runtime": REPO_ROOT / "BENCH_runtime.json",
    "dynamic": REPO_ROOT / "BENCH_dynamic.json",
    "service": REPO_ROOT / "BENCH_service.json",
}


def git_provenance() -> dict:
    """The repo's git SHA (and dirty flag) for run attribution.

    Benchmark trajectories accumulate one point per PR; without the SHA
    a regression cannot be traced back to the change that caused it.
    Degrades to ``None`` fields outside a git checkout.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return {"sha": sha, "dirty": bool(status)}
    except (OSError, subprocess.CalledProcessError):  # pragma: no cover - no git
        return {"sha": None, "dirty": None}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Measure a city_scale benchmark and append it to BENCH_*.json"
    )
    parser.add_argument(
        "--benchmark",
        choices=sorted(DEFAULT_OUTPUTS),
        default="sharded",
        help="measurement protocol to run (default sharded)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="horizon scale (1.0 = the ~1M-task horizon)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 4, 8],
        help="[sharded] shard counts to measure (1 = the global baseline)",
    )
    parser.add_argument(
        "--halo", type=int, default=1, help="[sharded] halo band width in cells"
    )
    parser.add_argument(
        "--configs",
        nargs="+",
        default=None,
        metavar="CONFIG",
        help="[matching] hot-path configurations (e.g. loop vectorized "
        "capped-16 vgreedy capped-8+warm); [runtime] data-plane "
        "configurations (pr4-baseline columnar columnar-vgreedy)",
    )
    parser.add_argument(
        "--max-degree",
        type=int,
        default=16,
        help="[runtime] per-task adjacency cap of the compound "
        "configuration (default 16)",
    )
    parser.add_argument(
        "--kernels",
        choices=list(KERNEL_MODES),
        default="auto",
        help="kernel implementation family for the scalar hot loops "
        "(auto = numba when installed, else the pure-Python fallback)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="[runtime] also measure process-per-shard scaling at these "
        "shard_jobs counts (e.g. --cores 1 2 4 8) and attach the curve "
        "to the recorded run",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload and engine seed")
    parser.add_argument(
        "--strategy", default="BaseP", help="pricing strategy to drive the runs"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output path (default: BENCH_<benchmark>.json at the repo root)",
    )
    parser.add_argument(
        "--overwrite",
        action="store_true",
        help="start a fresh trajectory instead of appending to an existing file",
    )
    return parser


def load_trajectory(path: Path, benchmark_name: str) -> dict:
    """Load (or initialise) a trajectory file, wrapping legacy layouts."""
    if not path.exists():
        return {"benchmark": benchmark_name, "runs": []}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if "runs" in payload:
        return payload
    # Legacy single-run layout: the whole object is one run.
    return {"benchmark": payload.get("benchmark", benchmark_name), "runs": [payload]}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    output = args.output or DEFAULT_OUTPUTS[args.benchmark]
    set_kernel_mode(args.kernels)
    if args.cores and args.benchmark != "runtime":
        raise SystemExit("--cores only applies to --benchmark runtime")
    if args.benchmark == "dynamic":
        scenario = "churn_city"
    elif args.benchmark == "service":
        scenario = "hotspot_burst"
    else:
        scenario = "city_scale"
    print(
        f"measuring {scenario} [{args.benchmark}] at scale {args.scale:g} "
        f"(kernels = {active_kernel_mode()}) ..."
    )
    if args.benchmark == "sharded":
        run = measure_sharded_throughput(
            scale=args.scale,
            shard_counts=tuple(args.shards),
            halo=args.halo,
            seed=args.seed,
            strategy=args.strategy,
        )
    elif args.benchmark == "runtime":
        from repro.experiments.bench_runtime import RUNTIME_CONFIGS

        run = measure_runtime_throughput(
            scale=args.scale,
            configs=tuple(args.configs or RUNTIME_CONFIGS),
            shards=args.shards[-1] if args.shards else 8,
            halo=args.halo,
            max_degree=args.max_degree,
            seed=args.seed,
            strategy=args.strategy,
        )
        if args.cores:
            print(f"measuring multi-core scaling at shard_jobs {args.cores} ...")
            run["multicore"] = measure_multicore_scaling(
                scale=args.scale,
                core_counts=tuple(args.cores),
                shards=args.shards[-1] if args.shards else 8,
                max_degree=args.max_degree,
                seed=args.seed,
                strategy=args.strategy,
            )
    elif args.benchmark == "dynamic":
        run = measure_dynamic_throughput(scale=args.scale, seed=args.seed)
    elif args.benchmark == "service":
        run = measure_service_latency(
            scale=args.scale, seed=args.seed, strategy=args.strategy
        )
    else:
        run = measure_matching_throughput(
            scale=args.scale,
            configs=tuple(args.configs or DEFAULT_CONFIGS),
            seed=args.seed,
            strategy=args.strategy,
        )
    run["host"] = {
        "cpu_count": os.cpu_count(),
        # What the process may actually use — a container cpuset or
        # taskset restriction makes this smaller than cpu_count, and
        # trajectory points are meaningless without it.
        "effective_cores": effective_cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "kernels": active_kernel_mode(),
        "numba": numba_version(),
    }
    run["created"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    # Attribution: which commit produced the point, and with what exact
    # invocation — BENCH_*.json trajectories span many PRs.
    run["git"] = git_provenance()
    run["cli_config"] = {
        key: (str(value) if isinstance(value, Path) else value)
        for key, value in sorted(vars(args).items())
    }

    if args.overwrite:
        trajectory = {"benchmark": run["benchmark"], "runs": []}
    else:
        trajectory = load_trajectory(output, run["benchmark"])
        if trajectory["runs"] and trajectory["benchmark"] != run["benchmark"]:
            raise SystemExit(
                f"refusing to append a {run['benchmark']!r} run to {output} "
                f"({trajectory['benchmark']!r} trajectory); pass --overwrite "
                "or a different --output"
            )
    trajectory["runs"].append(run)
    output.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")

    for point in run["results"]:
        label = point.get("config") or f"shards={point['shards']}"
        print(
            f"{label}: {point['seconds']:.1f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}"
        )
    if args.benchmark == "sharded":
        headline = run["speedup_vs_single_shard"].get("8", 1.0)
        print(f"speedup 8-vs-1: {headline:.2f}x  -> {output}")
    elif args.benchmark == "dynamic":
        headline = run["speedup_vs_baseline"]["delta"]
        print(
            f"delta speedup: {headline:.2f}x at "
            f"{run['churn_per_window']:.0%} churn "
            f"({run['windows_bit_identical']} windows bit-identical)  "
            f"-> {output}"
        )
        exact = run.get("exact")
        if exact:
            print(
                f"exact (uncapped) incremental vs delta: "
                f"{exact['speedup_incremental_vs_delta']:.2f}x "
                f"(end-to-end {exact['speedup_incremental_vs_delta_end_to_end']:.2f}x, "
                f"{exact['windows_bit_identical']} windows bit-identical over "
                f"{exact['epochs']} epoch(s))"
            )
    elif args.benchmark == "service":
        gate = run["differential"]
        print(
            f"quote latency p50={run['p50_quote_ms']:.2f}ms "
            f"p99={run['p99_quote_ms']:.2f}ms at "
            f"{run['sustained_arrivals_per_second']:.0f} arrivals/s "
            f"(offline differential: revenue bitwise "
            f"{'OK' if gate['revenue_bitwise_equal'] else 'DIVERGED'})  "
            f"-> {output}"
        )
        speedup = run.get("speedup_incremental_quote_p50")
        if speedup:
            print(
                f"incremental session p50 speedup vs universe matcher: "
                f"{speedup:.2f}x (backends bitwise "
                f"{'OK' if gate.get('backends_bitwise_equal') else 'DIVERGED'})"
            )
    else:
        best = max(run["speedup_vs_baseline"].items(), key=lambda item: item[1])
        print(f"best speedup: {best[0]} {best[1]:.2f}x  -> {output}")
    if "multicore" in run:
        curve = run["multicore"]
        for point in curve["results"]:
            print(
                f"shard_jobs={point['shard_jobs']}: {point['seconds']:.1f}s  "
                f"{point['tasks_per_second']:.0f} tasks/s  "
                f"({curve['speedup_vs_1core'][str(point['shard_jobs'])]:.2f}x)"
            )
        print(f"effective cores: {curve['effective_cores']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
