#!/usr/bin/env python
"""Record the sharded-engine throughput trajectory as ``BENCH_*.json``.

Runs the same measurement protocol as ``benchmarks/test_bench_sharded.py``
(see :mod:`repro.experiments.bench_sharded`) — by default at the full
``city_scale`` horizon (~1M tasks) — and writes the machine-readable
baseline future perf PRs are compared against::

    PYTHONPATH=src python tools/bench_to_json.py                 # full 1M run
    PYTHONPATH=src python tools/bench_to_json.py --scale 0.05    # quick look
    PYTHONPATH=src python tools/bench_to_json.py --shards 1 8 --halo 2

The output (default ``BENCH_sharded.json`` at the repository root)
contains tasks/sec per shard count, the speedups and revenue ratios
against the single-shard global solve, and the host context needed to
interpret them.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.bench_sharded import measure_sharded_throughput  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Measure city_scale sharded throughput and write BENCH_sharded.json"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="city_scale horizon scale (1.0 = the ~1M-task horizon)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 4, 8],
        help="shard counts to measure (1 = the global solve baseline)",
    )
    parser.add_argument("--halo", type=int, default=1, help="halo band width in cells")
    parser.add_argument("--seed", type=int, default=0, help="workload and engine seed")
    parser.add_argument(
        "--strategy", default="BaseP", help="pricing strategy to drive the runs"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_sharded.json",
        help="output path (default: BENCH_sharded.json at the repo root)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    print(
        f"measuring city_scale at scale {args.scale:g} "
        f"(shards {args.shards}, halo {args.halo}) ..."
    )
    payload = measure_sharded_throughput(
        scale=args.scale,
        shard_counts=tuple(args.shards),
        halo=args.halo,
        seed=args.seed,
        strategy=args.strategy,
    )
    payload["host"] = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    payload["created"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for point in payload["results"]:
        print(
            f"shards={point['shards']}: {point['seconds']:.1f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}"
        )
    print(
        f"speedup 8-vs-1: {payload['speedup_vs_single_shard'].get('8', 1.0):.2f}x  "
        f"-> {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
