#!/usr/bin/env python
"""cProfile harness over any scenario / strategy / backend combination.

Perf PRs should start from evidence, not intuition: this tool runs one
simulation under ``cProfile`` and prints the top-N hotspots, so "where
does the time go?" is one command::

    PYTHONPATH=src python tools/profile_run.py                       # defaults
    PYTHONPATH=src python tools/profile_run.py --scenario city_scale \
        --scale 0.02 --strategy BaseP
    PYTHONPATH=src python tools/profile_run.py --scenario city_scale \
        --scale 0.02 --shards 8 --halo 1 --sort tottime --top 40
    PYTHONPATH=src python tools/profile_run.py --scenario hotspot_burst \
        --streaming --window 0.5
    PYTHONPATH=src python tools/profile_run.py --shards 8 --dynamic \
        --warm-shards          # warm per-shard incremental matching
    PYTHONPATH=src python tools/profile_run.py --scenario hotspot_burst \
        --service --scale 0.05  # event-at-a-time DispatchSession quoting
    PYTHONPATH=src python tools/profile_run.py --max-degree 8 --warm-start \
        --output hotpath.pstats   # dump for snakeviz/pstats browsing

The same measurement is available inline as ``repro-experiments
--scenario ... --profile [N]``; this standalone harness adds sort-order
control, ``.pstats`` dumps and a calibration-free fast path (the strategy
is built directly, skipping Algorithm 1, so the profile isolates the
dispatch loop).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.matching.registry import available_backends  # noqa: E402
from repro.pricing.registry import available_strategies, create_strategy  # noqa: E402
from repro.simulation.scenarios import available_scenarios, get_scenario  # noqa: E402
from repro.simulation.sharded import ShardedEngine  # noqa: E402
from repro.simulation.streaming import EventStreamingEngine, StreamingEngine  # noqa: E402

# Importing the backend implementations registers them.
import repro.matching.weighted  # noqa: E402,F401


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Profile one simulation run and print the top hotspots."
    )
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="city_scale",
        help="registered scenario to run (default city_scale)",
    )
    parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default="BaseP",
        help="pricing strategy (default BaseP: cheap quoting keeps the "
        "profile dominated by the dispatch hot path)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="matroid",
        help="matching backend (default matroid)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.01, help="scenario scale (default 0.01)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/engine seed")
    parser.add_argument(
        "--base-price", type=float, default=2.0, help="strategy base price"
    )
    parser.add_argument(
        "--shards", type=int, default=1, help="shard count (default 1 = global solve)"
    )
    parser.add_argument("--halo", type=int, default=1, help="halo band width in cells")
    parser.add_argument(
        "--max-degree",
        type=int,
        default=None,
        metavar="K",
        help="cap each task at its K nearest workers (default: exact graph)",
    )
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help="enable cross-period warm-start hints",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="drive the event-driven streaming engine instead of the batch one",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=1.0,
        help="streaming dispatch window length (requires --streaming)",
    )
    parser.add_argument(
        "--dynamic",
        action="store_true",
        help="run halo reconciliation through the dynamic delta-repair "
        "matching backend (sharded mode)",
    )
    parser.add_argument(
        "--warm-shards",
        action="store_true",
        help="keep one incremental adjacency plane + lazy matcher per "
        "shard alive across periods (sharded mode, matroid backend)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="profile the event-at-a-time DispatchSession quote path "
        "(the service hot loop, without the socket layer)",
    )
    parser.add_argument(
        "--task-lifetime",
        type=float,
        default=4.0,
        help="quote validity horizon in stream time units (requires "
        "--service; default 4.0)",
    )
    parser.add_argument(
        "--universe-matcher",
        action="store_true",
        help="force the session onto the classic pre-built universe "
        "DynamicMatcher instead of the incremental adjacency plane "
        "(requires --service)",
    )
    parser.add_argument(
        "--top", type=int, default=30, help="hotspot rows to print (default 30)"
    )
    parser.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "ncalls"],
        default="cumulative",
        help="pstats sort order (default cumulative)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE.pstats",
        help="also dump the raw profile for pstats/snakeviz browsing",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.top < 1:
        raise SystemExit("--top must be a positive integer")
    if args.window <= 0:
        raise SystemExit("--window must be positive")
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.task_lifetime <= 0:
        raise SystemExit("--task-lifetime must be positive")
    if args.service and args.streaming:
        raise SystemExit("--service and --streaming are mutually exclusive")
    if args.universe_matcher and not args.service:
        raise SystemExit("--universe-matcher requires --service")
    if (args.dynamic or args.warm_shards) and (args.streaming or args.service):
        raise SystemExit("--dynamic/--warm-shards are sharded-engine modes")

    scenario = get_scenario(args.scenario)
    strategy = create_strategy(args.strategy, base_price=args.base_price)
    if args.service:
        stream = scenario.stream(scale=args.scale, seed=args.seed)
        engine = EventStreamingEngine(
            stream,
            seed=args.seed,
            task_lifetime=args.task_lifetime,
            max_degree=args.max_degree,
            incremental=False if args.universe_matcher else None,
        )
        backend_name = "universe" if args.universe_matcher else "incremental"
        mode = f"service session ({backend_name} matcher)"
    elif args.streaming:
        stream = scenario.stream(scale=args.scale, seed=args.seed)
        engine = StreamingEngine(
            stream,
            seed=args.seed,
            window=args.window,
            matching_backend=args.backend,
            max_degree=args.max_degree,
            warm_start=args.warm_start,
        )
        mode = f"streaming (window={args.window:g})"
    else:
        if hasattr(scenario, "chunked"):
            workload = scenario.chunked(scale=args.scale, seed=args.seed)
        else:
            workload = scenario.bundle(scale=args.scale, seed=args.seed)
        engine = ShardedEngine(
            workload,
            num_shards=args.shards,
            halo=args.halo if args.shards > 1 else 0,
            seed=args.seed,
            matching_backend=args.backend,
            max_degree=args.max_degree,
            warm_start=args.warm_start,
            dynamic=args.dynamic,
            warm_shards=args.warm_shards,
            # The warm path keeps per-shard object-pool state alive, so it
            # needs the object workload even when columns are available.
            columnar=False if args.warm_shards else None,
        )
        mode = f"sharded (shards={args.shards})" if args.shards > 1 else "batch"
        flags = [flag for flag, on in (("dynamic", args.dynamic),
                                       ("warm-shards", args.warm_shards)) if on]
        if flags:
            mode += f" [{', '.join(flags)}]"

    print(
        f"# profiling {args.scenario} [{mode}] strategy={args.strategy} "
        f"backend={args.backend} scale={args.scale:g} seed={args.seed} "
        f"max_degree={args.max_degree} warm_start={args.warm_start}"
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = engine.run(strategy)
    profiler.disable()
    elapsed = time.perf_counter() - start

    metrics = result.metrics
    tasks_per_second = metrics.total_tasks / elapsed if elapsed else float("inf")
    print(
        f"# {elapsed:.2f}s wall  {metrics.total_tasks} tasks  "
        f"{tasks_per_second:.0f} tasks/s  revenue={metrics.total_revenue:.1f}  "
        f"served={metrics.served_tasks}"
    )
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue())
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"# raw profile dumped to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
