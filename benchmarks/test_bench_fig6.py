"""Benchmarks regenerating Fig. 6 of the paper.

Fig. 6 sweeps the number of workers ``|W|``, the number of requests
``|R|``, the mean of the temporal distribution of requests, and the mean of
the spatial distribution of requests, reporting revenue (row 1), running
time (row 2) and memory (row 3) for MAPS, BaseP, SDR, SDE and CappedUCB.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    assert_maps_competitive,
    assert_series_increasing,
    run_figure,
)


@pytest.mark.benchmark(group="fig6")
def test_fig6_vary_workers(benchmark):
    """Fig. 6 (a, e, i): revenue/time/memory while varying |W|."""
    result = run_figure("fig6-W", default_scale=0.01, benchmark=benchmark, seed=1)
    assert_maps_competitive(result)
    # Revenue grows with the number of workers (supply approaches demand).
    assert_series_increasing(result, "MAPS")
    assert_series_increasing(result, "BaseP")


@pytest.mark.benchmark(group="fig6")
def test_fig6_vary_requests(benchmark):
    """Fig. 6 (b, f, j): revenue/time/memory while varying |R|."""
    result = run_figure("fig6-R", default_scale=0.01, benchmark=benchmark, seed=2)
    assert_maps_competitive(result)
    # Revenue grows with demand and eventually saturates (fixed supply):
    # the last point should not be below the first.
    for strategy in ("MAPS", "BaseP"):
        series = result.revenue_series(strategy)
        assert series[-1] >= series[0]


@pytest.mark.benchmark(group="fig6")
def test_fig6_vary_temporal_mu(benchmark):
    """Fig. 6 (c, g, k): revenue/time/memory while varying the temporal mean."""
    result = run_figure("fig6-tmu", default_scale=0.01, benchmark=benchmark, seed=3)
    assert_maps_competitive(result)
    # Tasks arriving before most workers have appeared (mu = 0.1) find a
    # thin market; the aligned setting (mu = 0.5) must not be worse.
    for strategy in ("MAPS", "BaseP"):
        series = dict(zip(result.parameter_values, result.revenue_series(strategy)))
        assert series[0.5] >= 0.9 * series[0.1]


@pytest.mark.benchmark(group="fig6")
def test_fig6_vary_spatial_mean(benchmark):
    """Fig. 6 (d, h, l): revenue/time/memory while varying the spatial mean."""
    result = run_figure("fig6-smean", default_scale=0.01, benchmark=benchmark, seed=4)
    assert_maps_competitive(result)
    # Revenue peaks when task origins overlap the worker distribution (0.5).
    series = dict(zip(result.parameter_values, result.revenue_series("MAPS")))
    assert series[0.5] >= 0.85 * max(series.values())
