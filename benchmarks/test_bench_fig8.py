"""Benchmarks regenerating Fig. 8 of the paper.

Fig. 8 covers the effect of the worker radius ``a_w``, the scalability test
with ``|W| = |R|`` up to 500k, and the two Beijing taxi datasets (rush hour
and late night) while varying the worker availability duration ``delta_w``.
The Beijing data itself is proprietary; the synthetic Beijing-style
generator documented in DESIGN.md reproduces its published aggregate shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    assert_maps_competitive,
    assert_series_increasing,
    run_figure,
)


@pytest.mark.benchmark(group="fig8")
def test_fig8_vary_radius(benchmark):
    """Fig. 8 col. 1: varying the worker service radius a_w."""
    result = run_figure("fig8-aw", default_scale=0.01, benchmark=benchmark, seed=9)
    assert_maps_competitive(result)
    # A larger radius adds edges to the bipartite graph: revenue rises and
    # saturates, so the largest radius must beat the smallest one.
    for strategy in ("MAPS", "BaseP"):
        series = result.revenue_series(strategy)
        assert series[-1] >= series[0]


@pytest.mark.benchmark(group="fig8")
def test_fig8_scalability(benchmark):
    """Fig. 8 col. 2: scalability with |W| = |R| growing to 500k (scaled down)."""
    result = run_figure("fig8-scale", default_scale=0.002, benchmark=benchmark, seed=10)
    assert_maps_competitive(result)
    # Revenue grows with the market size; MAPS pricing time grows with it
    # (it computes a matching) while BaseP stays essentially flat.
    assert_series_increasing(result, "MAPS")
    maps_time = result.time_series("MAPS")
    assert maps_time[-1] >= maps_time[0]


@pytest.mark.benchmark(group="fig8")
def test_fig8_beijing_rush_hour(benchmark):
    """Fig. 8 col. 3: Beijing dataset #1 (5pm-7pm), varying worker duration."""
    result = run_figure("fig8-real1", default_scale=0.004, benchmark=benchmark, seed=11)
    assert_maps_competitive(result)
    # Longer availability = more supply = more revenue (saturating).
    assert_series_increasing(result, "MAPS")


@pytest.mark.benchmark(group="fig8")
def test_fig8_beijing_late_night(benchmark):
    """Fig. 8 col. 4: Beijing dataset #2 (0am-2am), varying worker duration."""
    result = run_figure("fig8-real2", default_scale=0.004, benchmark=benchmark, seed=12)
    assert_maps_competitive(result)
    assert_series_increasing(result, "MAPS")
    # Late-night supply is tight: dynamic strategies that model limited
    # supply (MAPS, CappedUCB) must not lose to naive SDR here.
    for value in result.parameter_values:
        assert result.cell(value, "MAPS").revenue >= result.cell(value, "SDR").revenue
