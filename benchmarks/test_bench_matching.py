"""Benchmark: array-native matching hot path vs the pre-vectorisation path.

Measures end-to-end single-shard ``city_scale`` throughput (lazy
generation, graph build, matching, feedback all included) for the
configurations of :mod:`repro.experiments.bench_matching` and asserts the
hot-path acceptance criteria:

* the exact ``vectorized`` configuration must produce **identical**
  revenue and served counts to the ``loop`` baseline (the builders emit
  the same graph, so the whole simulation coincides bit-for-bit);
* the degree-capped configuration must be at least
  ``REPRO_MATCHING_SPEEDUP_MIN`` (default 2x) faster than the baseline —
  the speedup is algorithmic (fewer edges to search), not parallel, so it
  holds on a single core;
* the capped revenue must stay within
  ``REPRO_MATCHING_REVENUE_TOLERANCE`` (default 5%) of the exact solve.

The committed ``BENCH_matching.json`` records the same measurement at the
full 1M-task horizon (``tools/bench_to_json.py --benchmark matching``);
this test runs a CI-sized horizon with identical per-period density.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments.bench_matching import measure_matching_throughput

#: Horizon scale of the CI-sized measurement (the per-period density is
#: fixed by the scenario, so this only shortens the run).
BENCH_SCALE = float(os.environ.get("REPRO_MATCHING_BENCH_SCALE", "0.01"))

#: The configuration whose speedup is gated (locally ~5x at cap 16).
GATED_CONFIG = os.environ.get("REPRO_MATCHING_GATED_CONFIG", "capped-16")

#: Acceptance criterion of the hot-path work; noisy shared CI runners can
#: lower the gate via the environment instead of flaking the suite.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_MATCHING_SPEEDUP_MIN", "2.0"))

#: Allowed relative revenue loss of the gated (degree-capped) solve.
REVENUE_TOLERANCE = float(
    os.environ.get("REPRO_MATCHING_REVENUE_TOLERANCE", "0.05")
)


@pytest.mark.benchmark(group="matching")
def test_matching_hot_path_on_city_scale(benchmark):
    """Capped hot path must beat the loop baseline >= 2x, exact path must tie."""
    holder: Dict[str, Dict[str, object]] = {}

    def run_once() -> None:
        holder["payload"] = measure_matching_throughput(
            scale=BENCH_SCALE,
            configs=("loop", "vectorized", GATED_CONFIG),
            seed=0,
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    payload = holder["payload"]
    print()
    print("### matching hot path vs loop baseline (city_scale, 1 shard)")
    for point in payload["results"]:
        print(
            f"{point['config']:>12s}: {point['seconds']:.2f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}  served={point['served']}"
        )
    by_config = {point["config"]: point for point in payload["results"]}
    loop = by_config["loop"]
    vectorized = by_config["vectorized"]
    capped = by_config[GATED_CONFIG]

    # Exactness: the vectorised builder changes how the graph is built,
    # never what it contains — the whole simulation must coincide.
    assert vectorized["revenue"] == loop["revenue"], (
        "vectorized builder drifted from the loop builder: "
        f"{vectorized['revenue']} vs {loop['revenue']}"
    )
    assert vectorized["served"] == loop["served"]

    speedup = payload["speedup_vs_baseline"][GATED_CONFIG]
    revenue_ratio = payload["revenue_ratio_vs_baseline"][GATED_CONFIG]
    print(
        f"{GATED_CONFIG} speedup: {speedup:.2f}x  "
        f"revenue ratio: {revenue_ratio:.3f}"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"hot-path speedup {speedup:.2f}x below the required "
        f"{REQUIRED_SPEEDUP:.1f}x"
    )
    assert abs(1.0 - revenue_ratio) <= REVENUE_TOLERANCE, (
        f"capped revenue drifted {abs(1.0 - revenue_ratio):.1%} from the "
        f"exact solve (allowed {REVENUE_TOLERANCE:.0%})"
    )
