"""Benchmark: sharded engine vs the global per-period solve.

Measures end-to-end ``city_scale`` throughput (lazy generation included)
at 1, 4 and 8 shards and asserts the sharding acceptance criteria:

* 8 shards must be at least ``REPRO_SHARDED_SPEEDUP_MIN`` (default 2x)
  faster than the global solve — the speedup is algorithmic, not
  parallel: shard-local graphs drop cross-region edges and confine
  augmenting paths, so it holds on a single core;
* the sharded revenue must stay within
  ``REPRO_SHARDED_REVENUE_TOLERANCE`` (default 10%) of the global
  solve's, i.e. the halo exchange actually reconciles the boundaries.

The committed ``BENCH_sharded.json`` records the same measurement at the
full 1M-task horizon (``tools/bench_to_json.py``); this test runs a
CI-sized horizon with identical per-period density.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments.bench_sharded import measure_sharded_throughput

#: Horizon scale of the CI-sized measurement (the per-period density is
#: fixed by the scenario, so this only shortens the run).
BENCH_SCALE = float(os.environ.get("REPRO_SHARDED_BENCH_SCALE", "0.01"))

#: Acceptance criterion of the sharding work; noisy shared CI runners can
#: lower the gate via the environment instead of flaking the suite.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_SHARDED_SPEEDUP_MIN", "2.0"))

#: Allowed relative revenue gap of the 8-shard solve vs the global one.
REVENUE_TOLERANCE = float(
    os.environ.get("REPRO_SHARDED_REVENUE_TOLERANCE", "0.10")
)


@pytest.mark.benchmark(group="sharded")
def test_sharded_throughput_on_city_scale(benchmark):
    """8 shards must beat the global solve by >= 2x at bounded revenue loss."""
    holder: Dict[str, Dict[str, object]] = {}

    def run_once() -> None:
        holder["payload"] = measure_sharded_throughput(
            scale=BENCH_SCALE, shard_counts=(1, 4, 8), halo=1, seed=0
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    payload = holder["payload"]
    print()
    print("### sharded engine vs global solve (city_scale)")
    for point in payload["results"]:
        print(
            f"shards={point['shards']}: {point['seconds']:.2f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}  served={point['served']}"
        )
    speedup = payload["speedup_vs_single_shard"]["8"]
    revenue_ratio = payload["revenue_ratio_vs_single_shard"]["8"]
    print(f"speedup 8-vs-1: {speedup:.2f}x  revenue ratio: {revenue_ratio:.3f}")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"sharded speedup {speedup:.2f}x below the required "
        f"{REQUIRED_SPEEDUP:.1f}x"
    )
    assert abs(1.0 - revenue_ratio) <= REVENUE_TOLERANCE, (
        f"sharded revenue drifted {abs(1.0 - revenue_ratio):.1%} from the "
        f"global solve (allowed {REVENUE_TOLERANCE:.0%})"
    )
