"""Benchmark: delta-repair matching vs the per-window re-solve baseline.

Runs one ``churn_city`` epoch through both resolve passes of
:mod:`repro.experiments.bench_dynamic` and asserts the dynamic-dispatch
acceptance criteria:

* the maintained :class:`~repro.matching.incremental.DynamicMatcher`
  must be at least ``REPRO_DYNAMIC_SPEEDUP_MIN`` (default 5x) faster
  than rebuilding the matching from scratch every window — the speedup
  is algorithmic (work scales with the churn delta, not the standing
  population), so it holds on a single core;
* the two passes must agree **bit-identically**: same matched-task basis
  and total weight after every window, same committed revenue at the
  end (asserted inside the measurement; the test re-checks the payload);
* the *exact* (uncapped) sub-measurement — the lazy incremental pass
  (:class:`~repro.matching.incremental.LazyDynamicMatcher` growing its
  universe off the incremental adjacency plane) against the maintained
  delta pass on the identical trajectory — must be at least
  ``REPRO_INCREMENTAL_EXACT_SPEEDUP_MIN`` (default 5x) faster, with
  every window gated bit-identical across the two implementations.

The committed ``BENCH_dynamic.json`` records the same measurement at the
~1M-task horizon (``tools/bench_to_json.py --benchmark dynamic``); this
test runs a single epoch with identical per-window churn density.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments.bench_dynamic import measure_dynamic_throughput

#: Periods of the CI-sized single epoch.  The steady-state population
#: (what the re-solve baseline pays for) takes ~task_lifetime periods to
#: build up, so the epoch must be long enough to amortise the ramp-up.
BENCH_PERIODS = int(os.environ.get("REPRO_DYNAMIC_BENCH_PERIODS", "125"))

#: Acceptance criterion of the dynamic-matching work; noisy shared CI
#: runners can lower the gate via the environment instead of flaking.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_DYNAMIC_SPEEDUP_MIN", "5.0"))

#: Periods of the exact (uncapped) delta-vs-incremental sub-epoch.  The
#: uncapped delta pass's universe rows grow with the horizon, so this
#: stays shorter than the capped epoch to keep CI time bounded.
EXACT_PERIODS = int(os.environ.get("REPRO_DYNAMIC_EXACT_PERIODS", "40"))

#: Acceptance criterion of the incremental-plane work (ISSUE 9): the
#: warm lazy matcher must beat the maintained delta pass on the exact
#: trajectory.  Measured ~17x at 40-period epochs on the 1-core
#: reference container; the default leaves room for runner noise.
REQUIRED_EXACT_SPEEDUP = float(
    os.environ.get("REPRO_INCREMENTAL_EXACT_SPEEDUP_MIN", "5.0")
)


@pytest.mark.benchmark(group="dynamic")
def test_delta_repair_beats_rewindow_on_churn_city(benchmark):
    """Delta repair must beat the per-window re-solve >= 5x, bit-identically."""
    holder: Dict[str, Dict[str, object]] = {}

    def run_once() -> None:
        holder["payload"] = measure_dynamic_throughput(
            epochs=1,
            epoch_periods=BENCH_PERIODS,
            seed=0,
            exact_epochs=1,
            exact_epoch_periods=EXACT_PERIODS,
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    payload = holder["payload"]
    print()
    print("### delta repair vs per-window re-solve (churn_city, 1 epoch)")
    for point in payload["results"]:
        print(
            f"{point['config']:>9s}: {point['seconds']:.2f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}  committed={point['committed']}"
        )
    print(
        f"windows={payload['num_windows']}  "
        f"mean live tasks={payload['mean_live_tasks']:.0f}  "
        f"churn/window={payload['churn_per_window']:.1%}"
    )

    by_config = {point["config"]: point for point in payload["results"]}
    delta = by_config["delta"]
    rewindow = by_config["rewindow"]

    # Bit-identity: the maintained matching IS the per-window re-solve.
    # Per-window basis/total equality is asserted inside the measurement
    # (it raises on the first divergent window); the payload records how
    # many windows were checked and the end-to-end revenue must agree to
    # the last bit.
    assert payload["windows_bit_identical"] == payload["num_windows"] > 0
    assert repr(delta["revenue"]) == repr(rewindow["revenue"])
    assert delta["committed"] == rewindow["committed"]

    # The workload actually churns: multi-window lifetimes mean the
    # standing population dwarfs any single window's arrivals.
    assert 0.1 <= payload["churn_per_window"] <= 0.5
    assert payload["mean_live_tasks"] > 100

    speedup = payload["speedup_vs_baseline"]["delta"]
    print(f"delta speedup: {speedup:.2f}x")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"delta-repair speedup {speedup:.2f}x below the required "
        f"{REQUIRED_SPEEDUP:.1f}x"
    )

    # The exact (uncapped) head-to-head: the lazy incremental pass and
    # the maintained delta pass walk one trajectory, every window gated
    # bit-identical inside the measurement, and the end revenue must
    # agree to the last bit between the two implementations.
    exact = payload["exact"]
    exact_by_config = {point["config"]: point for point in exact["results"]}
    exact_delta = exact_by_config["delta"]
    exact_incremental = exact_by_config["incremental"]
    assert exact["windows_bit_identical"] > 0
    assert repr(exact_incremental["revenue"]) == repr(exact_delta["revenue"])
    assert exact_incremental["committed"] == exact_delta["committed"]
    exact_speedup = exact["speedup_incremental_vs_delta"]
    print(
        f"exact incremental vs delta: {exact_speedup:.2f}x "
        f"({exact['windows_bit_identical']} windows bit-identical, "
        f"end-to-end {exact['speedup_incremental_vs_delta_end_to_end']:.2f}x)"
    )
    assert exact_speedup >= REQUIRED_EXACT_SPEEDUP, (
        f"incremental-plane speedup {exact_speedup:.2f}x below the "
        f"required {REQUIRED_EXACT_SPEEDUP:.1f}x"
    )
