"""Benchmark: compound end-to-end runtime vs the PR 4 sharded+capped baseline.

Measures full ``city_scale`` end-to-end throughput (lazy generation,
partitioning, quote/decide/match, halo reconciliation, feedback) for the
compound ``--shards 8 --max-degree 16`` configuration across data planes
and asserts the zero-copy runtime acceptance criteria:

* the fastest compound plane (``columnar-vgreedy``) must beat the frozen
  PR 4 cost model (per-cell scipy sampling + object chunks + object
  dispatch, same algorithms) by at least ``REPRO_RUNTIME_SPEEDUP_MIN``
  (default 2x) — single-core, the win is the data plane, not
  parallelism; the exact ``columnar`` plane must clear the softer
  ``REPRO_RUNTIME_EXACT_SPEEDUP_MIN`` (default 1.3x) floor, which widens
  with the horizon (short CI horizons under-amortise generation);
* ``columnar`` revenue must be **bit-identical** to the baseline (same
  matroid matching over the same capped graphs — the plane must not
  change one decision);
* ``columnar-vgreedy`` revenue must stay within
  ``REPRO_RUNTIME_REVENUE_TOLERANCE`` (default 10%) of the baseline;
* the ``warm-shards`` plane (warm per-shard incremental matching) must
  be **bit-identical per period** to the baseline (the measurement's
  ``warm_gate`` raises on the first divergent period) and clear the
  ``REPRO_WARM_SHARDS_SPEEDUP_MIN`` throughput floor (default 0.5x —
  on batch workloads the warm path trades throughput for per-arrival
  cost, ~0.9x parity measured; see docs/performance.md).

The committed ``BENCH_runtime.json`` records the same measurement at the
full 1M-task horizon (``tools/bench_to_json.py --benchmark runtime``);
this test runs a CI-sized horizon with identical per-period density.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments.bench_runtime import measure_runtime_throughput

#: Horizon scale of the CI-sized measurement (per-period density fixed).
BENCH_SCALE = float(os.environ.get("REPRO_RUNTIME_BENCH_SCALE", "0.01"))

#: Required end-to-end speedup of the fastest compound plane.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_RUNTIME_SPEEDUP_MIN", "2.0"))

#: Floor for the exact (matroid) columnar plane at the CI-sized horizon.
REQUIRED_EXACT_SPEEDUP = float(
    os.environ.get("REPRO_RUNTIME_EXACT_SPEEDUP_MIN", "1.3")
)

#: Allowed relative revenue drift of the vgreedy plane vs the baseline.
REVENUE_TOLERANCE = float(
    os.environ.get("REPRO_RUNTIME_REVENUE_TOLERANCE", "0.10")
)

#: Throughput floor for the warm per-shard plane (a parity check, not a
#: speedup claim — the warm path's win is the churn/service regime).
REQUIRED_WARM_SPEEDUP = float(
    os.environ.get("REPRO_WARM_SHARDS_SPEEDUP_MIN", "0.5")
)


@pytest.mark.benchmark(group="runtime")
def test_end_to_end_runtime_on_city_scale(benchmark):
    """Columnar planes must beat the PR 4 plane >= 2x at bounded drift."""
    holder: Dict[str, Dict[str, object]] = {}

    def run_once() -> None:
        holder["payload"] = measure_runtime_throughput(scale=BENCH_SCALE, seed=0)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    payload = holder["payload"]
    print()
    print("### compound end-to-end runtime (city_scale, shards=8, cap=16)")
    for point in payload["results"]:
        print(
            f"{point['config']:>16s}: {point['seconds']:.2f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}  served={point['served']}"
        )
    speedups = payload["speedup_vs_baseline"]
    ratios = payload["revenue_ratio_vs_baseline"]
    print(
        f"speedups: columnar {speedups['columnar']:.2f}x, "
        f"columnar-vgreedy {speedups['columnar-vgreedy']:.2f}x"
    )

    assert speedups["columnar-vgreedy"] >= REQUIRED_SPEEDUP, (
        f"columnar-vgreedy end-to-end speedup "
        f"{speedups['columnar-vgreedy']:.2f}x below the required "
        f"{REQUIRED_SPEEDUP:.1f}x over the PR 4 baseline"
    )
    assert speedups["columnar"] >= REQUIRED_EXACT_SPEEDUP, (
        f"columnar end-to-end speedup {speedups['columnar']:.2f}x below the "
        f"required {REQUIRED_EXACT_SPEEDUP:.1f}x over the PR 4 baseline"
    )
    # Same algorithms, different plane: the columnar run must not change
    # a single decision.
    assert ratios["columnar"] == 1.0, (
        f"columnar plane drifted revenue by {abs(1 - ratios['columnar']):.2e}; "
        "the data plane must be bit-identical to the object path"
    )
    assert abs(1.0 - ratios["columnar-vgreedy"]) <= REVENUE_TOLERANCE, (
        f"vgreedy revenue drifted {abs(1 - ratios['columnar-vgreedy']):.1%} "
        f"from the exact baseline (allowed {REVENUE_TOLERANCE:.0%})"
    )

    # Warm per-shard incremental matching: bit-identical per period (the
    # measurement's warm_gate raises on divergence and records what it
    # checked), at bounded throughput cost on this batch workload.
    warm_gate = payload["warm_gate"]
    assert warm_gate["revenue_bitwise_equal"] is True
    assert warm_gate["periods_bitwise_equal"] > 0
    print(
        f"warm-shards: {speedups['warm-shards']:.2f}x vs baseline "
        f"({warm_gate['periods_bitwise_equal']} periods bit-identical)"
    )
    assert ratios["warm-shards"] == 1.0
    assert speedups["warm-shards"] >= REQUIRED_WARM_SPEEDUP, (
        f"warm-shards throughput {speedups['warm-shards']:.2f}x fell below "
        f"the {REQUIRED_WARM_SPEEDUP:.1f}x parity floor"
    )


@pytest.mark.benchmark(group="runtime")
def test_multicore_scaling_smoke(benchmark):
    """Process-per-shard runs must agree on revenue at every core count.

    A correctness gate, not a speed gate: CI runners (and cpuset-limited
    containers) may expose a single effective core, where the fork/spawn
    pool degenerates to sequential execution and no speedup exists.  What
    must hold everywhere is that shard_jobs only changes *wall time* —
    the dispatch decisions (and hence revenue/served) are deterministic
    functions of the workload seed.
    """
    from repro.experiments.bench_runtime import measure_multicore_scaling

    holder: Dict[str, Dict[str, object]] = {}

    def run_once() -> None:
        holder["payload"] = measure_multicore_scaling(
            scale=BENCH_SCALE, core_counts=(1, 2), shards=4, seed=0
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    payload = holder["payload"]
    print()
    print("### multi-core scaling smoke (city_scale, shards=4)")
    for point in payload["results"]:
        print(
            f"shard_jobs={point['shard_jobs']}: {point['seconds']:.2f}s  "
            f"{point['tasks_per_second']:.0f} tasks/s  "
            f"revenue={point['revenue']:.0f}"
        )
    print(f"effective cores: {payload['effective_cores']}")

    revenues = {point["revenue"] for point in payload["results"]}
    served = {point["served"] for point in payload["results"]}
    assert len(revenues) == 1, (
        f"revenue varies with shard_jobs: {sorted(revenues)}; "
        "process-per-shard execution changed dispatch decisions"
    )
    assert len(served) == 1, f"served-count varies with shard_jobs: {sorted(served)}"
    assert payload["speedup_vs_1core"]["1"] == 1.0
    assert all(point["seconds"] > 0 for point in payload["results"])
