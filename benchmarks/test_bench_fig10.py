"""Benchmark regenerating Fig. 10 (Appendix D) of the paper.

Appendix D repeats the synthetic experiment with an exponential demand
(valuation) distribution, sweeping its rate parameter alpha, and reports
that the results mirror the normal-demand case: MAPS achieves the largest
revenue with reasonable time and memory cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_maps_competitive, run_figure


@pytest.mark.benchmark(group="fig10")
def test_fig10_exponential_demand(benchmark):
    """Fig. 10: exponential demand distribution, varying alpha."""
    result = run_figure("fig10-alpha", default_scale=0.01, benchmark=benchmark, seed=13)
    assert_maps_competitive(result)
    # A larger rate concentrates valuations near the lower bound, so
    # revenue should not increase as alpha grows.
    series = result.revenue_series("MAPS")
    assert series[-1] <= 1.15 * series[0]
