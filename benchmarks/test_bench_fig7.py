"""Benchmarks regenerating Fig. 7 of the paper.

Fig. 7 sweeps the mean and the standard deviation of the demand (valuation)
distribution, the number of time periods ``T`` and the number of grids
``G``, reporting revenue, running time and memory for all five strategies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_maps_competitive, run_figure


@pytest.mark.benchmark(group="fig7")
def test_fig7_vary_demand_mu(benchmark):
    """Fig. 7 col. 1: varying the mean of the demand distribution."""
    result = run_figure("fig7-dmu", default_scale=0.01, benchmark=benchmark, seed=5)
    assert_maps_competitive(result)
    # Richer requesters (higher valuation mean) bring more revenue.
    for strategy in ("MAPS", "BaseP"):
        series = result.revenue_series(strategy)
        assert series[-1] >= series[0]


@pytest.mark.benchmark(group="fig7")
def test_fig7_vary_demand_sigma(benchmark):
    """Fig. 7 col. 2: varying the standard deviation of the demand distribution."""
    result = run_figure("fig7-dsigma", default_scale=0.01, benchmark=benchmark, seed=6)
    assert_maps_competitive(result)
    # With the mean fixed at 2 and truncation to [1, 5], a larger sigma
    # raises the effective valuations, hence revenue should not drop.
    series = result.revenue_series("MAPS")
    assert series[-1] >= 0.9 * series[0]


@pytest.mark.benchmark(group="fig7")
def test_fig7_vary_periods(benchmark):
    """Fig. 7 col. 3: varying the number of time periods T."""
    result = run_figure("fig7-T", default_scale=0.01, benchmark=benchmark, seed=7)
    assert_maps_competitive(result)
    # Spreading the same tasks over more periods weakens the per-period
    # optimisation: revenue at T_max must not exceed revenue at T_min by much.
    series = result.revenue_series("MAPS")
    assert series[-1] <= 1.25 * series[0]


@pytest.mark.benchmark(group="fig7")
def test_fig7_vary_grids(benchmark):
    """Fig. 7 col. 4: varying the number of grids G."""
    result = run_figure("fig7-G", default_scale=0.01, benchmark=benchmark, seed=8)
    assert_maps_competitive(result)
    # Finer grids enable finer-grained pricing up to a point: the best G
    # should not be the coarsest one for MAPS.
    series = dict(zip(result.parameter_values, result.revenue_series("MAPS")))
    assert max(series, key=series.get) != 25 or series[25] <= 1.1 * max(series.values())
