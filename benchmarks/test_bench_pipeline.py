"""Benchmark: vectorised period pipeline vs the seed scalar loop.

Measures the quote → decide → match → feedback hot loop on a fig8-scale
workload (the |W| = |R| scalability family of Fig. 8 col. 2, compressed
into dense periods so each batch carries ~1000 tasks) and asserts the
acceptance criterion of the vectorisation work: the pipeline must be at
least 2x faster than the preserved seed implementation while producing
*identical* decisions, matchings and revenue every period.

The seed path is :mod:`repro.simulation.legacy` — per-task Python decide
loop, recursive matroid matching over list-of-list adjacency, and the
second feedback pass that rebuilt every ``PriceFeedback`` to set
``served``.  The new path is :class:`repro.simulation.pipeline.PeriodPipeline`
over the struct-of-arrays view with the CSR matroid backend.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.gdp import PeriodInstance
from repro.pricing.base_price import BasePriceStrategy
from repro.simulation.config import SyntheticConfig
from repro.simulation.generator import SyntheticWorkloadGenerator
from repro.simulation.legacy import (
    reference_decide,
    reference_set_served,
    reference_task_weighted_matching,
)
from repro.simulation.pipeline import PeriodPipeline

#: Fig. 8 col. 2 keeps |W| = |R|; dense periods make each batch
#: representative of the paper-scale per-period market.
FIG8_SCALE_CONFIG = SyntheticConfig(
    num_workers=4000,
    num_tasks=16000,
    num_periods=16,
    grid_side=10,
    worker_radius=10.0,
    seed=9,
)

#: Acceptance criterion of the vectorisation refactor.  Local runs measure
#: ~4x with a comfortable margin; noisy shared CI runners can lower the
#: gate via the environment instead of flaking the whole suite.
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_PIPELINE_SPEEDUP_MIN", "2.0"))


def _compare_paths(workload) -> Dict[str, float]:
    """Run both implementations period-by-period and time the hot loops.

    Both paths share the instance construction and the worker-pool
    evolution (asserted identical each period), so the timings isolate
    exactly the quote → decide → match → feedback stages.
    """
    pipeline = PeriodPipeline(
        price_bounds=workload.price_bounds, acceptance=workload.acceptance
    )
    strategy = BasePriceStrategy(base_price=2.0)
    p_min, p_max = workload.price_bounds
    rng_new = np.random.default_rng(1)
    rng_ref = np.random.default_rng(1)

    available = []
    t_legacy = t_new = 0.0
    total_tasks = 0
    for period in range(workload.num_periods):
        available.extend(workload.workers_by_period[period])
        available = [w for w in available if w.available_in(period)]
        tasks = workload.tasks_by_period[period]
        if not tasks:
            continue
        total_tasks += len(tasks)
        instance = PeriodInstance.build(
            period=period,
            grid=workload.grid,
            tasks=tasks,
            workers=available,
            metric=workload.metric,
        )
        grid_prices = strategy.price_period(instance)

        # --- seed path -------------------------------------------------
        start = time.perf_counter()
        prices_ref, accepted_ref, feedback = reference_decide(
            instance, grid_prices, p_min, p_max, workload.acceptance, rng_ref
        )
        weights = [
            task.distance * price
            for task, price in zip(instance.tasks, prices_ref)
        ]
        matching_ref, revenue_ref = reference_task_weighted_matching(
            instance.graph, weights, allowed_tasks=accepted_ref
        )
        feedback = reference_set_served(feedback, matching_ref)
        strategy.observe_feedback(feedback)
        t_legacy += time.perf_counter() - start

        # --- vectorised path -------------------------------------------
        start = time.perf_counter()
        decision = pipeline.decide(instance, grid_prices, rng_new)
        matching_new, revenue_new = pipeline.match(instance, decision)
        batch = pipeline.feedback(instance, decision, matching_new)
        strategy.observe_feedback_batch(batch)
        t_new += time.perf_counter() - start

        # Both paths must agree exactly before the speedup means anything.
        assert matching_new == matching_ref
        assert revenue_new == revenue_ref
        assert np.flatnonzero(decision.accepted).tolist() == accepted_ref

        matched_workers = set(matching_ref.values())
        available = [
            worker
            for worker_pos, worker in enumerate(instance.workers)
            if worker_pos not in matched_workers
        ]

    return {
        "legacy_seconds": t_legacy,
        "pipeline_seconds": t_new,
        "speedup": t_legacy / t_new if t_new > 0 else float("inf"),
        "total_tasks": float(total_tasks),
    }


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_speedup_on_fig8_scale_workload(benchmark):
    """The vectorised loop must beat the seed loop by >= 2x, bit-for-bit."""
    workload = SyntheticWorkloadGenerator(FIG8_SCALE_CONFIG).generate()
    holder: Dict[str, Dict[str, float]] = {}

    def run_once() -> None:
        holder["stats"] = _compare_paths(workload)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    stats = holder["stats"]
    print()
    print("### pipeline vs seed loop (fig8-scale, |W|=|R| family)")
    print(
        f"tasks={stats['total_tasks']:.0f}  "
        f"legacy={stats['legacy_seconds']:.3f}s  "
        f"pipeline={stats['pipeline_seconds']:.3f}s  "
        f"speedup={stats['speedup']:.2f}x"
    )
    assert stats["speedup"] >= REQUIRED_SPEEDUP, (
        f"pipeline speedup {stats['speedup']:.2f}x below the required "
        f"{REQUIRED_SPEEDUP:.1f}x"
    )
