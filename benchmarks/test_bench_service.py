"""Benchmark: the dispatch service's quote latency and differential gate.

Runs the full three-config protocol of
:mod:`repro.experiments.bench_service` at a CI-sized scale — an offline
lossless replay (the bitwise gate against the event engine), a paced
replay under a latency SLO, and a shedding burst replay — and asserts
the service acceptance criteria:

* the offline replay is **bit-identical** to
  :class:`~repro.simulation.streaming.EventStreamingEngine` on the same
  stream (``repr``-equal settled revenue, identical commit pairs), with
  zero rejected events;
* the per-quote service p99 (the in-session settle→quote→decide→insert
  cost; queue wait excluded, since an unpaced closed-loop flood measures
  queue depth, not quoting speed) stays under ``REPRO_SERVICE_P99_MS``
  (default 250 ms — generous for shared CI runners; the committed
  ``BENCH_service.json`` records the real figure);
* the incremental session backend (the default: live adjacency plane +
  lazy matcher) and the classic universe matcher replay
  (``offline_universe``) are **bitwise interchangeable** — same settled
  revenue ``repr``, same commit pairs — and the recorded quote-p50
  speedup clears ``REPRO_INCREMENTAL_QUOTE_SPEEDUP_MIN`` (default 0:
  record-only, because at CI scales the tiny universe makes the classic
  matcher artificially cheap; the committed full-scale point measures
  ~3x p50 / ~9x p99 in the incremental backend's favour);
* the servers tear down without stranding a shared-memory segment.

The committed ``BENCH_service.json`` records the same measurement at a
larger scale (``tools/bench_to_json.py --benchmark service``).
"""

from __future__ import annotations

import glob
import os
from typing import Dict

import pytest

from repro.experiments.bench_service import measure_service_latency

from benchmarks.conftest import effective_scale

#: p99 gate for the *offline* (uncontended) config, in milliseconds.
P99_GATE_MS = float(os.environ.get("REPRO_SERVICE_P99_MS", "250"))

#: Floor on the incremental-vs-universe quote-p50 ratio.  0 records the
#: ratio without gating (the honest CI-scale default — see module
#: docstring); the full-scale recording is where the speedup shows.
QUOTE_SPEEDUP_MIN = float(
    os.environ.get("REPRO_INCREMENTAL_QUOTE_SPEEDUP_MIN", "0")
)


@pytest.mark.benchmark(group="service")
def test_service_quote_latency_and_differential_gate(benchmark):
    """Quote p99 under the gate; offline replay bitwise equal to engine."""
    before = set(glob.glob("/dev/shm/repro_arena_*"))
    holder: Dict[str, Dict[str, object]] = {}

    def run_once() -> None:
        holder["payload"] = measure_service_latency(
            scale=effective_scale(0.05), seed=0, strategy="BaseP"
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    payload = holder["payload"]
    print()
    print("### dispatch service: event-at-a-time quoting (hotspot_burst)")
    for point in payload["results"]:
        print(
            f"{point['config']:>10s}: {point['seconds']:.2f}s  "
            f"{point['arrivals_per_second']:.0f} arrivals/s  "
            f"total p50={point['p50_ms']:.2f}ms p99={point['p99_ms']:.2f}ms  "
            f"quoted={point['quoted']} degraded={point['degraded']} "
            f"rejected={point['rejected']}"
        )

    # The differential gate: the measurement itself raises on divergence,
    # and the payload must record both equalities as checked-and-true.
    assert payload["differential"]["revenue_bitwise_equal"] is True
    assert payload["differential"]["commit_pairs_equal"] is True
    # Backend interchangeability: incremental session == universe matcher.
    assert payload["differential"]["backends_bitwise_equal"] is True

    by_config = {point["config"]: point for point in payload["results"]}
    offline = by_config["offline"]
    assert offline["rejected"] == 0
    assert offline["committed"] > 0
    service_p99 = payload["p99_quote_ms"]
    print(f"offline service p99: {service_p99:.2f}ms (gate {P99_GATE_MS:.0f}ms)")
    assert service_p99 <= P99_GATE_MS, (
        f"offline per-quote service p99 {service_p99:.2f}ms above the "
        f"{P99_GATE_MS:.0f}ms gate"
    )

    # The burst config must actually exercise admission control...
    assert by_config["burst_shed"]["rejected"] > 0
    # ...while blocking admission never sheds.
    assert by_config["paced"]["rejected"] == 0

    # Backend bookkeeping: the default offline session really ran the
    # incremental plane, the reference replay really ran the universe.
    assert offline["incremental"] is True
    assert by_config["offline_universe"]["incremental"] is False
    assert by_config["offline_universe"]["rejected"] == 0
    quote_speedup = payload["speedup_incremental_quote_p50"]
    print(f"incremental quote p50 speedup: {quote_speedup:.2f}x "
          f"(floor {QUOTE_SPEEDUP_MIN:g})")
    assert quote_speedup >= QUOTE_SPEEDUP_MIN, (
        f"incremental quote-p50 speedup {quote_speedup:.2f}x below the "
        f"{QUOTE_SPEEDUP_MIN:g}x floor"
    )

    # Clean teardown: no stranded shm segments from any of the servers.
    after = set(glob.glob("/dev/shm/repro_arena_*"))
    assert after <= before
