"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the contribution of individual
components of the reproduction:

* ``matching backends`` — the exact matroid-greedy matching vs. the dense
  Hungarian / SciPy solvers vs. the non-augmenting greedy heuristic;
* ``UCB vs. exploitation`` — MAPS with the UCB confidence radius of
  Algorithm 3 vs. a pure-exploitation variant;
* ``Eq. (1) approximation quality`` — the planner's L-approximation of the
  per-grid expected revenue vs. an exact possible-world evaluation on small
  instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import effective_scale
from repro.core.maximizer import exploitation_maximizer
from repro.experiments.figures import scaled_synthetic_config
from repro.market.curves import revenue_approximation
from repro.market.entities import Task, Worker
from repro.matching.bipartite import build_bipartite_graph
from repro.matching.possible_worlds import exact_expected_revenue
from repro.matching.weighted import max_weight_matching
from repro.pricing.maps_strategy import MAPSStrategy
from repro.simulation.engine import SimulationEngine
from repro.simulation.generator import SyntheticWorkloadGenerator
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid


def _workload(scale: float, seed: int = 21):
    config = scaled_synthetic_config(scale, seed=seed)
    return SyntheticWorkloadGenerator(config).generate()


@pytest.mark.benchmark(group="ablation")
def test_ablation_matching_backends(benchmark):
    """Exact backends agree; the greedy heuristic loses weight but is fast."""
    rng = np.random.default_rng(0)
    grid = Grid.square(100.0, 10)
    tasks = [
        Task(
            task_id=i,
            period=0,
            origin=Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            destination=Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
        )
        for i in range(120)
    ]
    workers = [
        Worker(
            worker_id=j,
            period=0,
            location=Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            radius=15.0,
        )
        for j in range(60)
    ]
    graph = build_bipartite_graph(tasks, workers, grid=grid)
    weights = [task.distance * 2.0 for task in tasks]

    def run_matroid():
        return max_weight_matching(graph, weights, backend="matroid")[1]

    matroid_total = benchmark(run_matroid)
    scipy_total = max_weight_matching(graph, weights, backend="scipy")[1]
    greedy_total = max_weight_matching(graph, weights, backend="greedy")[1]

    print("\n### Ablation: matching backends (total matched weight)")
    print(f"matroid greedy+augmentation : {matroid_total:10.2f}  (exact, used by the engine)")
    print(f"scipy linear_sum_assignment : {scipy_total:10.2f}  (exact, dense)")
    print(f"greedy without augmentation : {greedy_total:10.2f}  (heuristic)")

    assert matroid_total == pytest.approx(scipy_total, rel=1e-9)
    assert greedy_total <= matroid_total + 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_ucb_vs_exploitation(benchmark):
    """The UCB exploration term of Algorithm 3 vs. pure exploitation."""
    workload = _workload(effective_scale(0.01))
    engine = SimulationEngine(workload, seed=3)
    calibration = engine.calibrate_base_price()

    def run_both():
        ucb = engine.run(MAPSStrategy.from_calibration(calibration))
        greedy = engine.run(
            MAPSStrategy.from_calibration(calibration, maximizer=exploitation_maximizer)
        )
        return ucb.total_revenue, greedy.total_revenue

    ucb_revenue, greedy_revenue = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print("\n### Ablation: UCB index vs. pure exploitation in Algorithm 3")
    print(f"MAPS with UCB index      : {ucb_revenue:10.1f}")
    print(f"MAPS without exploration : {greedy_revenue:10.1f}")
    # Exploitation-only can get stuck on stale estimates; it must not be
    # dramatically better than the UCB variant (and is usually worse).
    assert ucb_revenue >= 0.9 * greedy_revenue


@pytest.mark.benchmark(group="ablation")
def test_ablation_revenue_approximation_quality(benchmark):
    """Eq. (1)'s L-approximation vs. exact possible-world expected revenue."""
    rng = np.random.default_rng(5)
    errors = []

    def evaluate():
        errors.clear()
        for _ in range(20):
            num_tasks = int(rng.integers(2, 9))
            distances = sorted(rng.uniform(0.5, 3.0, size=num_tasks), reverse=True)
            supply = int(rng.integers(1, num_tasks + 1))
            price = float(rng.choice([1.0, 2.0, 3.0]))
            ratio = float(rng.uniform(0.3, 0.95))
            # Exact computation on a graph with `supply` interchangeable workers.
            tasks = [
                Task(
                    task_id=i,
                    period=0,
                    origin=Point(0.0, 0.0),
                    destination=Point(float(d), 0.0),
                    distance=float(d),
                )
                for i, d in enumerate(distances)
            ]
            workers = [
                Worker(worker_id=j, period=0, location=Point(0.0, 0.0), radius=10.0)
                for j in range(supply)
            ]
            graph = build_bipartite_graph(tasks, workers, use_index=False)
            exact = exact_expected_revenue(graph, [price] * num_tasks, [ratio] * num_tasks)
            approx = revenue_approximation(distances, supply, price, ratio)
            errors.append(abs(approx - exact) / max(exact, 1e-9))
        return float(np.mean(errors))

    mean_relative_error = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print("\n### Ablation: Eq. (1) approximation vs. exact expected revenue")
    print(f"mean relative error over 20 random local markets: {mean_relative_error:.3f}")
    # Theorem 10 bounds the gap; on small markets the approximation should
    # stay within ~35% of the exact expectation on average.
    assert mean_relative_error < 0.35
