"""Benchmark of the paper's running example (Table 1 / Examples 1, 3, 5).

Checks that the reproduction recovers the paper's numbers exactly —
expected total revenue ~4.1 for the price vector (3, 3, 2), marginal gains
3 and 1.6, final MAPS prices (3, 2) — and measures how long exact
possible-world evaluation and MAPS planning take on this micro instance.
"""

from __future__ import annotations

import pytest

from repro.core.maps import MAPSPlanner
from repro.core.gdp import PeriodInstance
from repro.learning.estimator import GridAcceptanceEstimator
from repro.market.curves import GridMarket
from repro.market.entities import Task, Worker
from repro.matching.possible_worlds import exact_expected_revenue
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import Grid

TABLE_1 = {1.0: 0.9, 2.0: 0.8, 3.0: 0.5}


def _running_example_instance() -> PeriodInstance:
    grid = Grid(BoundingBox.square(8.0), 4, 4)
    tasks = [
        Task(task_id=1, period=0, origin=Point(0.5, 5.0), destination=Point(0.5, 6.3), distance=1.3),
        Task(task_id=2, period=0, origin=Point(1.0, 4.5), destination=Point(1.0, 5.2), distance=0.7),
        Task(task_id=3, period=0, origin=Point(6.5, 1.0), destination=Point(6.5, 2.0), distance=1.0),
    ]
    workers = [
        Worker(worker_id=1, period=0, location=Point(1.0, 5.0), radius=1.5),
        Worker(worker_id=2, period=0, location=Point(6.5, 6.5), radius=1.0),
        Worker(worker_id=3, period=0, location=Point(6.5, 1.5), radius=1.5),
    ]
    return PeriodInstance.build(0, grid, tasks, workers)


def _converged_estimator(grid_index: int) -> GridAcceptanceEstimator:
    estimator = GridAcceptanceEstimator(grid_index, [1.0, 2.0, 3.0])
    for price, ratio in TABLE_1.items():
        estimator.record_batch(price, 100000, int(100000 * ratio))
    return estimator


@pytest.mark.benchmark(group="running-example")
def test_running_example(benchmark):
    instance = _running_example_instance()
    grid_shared = instance.tasks[0].grid_index
    grid_single = instance.tasks[2].grid_index
    estimators = {g: _converged_estimator(g) for g in (grid_shared, grid_single)}
    planner = MAPSPlanner(base_price=2.0, p_min=1.0, p_max=3.0)

    def evaluate():
        plan = planner.plan(instance, estimators)
        prices = [plan.prices[grid_shared]] * 2 + [plan.prices[grid_single]]
        expected = exact_expected_revenue(
            instance.graph, prices, [TABLE_1[p] for p in prices]
        )
        return plan, expected

    plan, expected = benchmark(evaluate)

    # Example 5: final prices (3 for the contested grid, 2 for r3's grid).
    assert plan.prices[grid_shared] == pytest.approx(3.0)
    assert plan.prices[grid_single] == pytest.approx(2.0)
    # Example 3: expected total revenue ~4.1 (exact value 4.075).
    assert expected == pytest.approx(4.075, abs=1e-9)

    # Example 5's marginal gains for the first allocated worker.
    shared = GridMarket(
        grid_index=grid_shared,
        distances=instance.distances_in_grid(grid_shared),
        acceptance_ratio=lambda p: TABLE_1[p],
    )
    single = GridMarket(
        grid_index=grid_single,
        distances=instance.distances_in_grid(grid_single),
        acceptance_ratio=lambda p: TABLE_1[p],
    )
    assert shared.marginal_gain(0, [1.0, 2.0, 3.0])[1] == pytest.approx(3.0)
    assert single.marginal_gain(0, [1.0, 2.0, 3.0])[1] == pytest.approx(1.6)

    print("\n### Running example (Table 1, Examples 1/3/5)")
    print(f"MAPS prices: contested grid -> {plan.prices[grid_shared]:.0f}, "
          f"single-task grid -> {plan.prices[grid_single]:.0f} (paper: 3 and 2)")
    print(f"Expected total revenue of (3, 3, 2): {expected:.3f} (paper: ~4.1)")
