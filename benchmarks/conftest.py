"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section at a reduced scale (see EXPERIMENTS.md for the scale used and the
comparison against the paper's curves).  The scale can be raised with the
``REPRO_BENCH_SCALE`` environment variable, e.g.::

    REPRO_BENCH_SCALE=0.05 pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated revenue/time/memory tables on stdout.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

import pytest

from repro.experiments.figures import get_figure
from repro.experiments.report import format_series, format_winner_summary
from repro.experiments.sweeps import ExperimentResult, run_sweep

#: Multiplier applied to each benchmark's default scale.
SCALE_MULTIPLIER = float(os.environ.get("REPRO_BENCH_SCALE_MULTIPLIER", "1.0"))

#: Hard override of the scale for every benchmark (takes precedence).
SCALE_OVERRIDE = os.environ.get("REPRO_BENCH_SCALE")


def effective_scale(default_scale: float) -> float:
    """The scale a benchmark should run at, honouring the env overrides."""
    if SCALE_OVERRIDE is not None:
        return float(SCALE_OVERRIDE)
    return default_scale * SCALE_MULTIPLIER


def run_figure(
    figure_id: str,
    default_scale: float,
    benchmark,
    seed: int = 0,
    values: Optional[Sequence[object]] = None,
    track_memory: bool = True,
) -> ExperimentResult:
    """Run one figure's sweep inside pytest-benchmark and print its tables."""
    spec = get_figure(figure_id)
    sweep = spec.build_sweep(
        scale=effective_scale(default_scale),
        values=values,
        seed=seed,
        track_memory=track_memory,
    )
    result_holder: Dict[str, ExperimentResult] = {}

    def run_once() -> None:
        result_holder["result"] = run_sweep(sweep)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = result_holder["result"]
    print()
    print(f"### {spec.title}")
    print(f"### expectation: {spec.expectation}")
    print(format_series(result, metrics=("revenue", "time", "memory")))
    print(format_winner_summary(result))
    return result


def assert_maps_competitive(
    result: ExperimentResult,
    slack: float = 0.82,
    aggregate_slack: float = 0.95,
) -> None:
    """MAPS must match the paper's qualitative claim of being on top.

    Two checks are applied:

    * per parameter value, MAPS stays within ``slack`` of the best strategy
      (at benchmark scale — hundreds of tasks rather than tens of thousands
      — sampling noise can let a heuristic edge ahead at isolated extreme
      settings, so the per-point band is generous);
    * summed over the whole sweep, MAPS stays within ``aggregate_slack`` of
      the best aggregate strategy, which is the paper's headline shape.
    """
    for value in result.parameter_values:
        maps_revenue = result.cell(value, "MAPS").revenue
        best = max(result.cell(value, name).revenue for name in result.strategies)
        assert maps_revenue >= slack * best, (
            f"MAPS not competitive at {result.parameter_name}={value}: "
            f"{maps_revenue:.1f} vs best {best:.1f}"
        )
    maps_total = sum(result.revenue_series("MAPS"))
    best_total = max(sum(result.revenue_series(name)) for name in result.strategies)
    assert maps_total >= aggregate_slack * best_total, (
        f"MAPS aggregate revenue {maps_total:.1f} below "
        f"{aggregate_slack:.0%} of the best aggregate {best_total:.1f}"
    )


def assert_series_increasing(
    result: ExperimentResult, strategy: str = "MAPS", slack: float = 0.85
) -> None:
    """The strategy's revenue should (weakly) grow along the sweep."""
    series = result.revenue_series(strategy)
    for earlier, later in zip(series, series[1:]):
        assert later >= slack * earlier, f"series not increasing: {series}"
