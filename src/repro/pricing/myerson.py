"""Oracle Myerson pricing — an upper-line for ablation studies.

Not a baseline of the paper: this strategy is given the *true* per-grid
valuation distributions and quotes the exact Myerson reserve price of each
grid (the price BaseP and MAPS try to learn).  Comparing learned strategies
against it quantifies how much revenue is lost to demand estimation, as
opposed to supply allocation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.gdp import PeriodInstance
from repro.market.valuation import ValuationDistribution
from repro.pricing.strategy import PricingStrategy


class OracleMyersonStrategy(PricingStrategy):
    """Quote each grid's true Myerson reserve price.

    Args:
        distributions: Ground-truth valuation distribution per grid index.
        default: Distribution for grids missing from ``distributions``.
        p_min: Lower clamp for quoted prices.
        p_max: Upper clamp for quoted prices.
    """

    name = "OracleMyerson"

    def __init__(
        self,
        distributions: Mapping[int, ValuationDistribution],
        default: Optional[ValuationDistribution] = None,
        p_min: float = 1.0,
        p_max: float = 5.0,
    ) -> None:
        if p_min <= 0 or p_max < p_min:
            raise ValueError("need 0 < p_min <= p_max")
        if not distributions and default is None:
            raise ValueError("provide per-grid distributions or a default")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self._distributions = dict(distributions)
        self._default = default
        self._cache: Dict[int, float] = {}

    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        prices: Dict[int, float] = {}
        for grid_index in instance.grid_indices_with_tasks():
            prices[grid_index] = self._reserve_price(grid_index)
        return prices

    def reset(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _reserve_price(self, grid_index: int) -> float:
        if grid_index not in self._cache:
            distribution = self._distributions.get(grid_index, self._default)
            if distribution is None:
                raise KeyError(
                    f"no valuation distribution for grid {grid_index} and no default"
                )
            reserve = distribution.myerson_reserve_price(
                price_range=(self.p_min, self.p_max)
            )
            self._cache[grid_index] = self.clamp_price(reserve, self.p_min, self.p_max)
        return self._cache[grid_index]


__all__ = ["OracleMyersonStrategy"]
