"""BaseP — the unified base price strategy (Section 3, baseline 1).

BaseP quotes the same price ``p_b`` (the output of Algorithm 1) for every
grid in every period.  It is optimal when supply is sufficient everywhere
and the per-grid Myerson reserve prices are similar, and it is the starting
point MAPS refines.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base_pricing import BasePricingResult
from repro.core.gdp import PeriodInstance
from repro.pricing.strategy import PricingStrategy


class BasePriceStrategy(PricingStrategy):
    """Quote the calibrated base price ``p_b`` for every grid.

    Args:
        base_price: The base price, typically
            :attr:`repro.core.base_pricing.BasePricingResult.base_price`.
        p_min: Lower clamp for quoted prices.
        p_max: Upper clamp for quoted prices.
    """

    name = "BaseP"

    def __init__(self, base_price: float, p_min: float = 1.0, p_max: float = 5.0) -> None:
        if p_min <= 0 or p_max < p_min:
            raise ValueError("need 0 < p_min <= p_max")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.base_price = self.clamp_price(base_price, self.p_min, self.p_max)

    @classmethod
    def from_calibration(
        cls, calibration: BasePricingResult, p_min: float = 1.0, p_max: float = 5.0
    ) -> "BasePriceStrategy":
        """Build the strategy directly from an Algorithm 1 result."""
        return cls(calibration.base_price, p_min=p_min, p_max=p_max)

    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        return {
            grid_index: self.base_price
            for grid_index in instance.grid_indices_with_tasks()
        }


__all__ = ["BasePriceStrategy"]
