"""SDE — pricing by the supply/demand difference (Section 5.1, baseline 3).

SDE inflates the base price with an exponential of the supply deficit:

    p^{tg} = p_b * (1 + scale * e^{|W^{tg}| - |R^{tg}|})   if |R^{tg}| > |W^{tg}|
    p^{tg} = p_b                                           otherwise

The paper uses ``scale = 2``.  Because the exponent is negative whenever
the branch applies (supply smaller than demand), the multiplier lies in
``(1, 1 + scale)`` and shrinks as the deficit grows — SDE reacts to *any*
shortage but barely differentiates mild from severe shortages, which is
why it trails the other strategies in most of the paper's plots.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.gdp import PeriodInstance
from repro.pricing.strategy import PricingStrategy


class SDEStrategy(PricingStrategy):
    """Supply-demand exponential pricing heuristic.

    Args:
        base_price: The calibrated base price ``p_b``.
        scale: Multiplier on the exponential term (paper: 2).
        p_min: Lower clamp for quoted prices.
        p_max: Upper clamp for quoted prices.
    """

    name = "SDE"

    def __init__(
        self,
        base_price: float,
        scale: float = 2.0,
        p_min: float = 1.0,
        p_max: float = 5.0,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if p_min <= 0 or p_max < p_min:
            raise ValueError("need 0 < p_min <= p_max")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.base_price = self.clamp_price(base_price, self.p_min, self.p_max)
        self.scale = float(scale)

    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        prices: Dict[int, float] = {}
        for grid_index in instance.grid_indices_with_tasks():
            demand = len(instance.tasks_by_grid.get(grid_index, []))
            supply = instance.workers_by_grid.get(grid_index, 0)
            if demand > supply:
                deficit_exponent = supply - demand  # negative by construction
                price = self.base_price * (1.0 + self.scale * math.exp(deficit_exponent))
            else:
                price = self.base_price
            prices[grid_index] = self.clamp_price(price, self.p_min, self.p_max)
        return prices


__all__ = ["SDEStrategy"]
