"""Price post-processing: caps and spatial smoothing (Section 4.2.3, notes).

The paper closes Section 4.2.3 with two practical notes:

  (i) MAPS tends to set a higher unit price for regions where workers are
      insufficient, which doubles as an incentive for drivers to relocate;
 (ii) "A cap on the unit prices can be setting bounded prices.  Spatial
      smoothing can also be integrated to reduce the gap of unit prices
      among neighbouring grids."

This module implements note (ii) as composable post-processors that wrap
any :class:`~repro.pricing.strategy.PricingStrategy`:

* :class:`PriceCap` — clamp every quoted price into ``[floor, cap]``;
* :class:`SpatialSmoother` — bring each grid's price closer to the average
  of its neighbours, bounding the price gap across a cell boundary;
* :class:`SmoothedStrategy` — a strategy decorator applying a pipeline of
  post-processors while forwarding learning feedback to the inner strategy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.gdp import PeriodInstance
from repro.pricing.strategy import PriceFeedback, PricingStrategy
from repro.spatial.grid import Grid


class PricePostProcessor(ABC):
    """Transforms a per-grid price vector after a strategy proposed it."""

    @abstractmethod
    def apply(self, prices: Dict[int, float], instance: PeriodInstance) -> Dict[int, float]:
        """Return the adjusted prices (must not mutate the input)."""


class PriceCap(PricePostProcessor):
    """Clamp all prices into ``[floor, cap]`` (practical note (ii), first half).

    Args:
        cap: Maximum quotable unit price (e.g. a regulatory surge cap).
        floor: Minimum quotable unit price.
    """

    def __init__(self, cap: float, floor: float = 0.0) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        if floor < 0 or floor > cap:
            raise ValueError("need 0 <= floor <= cap")
        self.cap = float(cap)
        self.floor = float(floor)

    def apply(self, prices: Dict[int, float], instance: PeriodInstance) -> Dict[int, float]:
        return {
            grid_index: min(self.cap, max(self.floor, price))
            for grid_index, price in prices.items()
        }


class SpatialSmoother(PricePostProcessor):
    """Shrink each grid's price towards its neighbourhood average.

    For every priced grid ``g`` the smoothed price is

        (1 - weight) * p_g + weight * mean(p_h for h in N(g))

    where ``N(g)`` are the (priced) neighbouring cells of ``g``.  With
    ``weight = 0`` prices are unchanged; with ``weight = 1`` every grid
    quotes its neighbourhood average.  Smoothing trades a little revenue for
    a price surface without abrupt cliffs between adjacent cells — riders
    standing a street apart should not see wildly different quotes.

    Args:
        weight: Mixing weight in ``[0, 1]``.
        diagonal: Use the 8-neighbourhood (True) or the 4-neighbourhood.
        iterations: Number of smoothing passes (more passes widen the
            averaging stencil).
    """

    def __init__(self, weight: float = 0.3, diagonal: bool = True, iterations: int = 1) -> None:
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must lie in [0, 1]")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.weight = float(weight)
        self.diagonal = bool(diagonal)
        self.iterations = int(iterations)

    def apply(self, prices: Dict[int, float], instance: PeriodInstance) -> Dict[int, float]:
        grid = instance.grid
        current = dict(prices)
        for _ in range(self.iterations):
            smoothed: Dict[int, float] = {}
            for grid_index, price in current.items():
                neighbour_prices = [
                    current[n]
                    for n in grid.neighbors(grid_index, diagonal=self.diagonal)
                    if n in current
                ]
                if neighbour_prices:
                    neighbourhood_mean = sum(neighbour_prices) / len(neighbour_prices)
                    smoothed[grid_index] = (
                        (1.0 - self.weight) * price + self.weight * neighbourhood_mean
                    )
                else:
                    smoothed[grid_index] = price
            current = smoothed
        return current

    def max_neighbour_gap(self, prices: Dict[int, float], grid: Grid) -> float:
        """Largest absolute price difference across adjacent priced cells.

        Used by tests and diagnostics to verify smoothing actually shrinks
        the gaps.
        """
        gap = 0.0
        for grid_index, price in prices.items():
            for neighbour in grid.neighbors(grid_index, diagonal=self.diagonal):
                if neighbour in prices:
                    gap = max(gap, abs(price - prices[neighbour]))
        return gap


class SmoothedStrategy(PricingStrategy):
    """Decorator applying post-processors to an inner strategy's prices.

    The inner strategy still receives the raw accept/reject feedback, which
    is generated under the *adjusted* prices; this mirrors production
    systems where the learning layer observes the prices actually shown to
    requesters.

    Args:
        inner: The wrapped strategy (e.g. :class:`MAPSStrategy`).
        processors: Post-processors applied in order.
        name: Optional display name (defaults to ``"<inner>+smooth"``).
    """

    def __init__(
        self,
        inner: PricingStrategy,
        processors: Sequence[PricePostProcessor],
        name: Optional[str] = None,
    ) -> None:
        if not processors:
            raise ValueError("provide at least one post-processor")
        self.inner = inner
        self.processors: List[PricePostProcessor] = list(processors)
        self.name = name or f"{inner.name}+smooth"

    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        prices = self.inner.price_period(instance)
        for processor in self.processors:
            prices = processor.apply(prices, instance)
        return prices

    def observe_feedback(self, feedback: Sequence[PriceFeedback]) -> None:
        self.inner.observe_feedback(feedback)

    def observe_feedback_batch(self, batch) -> None:
        if self._item_feedback_overridden(SmoothedStrategy):
            super().observe_feedback_batch(batch)
            return
        # Forward the arrays directly so a learning inner strategy keeps
        # its vectorised fast path (the default would materialise one
        # PriceFeedback object per task before delegating).
        self.inner.observe_feedback_batch(batch)

    def reset(self) -> None:
        self.inner.reset()


__all__ = ["PricePostProcessor", "PriceCap", "SpatialSmoother", "SmoothedStrategy"]
