"""CappedUCB — per-grid limited-supply posted pricing (Section 5.1, baseline 4).

CappedUCB is the state-of-the-art single-market posted-price mechanism of
Babaioff et al. applied to every grid independently: each grid ``g`` is a
market with ``|R^{tg}|`` requesters and ``|W^{tg}|`` co-located workers,
and the quoted price maximises

    min( |R^{tg}| * p * S^g(p) ,  |W^{tg}| * p )

which is Eq. (1) with every travel distance set to 1 and the supply fixed
to the number of workers located in the grid.  The acceptance ratio is
learned with the same UCB index as MAPS, so the comparison isolates the
effect of MAPS's global supply allocation (CappedUCB ignores that one
worker could serve several grids and that travel distances differ).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.gdp import PeriodInstance
from repro.learning.estimator import GridAcceptanceEstimator
from repro.learning.sampling import price_ladder
from repro.learning.ucb import ucb_index
from repro.pricing.strategy import PriceFeedback, PriceFeedbackBatch, PricingStrategy


class CappedUCBStrategy(PricingStrategy):
    """Per-grid capped UCB posted pricing.

    Args:
        p_min: Lower bound of the candidate price ladder.
        p_max: Upper bound of the candidate price ladder.
        alpha: Geometric step of the ladder (shared with MAPS so the two
            strategies search the same price set).
    """

    name = "CappedUCB"

    def __init__(self, p_min: float = 1.0, p_max: float = 5.0, alpha: float = 0.5) -> None:
        if p_min <= 0 or p_max < p_min:
            raise ValueError("need 0 < p_min <= p_max")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.alpha = float(alpha)
        self._ladder = price_ladder(self.p_min, self.p_max, self.alpha)
        self._estimators: Dict[int, GridAcceptanceEstimator] = {}

    # ------------------------------------------------------------------
    # PricingStrategy interface
    # ------------------------------------------------------------------
    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        prices: Dict[int, float] = {}
        for grid_index in instance.grid_indices_with_tasks():
            demand = len(instance.tasks_by_grid.get(grid_index, []))
            supply = instance.workers_by_grid.get(grid_index, 0)
            estimator = self._estimator_for(grid_index)
            # Unit distances: C = |R^{tg}|, D = min(|W^{tg}|, |R^{tg}|).
            demand_coefficient = float(demand)
            supply_coefficient = float(min(supply, demand))
            if demand_coefficient == 0.0:
                prices[grid_index] = self.p_min
                continue
            price, _ = ucb_index(
                estimator.snapshots(),
                estimator.total_offers,
                demand_coefficient,
                supply_coefficient,
            )
            prices[grid_index] = self.clamp_price(price, self.p_min, self.p_max)
        return prices

    def observe_feedback(self, feedback: Sequence[PriceFeedback]) -> None:
        for item in feedback:
            self._record_observation(item.grid_index, item.price, item.accepted)

    def observe_feedback_batch(self, batch: PriceFeedbackBatch) -> None:
        if self._item_feedback_overridden(CappedUCBStrategy):
            super().observe_feedback_batch(batch)
            return
        for grid_index, price, accepted in zip(
            batch.grid_indices.tolist(), batch.prices.tolist(), batch.accepted.tolist()
        ):
            self._record_observation(grid_index, price, accepted)

    def _record_observation(self, grid_index: int, price: float, accepted: bool) -> None:
        estimator = self._estimator_for(grid_index)
        try:
            estimator.record(price, accepted)
        except KeyError:
            # Prices quoted by other mechanisms (e.g. during warm-up)
            # may be off-ladder; nearest-ladder attribution keeps the
            # statistics usable.
            nearest = min(self._ladder, key=lambda p: abs(p - price))
            estimator.record(nearest, accepted)

    def reset(self) -> None:
        self._estimators.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _estimator_for(self, grid_index: int) -> GridAcceptanceEstimator:
        if grid_index not in self._estimators:
            self._estimators[grid_index] = GridAcceptanceEstimator(grid_index, self._ladder)
        return self._estimators[grid_index]


__all__ = ["CappedUCBStrategy"]
