"""Pricing strategies evaluated in the paper (Section 5.1).

All strategies implement the :class:`~repro.pricing.strategy.PricingStrategy`
interface: per period they receive a :class:`~repro.core.gdp.PeriodInstance`
and return one unit price per grid; after the period the simulator feeds
back which offers were accepted so learning strategies can update their
estimates.

Shipped strategies:

* :class:`~repro.pricing.maps_strategy.MAPSStrategy` — the paper's
  contribution (Algorithms 2–3 on top of the base price);
* :class:`~repro.pricing.base_price.BasePriceStrategy` — "BaseP", the
  unified base price of Algorithm 1 for every grid;
* :class:`~repro.pricing.sdr.SDRStrategy` — supply/demand-ratio heuristic;
* :class:`~repro.pricing.sde.SDEStrategy` — supply/demand exponential
  heuristic;
* :class:`~repro.pricing.capped_ucb.CappedUCBStrategy` — the per-grid
  limited-supply posted-price mechanism of Babaioff et al. applied to each
  grid independently;
* :class:`~repro.pricing.myerson.OracleMyersonStrategy` — a non-paper
  oracle upper-line that prices each grid at the true Myerson reserve
  price (requires ground-truth distributions; used in ablations).
"""

from repro.pricing.strategy import PricingStrategy, PriceFeedback, PriceFeedbackBatch
from repro.pricing.base_price import BasePriceStrategy
from repro.pricing.sdr import SDRStrategy
from repro.pricing.sde import SDEStrategy
from repro.pricing.capped_ucb import CappedUCBStrategy
from repro.pricing.maps_strategy import MAPSStrategy
from repro.pricing.myerson import OracleMyersonStrategy
from repro.pricing.registry import available_strategies, create_strategy
from repro.pricing.smoothing import (
    PriceCap,
    PricePostProcessor,
    SmoothedStrategy,
    SpatialSmoother,
)

__all__ = [
    "PricePostProcessor",
    "PriceCap",
    "SpatialSmoother",
    "SmoothedStrategy",
    "PricingStrategy",
    "PriceFeedback",
    "PriceFeedbackBatch",
    "BasePriceStrategy",
    "SDRStrategy",
    "SDEStrategy",
    "CappedUCBStrategy",
    "MAPSStrategy",
    "OracleMyersonStrategy",
    "available_strategies",
    "create_strategy",
]
