"""SDR — pricing by the supply/demand ratio (Section 5.1, baseline 2).

SDR raises the price of a grid proportionally to how much demand exceeds
supply:

    p^{tg} = coefficient * p_b * |R^{tg}| / |W^{tg}|   if |R^{tg}| > |W^{tg}|
    p^{tg} = p_b                                        otherwise

The paper empirically sets ``coefficient = 0.5``.  ``|W^{tg}|`` counts the
workers *located in* grid ``g`` (the heuristic ignores that a worker can
also serve neighbouring grids, which is exactly the weakness MAPS fixes).
A grid with demand but no co-located workers has an infinite ratio; the
price is then clamped to ``p_max``.
"""

from __future__ import annotations

from typing import Dict

from repro.core.gdp import PeriodInstance
from repro.pricing.strategy import PricingStrategy


class SDRStrategy(PricingStrategy):
    """Supply-demand-ratio pricing heuristic.

    Args:
        base_price: The calibrated base price ``p_b``.
        coefficient: Multiplier on the ratio term (paper: 0.5).
        p_min: Lower clamp for quoted prices.
        p_max: Upper clamp for quoted prices.
    """

    name = "SDR"

    def __init__(
        self,
        base_price: float,
        coefficient: float = 0.5,
        p_min: float = 1.0,
        p_max: float = 5.0,
    ) -> None:
        if coefficient <= 0:
            raise ValueError("coefficient must be positive")
        if p_min <= 0 or p_max < p_min:
            raise ValueError("need 0 < p_min <= p_max")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.base_price = self.clamp_price(base_price, self.p_min, self.p_max)
        self.coefficient = float(coefficient)

    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        prices: Dict[int, float] = {}
        for grid_index in instance.grid_indices_with_tasks():
            demand = len(instance.tasks_by_grid.get(grid_index, []))
            supply = instance.workers_by_grid.get(grid_index, 0)
            if demand > supply:
                if supply == 0:
                    price = self.p_max
                else:
                    price = self.coefficient * self.base_price * demand / supply
            else:
                price = self.base_price
            prices[grid_index] = self.clamp_price(price, self.p_min, self.p_max)
        return prices


__all__ = ["SDRStrategy"]
