"""The MAPS pricing strategy (the paper's contribution) as a strategy object.

Wires together the pieces of Section 4 for use inside the simulation
engine:

* a per-grid :class:`~repro.learning.estimator.GridAcceptanceEstimator`
  shared across periods (optionally warm-started from the Base Pricing
  calibration),
* a :class:`~repro.learning.change.BinomialChangeDetector` per grid that
  resets a price's statistics when the demand distribution shifts,
* the :class:`~repro.core.maps.MAPSPlanner` that runs Algorithm 2 every
  period to allocate supply and set prices.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.base_pricing import BasePricingResult
from repro.core.gdp import PeriodInstance
from repro.core.maps import MAPSPlan, MAPSPlanner, MaximizerFn
from repro.core.maximizer import calculate_maximizer
from repro.learning.change import BinomialChangeDetector
from repro.learning.estimator import GridAcceptanceEstimator
from repro.learning.sampling import price_ladder
from repro.pricing.strategy import PriceFeedback, PriceFeedbackBatch, PricingStrategy


class MAPSStrategy(PricingStrategy):
    """MAtching-based Pricing Strategy.

    Args:
        base_price: The base price ``p_b`` (from Algorithm 1) used for
            grids without dedicated supply and as the neutral initial
            quote.
        p_min: Lower bound of the candidate price ladder.
        p_max: Upper bound of the ladder and the hard cap on quoted prices.
        alpha: Geometric step of the ladder.
        warm_start: Optional Base Pricing result whose per-grid statistics
            seed the UCB estimators (the paper notes MAPS "takes the base
            price as initial input"; re-using the calibration samples is
            the natural warm start).
        change_detection: Enable the binomial change detector of
            Section 4.2.2.
        change_window: Window size ``m`` of the change detector.
        maximizer: Per-grid price maximizer; swap in
            :func:`repro.core.maximizer.exploitation_maximizer` for the
            no-UCB ablation.
        vectorized_planner: Planner implementation switch forwarded to
            :class:`~repro.core.maps.MAPSPlanner` — ``None`` (default)
            picks the array-native planner whenever the stock maximizer
            is in use; ``False`` forces the reference loop (used by the
            equivalence tests).  Both produce bit-identical plans.
    """

    name = "MAPS"

    def __init__(
        self,
        base_price: float,
        p_min: float = 1.0,
        p_max: float = 5.0,
        alpha: float = 0.5,
        warm_start: Optional[BasePricingResult] = None,
        change_detection: bool = True,
        change_window: int = 60,
        maximizer: MaximizerFn = calculate_maximizer,
        vectorized_planner: Optional[bool] = None,
    ) -> None:
        if p_min <= 0 or p_max < p_min:
            raise ValueError("need 0 < p_min <= p_max")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.alpha = float(alpha)
        self.base_price = self.clamp_price(base_price, self.p_min, self.p_max)
        self._ladder = price_ladder(self.p_min, self.p_max, self.alpha)
        self._ladder_array = np.asarray(self._ladder, dtype=np.float64)
        self._planner = MAPSPlanner(
            base_price=self.base_price,
            p_min=self.p_min,
            p_max=self.p_max,
            maximizer=maximizer,
            vectorized=vectorized_planner,
        )
        self._warm_start = warm_start
        self._change_detection = bool(change_detection)
        self._change_window = int(change_window)
        self._estimators: Dict[int, GridAcceptanceEstimator] = {}
        self._detectors: Dict[int, BinomialChangeDetector] = {}
        self._last_plan: Optional[MAPSPlan] = None
        self._apply_warm_start()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_calibration(
        cls,
        calibration: BasePricingResult,
        p_min: float = 1.0,
        p_max: float = 5.0,
        alpha: float = 0.5,
        **kwargs,
    ) -> "MAPSStrategy":
        """Build MAPS directly from an Algorithm 1 calibration result."""
        return cls(
            base_price=calibration.base_price,
            p_min=p_min,
            p_max=p_max,
            alpha=alpha,
            warm_start=calibration,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # PricingStrategy interface
    # ------------------------------------------------------------------
    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        estimators = {
            grid_index: self._estimator_for(grid_index)
            for grid_index in instance.grid_indices_with_tasks()
        }
        plan = self._planner.plan(instance, estimators)
        self._last_plan = plan
        return {
            grid_index: plan.prices[grid_index]
            for grid_index in instance.grid_indices_with_tasks()
        }

    def observe_feedback(self, feedback: Sequence[PriceFeedback]) -> None:
        for item in feedback:
            self._record_observation(item.grid_index, item.price, item.accepted)

    def observe_feedback_batch(self, batch: PriceFeedbackBatch) -> None:
        if self._item_feedback_overridden(MAPSStrategy):
            super().observe_feedback_batch(batch)
            return
        if not len(batch):
            return
        # Snap every offered price to the ladder in one array op; argmin
        # returns the first minimal index, matching the per-item
        # ``min(ladder, key=...)`` tie-breaking.
        snapped = self._ladder_array[
            np.abs(batch.prices[:, None] - self._ladder_array[None, :]).argmin(axis=1)
        ]
        for grid_index, price, accepted in zip(
            batch.grid_indices.tolist(), snapped.tolist(), batch.accepted.tolist()
        ):
            self._record_observation(grid_index, price, accepted, snap=False)

    def reset(self) -> None:
        self._estimators.clear()
        self._detectors.clear()
        self._last_plan = None
        self._apply_warm_start()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def last_plan(self) -> Optional[MAPSPlan]:
        """The :class:`MAPSPlan` produced by the most recent period."""
        return self._last_plan

    def estimator_for_grid(self, grid_index: int) -> GridAcceptanceEstimator:
        """Expose the per-grid estimator (used by tests and diagnostics)."""
        return self._estimator_for(grid_index)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _apply_warm_start(self) -> None:
        if self._warm_start is None:
            return
        for grid_index, calibrated in self._warm_start.estimators.items():
            estimator = GridAcceptanceEstimator(grid_index, self._ladder)
            for snapshot in calibrated.snapshots():
                price = self._snap_to_ladder(snapshot.price)
                acceptances = int(round(snapshot.sample_mean * snapshot.offers))
                if snapshot.offers > 0:
                    estimator.record_batch(price, snapshot.offers, acceptances)
            self._estimators[grid_index] = estimator

    def _record_observation(
        self, grid_index: int, price: float, accepted: bool, snap: bool = True
    ) -> None:
        estimator = self._estimator_for(grid_index)
        if snap:
            price = self._snap_to_ladder(price)
        estimator.record(price, accepted)
        if self._change_detection:
            detector = self._detectors.setdefault(
                grid_index,
                BinomialChangeDetector(window=self._change_window),
            )
            if detector.observe(price, accepted):
                # Demand shift detected: forget this price's history so
                # the UCB index re-explores it.
                estimator.reset_price(price)

    def _estimator_for(self, grid_index: int) -> GridAcceptanceEstimator:
        if grid_index not in self._estimators:
            self._estimators[grid_index] = GridAcceptanceEstimator(grid_index, self._ladder)
        return self._estimators[grid_index]

    def _snap_to_ladder(self, price: float) -> float:
        return min(self._ladder, key=lambda p: abs(p - price))


__all__ = ["MAPSStrategy"]
