"""Strategy registry used by the experiment harness.

The benchmark harness iterates over strategy names ("MAPS", "BaseP", ...)
and needs to instantiate each with a consistent set of shared parameters
(base price, price bounds, ladder step).  :func:`create_strategy` is the
single factory the harness uses; :func:`available_strategies` lists the
names of the five strategies compared in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.base_pricing import BasePricingResult
from repro.pricing.base_price import BasePriceStrategy
from repro.pricing.capped_ucb import CappedUCBStrategy
from repro.pricing.maps_strategy import MAPSStrategy
from repro.pricing.sde import SDEStrategy
from repro.pricing.sdr import SDRStrategy
from repro.pricing.strategy import PricingStrategy

#: The five strategies of Section 5.1, in the paper's plotting order.
PAPER_STRATEGIES: List[str] = ["MAPS", "BaseP", "SDR", "SDE", "CappedUCB"]


def available_strategies() -> List[str]:
    """Names of the strategies compared in the paper's evaluation."""
    return list(PAPER_STRATEGIES)


def create_strategy(
    name: str,
    base_price: float,
    p_min: float = 1.0,
    p_max: float = 5.0,
    alpha: float = 0.5,
    calibration: Optional[BasePricingResult] = None,
    **overrides,
) -> PricingStrategy:
    """Instantiate a strategy by name with shared parameters.

    Args:
        name: One of ``MAPS``, ``BaseP``, ``SDR``, ``SDE``, ``CappedUCB``
            (case-insensitive).
        base_price: The calibrated base price ``p_b`` shared by BaseP, SDR,
            SDE and MAPS.
        p_min: Lower price bound.
        p_max: Upper price bound.
        alpha: Ladder step for UCB-based strategies.
        calibration: Optional full Algorithm 1 result; when given, MAPS is
            warm-started from its statistics.
        **overrides: Extra keyword arguments forwarded to the strategy
            constructor (e.g. ``coefficient`` for SDR).

    Raises:
        ValueError: for unknown strategy names.
    """
    key = name.strip().lower()
    if key == "maps":
        if calibration is not None and "warm_start" not in overrides:
            overrides["warm_start"] = calibration
        return MAPSStrategy(
            base_price=base_price, p_min=p_min, p_max=p_max, alpha=alpha, **overrides
        )
    if key in ("basep", "base", "base_price"):
        return BasePriceStrategy(base_price=base_price, p_min=p_min, p_max=p_max, **overrides)
    if key == "sdr":
        return SDRStrategy(base_price=base_price, p_min=p_min, p_max=p_max, **overrides)
    if key == "sde":
        return SDEStrategy(base_price=base_price, p_min=p_min, p_max=p_max, **overrides)
    if key in ("cappeducb", "capped_ucb", "capped-ucb"):
        return CappedUCBStrategy(p_min=p_min, p_max=p_max, alpha=alpha, **overrides)
    raise ValueError(
        f"unknown strategy {name!r}; available: {', '.join(PAPER_STRATEGIES)}"
    )


__all__ = ["PAPER_STRATEGIES", "available_strategies", "create_strategy"]
