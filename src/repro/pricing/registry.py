"""Strategy registry used by the experiment harness.

The benchmark harness iterates over strategy names ("MAPS", "BaseP", ...)
and needs to instantiate each with a consistent set of shared parameters
(base price, price bounds, ladder step).  :func:`create_strategy` is the
single factory the harness uses; :func:`available_strategies` lists the
names of the five strategies compared in the paper (Section 5.1), in the
paper's plotting order.

This registry predates the decorator-based ones
(:mod:`repro.matching.registry`, :mod:`repro.simulation.scenarios`) and
keeps an explicit factory instead, because the five strategies share a
calibration hand-off: ``create_strategy`` threads the Algorithm 1 result
into MAPS as a UCB warm start while the heuristics only consume its base
price.  Name matching is case-insensitive and tolerant of common aliases
(``base_price``, ``capped-ucb``, ...).

Runnable doctest (also exercised by the CI docs job):

>>> from repro.pricing.registry import available_strategies, create_strategy
>>> available_strategies()
['MAPS', 'BaseP', 'SDR', 'SDE', 'CappedUCB']
>>> strategy = create_strategy("BaseP", base_price=2.0)
>>> strategy.name
'BaseP'
>>> create_strategy("sdr", base_price=2.0).name  # case-insensitive
'SDR'
>>> create_strategy("martingale", base_price=2.0)
Traceback (most recent call last):
    ...
ValueError: unknown strategy 'martingale'; available: MAPS, BaseP, SDR, SDE, CappedUCB
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.base_pricing import BasePricingResult
from repro.pricing.base_price import BasePriceStrategy
from repro.pricing.capped_ucb import CappedUCBStrategy
from repro.pricing.maps_strategy import MAPSStrategy
from repro.pricing.sde import SDEStrategy
from repro.pricing.sdr import SDRStrategy
from repro.pricing.strategy import PricingStrategy

#: The five strategies of Section 5.1, in the paper's plotting order.
PAPER_STRATEGIES: List[str] = ["MAPS", "BaseP", "SDR", "SDE", "CappedUCB"]


def available_strategies() -> List[str]:
    """Names of the strategies compared in the paper's evaluation."""
    return list(PAPER_STRATEGIES)


def create_strategy(
    name: str,
    base_price: float,
    p_min: float = 1.0,
    p_max: float = 5.0,
    alpha: float = 0.5,
    calibration: Optional[BasePricingResult] = None,
    **overrides,
) -> PricingStrategy:
    """Instantiate a strategy by name with shared parameters.

    Args:
        name: One of ``MAPS``, ``BaseP``, ``SDR``, ``SDE``, ``CappedUCB``
            (case-insensitive).
        base_price: The calibrated base price ``p_b`` shared by BaseP, SDR,
            SDE and MAPS.
        p_min: Lower price bound.
        p_max: Upper price bound.
        alpha: Ladder step for UCB-based strategies.
        calibration: Optional full Algorithm 1 result; when given, MAPS is
            warm-started from its statistics.
        **overrides: Extra keyword arguments forwarded to the strategy
            constructor (e.g. ``coefficient`` for SDR).

    Raises:
        ValueError: for unknown strategy names.
    """
    key = name.strip().lower()
    if key == "maps":
        if calibration is not None and "warm_start" not in overrides:
            overrides["warm_start"] = calibration
        return MAPSStrategy(
            base_price=base_price, p_min=p_min, p_max=p_max, alpha=alpha, **overrides
        )
    if key in ("basep", "base", "base_price"):
        return BasePriceStrategy(base_price=base_price, p_min=p_min, p_max=p_max, **overrides)
    if key == "sdr":
        return SDRStrategy(base_price=base_price, p_min=p_min, p_max=p_max, **overrides)
    if key == "sde":
        return SDEStrategy(base_price=base_price, p_min=p_min, p_max=p_max, **overrides)
    if key in ("cappeducb", "capped_ucb", "capped-ucb"):
        return CappedUCBStrategy(p_min=p_min, p_max=p_max, alpha=alpha, **overrides)
    raise ValueError(
        f"unknown strategy {name!r}; available: {', '.join(PAPER_STRATEGIES)}"
    )


def calibrated_kwargs(
    name: str,
    calibration: BasePricingResult,
    p_min: float = 1.0,
    p_max: float = 5.0,
) -> Dict[str, object]:
    """Shared :func:`create_strategy` kwargs after an Algorithm 1 run.

    The single place encoding the calibration hand-off the paper's
    evaluation uses: every strategy receives the calibrated base price and
    the price bounds, and MAPS alone is warm-started from the full
    calibration statistics.  Used by the figure sweeps, the CLI scenario
    runner and the examples so the recipe cannot drift between surfaces.
    """
    return dict(
        base_price=calibration.base_price,
        p_min=p_min,
        p_max=p_max,
        calibration=calibration if name.strip().lower() == "maps" else None,
    )


__all__ = [
    "PAPER_STRATEGIES",
    "available_strategies",
    "calibrated_kwargs",
    "create_strategy",
]
