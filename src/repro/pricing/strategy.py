"""The pricing strategy interface shared by MAPS and all baselines.

A strategy's life cycle inside the simulation engine is::

    strategy.reset()
    for each period t:
        prices = strategy.price_period(instance_t)     # {grid: unit price}
        ... simulator realises accept/reject + matching ...
        strategy.observe_feedback(feedback_list_t)     # learning signal

``price_period`` must return a price for every grid that has at least one
task this period (prices for other grids are optional; the engine only
offers prices to existing tasks).  ``observe_feedback`` receives one
:class:`PriceFeedback` per task with the offered price and the requester's
decision, which is exactly the information a real platform observes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.gdp import PeriodInstance


@dataclass(frozen=True)
class PriceFeedback:
    """Accept/reject feedback for one task of the just-finished period.

    Attributes:
        period: The time period of the offer.
        grid_index: Grid cell of the task's origin.
        price: The unit price that was offered.
        accepted: Whether the requester accepted the price.
        distance: The task's travel distance (useful for diagnostics).
        served: Whether the task was actually served (accepted *and*
            matched to a worker).  Strategies learn demand from
            ``accepted``; ``served`` is reported for completeness.
    """

    period: int
    grid_index: int
    price: float
    accepted: bool
    distance: float
    served: bool = False


class PricingStrategy(ABC):
    """Abstract base class of every pricing strategy."""

    #: Human-readable name used in experiment reports (e.g. ``"MAPS"``).
    name: str = "strategy"

    @abstractmethod
    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        """Return the unit price per grid index for this period."""

    def observe_feedback(self, feedback: Sequence[PriceFeedback]) -> None:
        """Receive accept/reject feedback for the just-priced period.

        The default implementation ignores feedback (heuristics such as SDR
        and SDE do not learn).
        """

    def reset(self) -> None:
        """Clear any learned state before a fresh simulation run."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def clamp_price(price: float, p_min: float, p_max: float) -> float:
        """Clamp a price into the quotable interval ``[p_min, p_max]``."""
        return min(p_max, max(p_min, float(price)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["PricingStrategy", "PriceFeedback"]
