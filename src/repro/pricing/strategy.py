"""The pricing strategy interface shared by MAPS and all baselines.

A strategy's life cycle inside the simulation engine is::

    strategy.reset()
    for each period t:
        prices = strategy.price_period(instance_t)     # {grid: unit price}
        ... simulator realises accept/reject + matching ...
        strategy.observe_feedback(feedback_list_t)     # learning signal

``price_period`` must return a price for every grid that has at least one
task this period (prices for other grids are optional; the engine only
offers prices to existing tasks).  ``observe_feedback`` receives one
:class:`PriceFeedback` per task with the offered price and the requester's
decision, which is exactly the information a real platform observes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.gdp import PeriodInstance


@dataclass(frozen=True)
class PriceFeedback:
    """Accept/reject feedback for one task of the just-finished period.

    Attributes:
        period: The time period of the offer.
        grid_index: Grid cell of the task's origin.
        price: The unit price that was offered.
        accepted: Whether the requester accepted the price.
        distance: The task's travel distance (useful for diagnostics).
        served: Whether the task was actually served (accepted *and*
            matched to a worker).  Strategies learn demand from
            ``accepted``; ``served`` is reported for completeness.
    """

    period: int
    grid_index: int
    price: float
    accepted: bool
    distance: float
    served: bool = False


# eq=False: ndarray fields would make a generated __eq__ raise on
# multi-task batches; compare batches via to_feedback_list() if needed.
@dataclass(frozen=True, eq=False)
class PriceFeedbackBatch:
    """One period's feedback for *all* tasks, as parallel arrays.

    The vectorised simulation pipeline produces this instead of one
    :class:`PriceFeedback` object per task: position ``i`` of every array
    describes task position ``i`` of the period.  Strategies that learn
    from feedback can override
    :meth:`PricingStrategy.observe_feedback_batch` to consume the arrays
    directly; the default implementation materialises the per-item list
    and delegates to :meth:`PricingStrategy.observe_feedback`, so existing
    strategies keep working unchanged.

    Attributes:
        period: The time period of the offers.
        grid_indices: ``int64`` grid cell per task.
        prices: ``float64`` offered unit price per task.
        accepted: Boolean accept/reject decision per task.
        distances: ``float64`` travel distance per task.
        served: Boolean served (accepted *and* matched) flag per task.
    """

    period: int
    grid_indices: np.ndarray
    prices: np.ndarray
    accepted: np.ndarray
    distances: np.ndarray
    served: np.ndarray

    def __len__(self) -> int:
        return int(self.grid_indices.shape[0])

    def to_feedback_list(self) -> List[PriceFeedback]:
        """Materialise the equivalent per-task :class:`PriceFeedback` list."""
        return [
            PriceFeedback(
                period=self.period,
                grid_index=grid_index,
                price=price,
                accepted=accepted,
                distance=distance,
                served=served,
            )
            for grid_index, price, accepted, distance, served in zip(
                self.grid_indices.tolist(),
                self.prices.tolist(),
                self.accepted.tolist(),
                self.distances.tolist(),
                self.served.tolist(),
            )
        ]

    @classmethod
    def from_feedback(cls, feedback: Sequence[PriceFeedback]) -> "PriceFeedbackBatch":
        """Pack a per-item feedback list into a batch (for tests/adapters)."""
        period = feedback[0].period if feedback else 0
        return cls(
            period=period,
            grid_indices=np.array([item.grid_index for item in feedback], dtype=np.int64),
            prices=np.array([item.price for item in feedback], dtype=np.float64),
            accepted=np.array([item.accepted for item in feedback], dtype=bool),
            distances=np.array([item.distance for item in feedback], dtype=np.float64),
            served=np.array([item.served for item in feedback], dtype=bool),
        )


class PricingStrategy(ABC):
    """Abstract base class of every pricing strategy."""

    #: Human-readable name used in experiment reports (e.g. ``"MAPS"``).
    name: str = "strategy"

    @abstractmethod
    def price_period(self, instance: PeriodInstance) -> Dict[int, float]:
        """Return the unit price per grid index for this period."""

    def observe_feedback(self, feedback: Sequence[PriceFeedback]) -> None:
        """Receive accept/reject feedback for the just-priced period.

        The default implementation ignores feedback (heuristics such as SDR
        and SDE do not learn).
        """

    def observe_feedback_batch(self, batch: "PriceFeedbackBatch") -> None:
        """Receive one period's feedback as parallel arrays.

        The default delegates to :meth:`observe_feedback` after
        materialising the per-item list — unless the strategy never
        overrode :meth:`observe_feedback`, in which case the feedback is
        ignored without building any objects (the fast path for
        non-learning strategies such as BaseP/SDR/SDE).  Learning
        strategies may override this method to consume the arrays
        directly.
        """
        if type(self).observe_feedback is PricingStrategy.observe_feedback:
            return
        self.observe_feedback(batch.to_feedback_list())

    def _item_feedback_overridden(self, owner: type) -> bool:
        """Whether a subclass customised :meth:`observe_feedback`.

        Learning strategies that override :meth:`observe_feedback_batch`
        with an array fast path call this first (passing their own class
        as ``owner``) and delegate to the base default when it returns
        True, so a subclass's per-item hook keeps receiving the feedback.
        """
        return type(self).observe_feedback is not owner.observe_feedback

    def reset(self) -> None:
        """Clear any learned state before a fresh simulation run."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def clamp_price(price: float, p_min: float, p_max: float) -> float:
        """Clamp a price into the quotable interval ``[p_min, p_max]``."""
        return min(p_max, max(p_min, float(price)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["PricingStrategy", "PriceFeedback", "PriceFeedbackBatch"]
