"""Wire protocol of the dispatch service: newline-delimited JSON.

One JSON object per line in both directions.  JSON is the repo's
bitwise-safe interchange format already (every ``BENCH_*.json`` relies
on it): Python serialises floats with ``repr`` shortest round-trip, so a
price or revenue travels the socket and comes back the identical double
— which is what lets the client-side differential gate compare revenue
``repr``-exactly against the offline engine.

Client → server messages (``type`` field):

========== =============================================================
``hello``  Open a session: ``{"type": "hello", "protocol": 1,
           "scenario": ..., "scale": ..., "seed": ..., "strategy": ...,
           "params": {...}, "task_lifetime": ...}``.  The server owns
           the universe (built from the scenario at startup); hello must
           name the same scenario/scale/seed/params or is refused.
``task``   A task arrival: ``{"type": "task", "time": t, "task":
           {...}}`` (see :func:`task_to_wire`).
``worker`` A worker arrival: ``{"type": "worker", "time": t, "worker":
           {...}}``.
``depart`` Explicit worker departure: ``{"type": "depart", "time": t,
           "worker_id": ...}``.
``flush``  Settle everything still pending and reply with ``summary``.
``stats``  Request a ``stats`` snapshot (served immediately, bypassing
           the ingest queue).
``bye``    Close the session.
========== =============================================================

Server → client: ``ready`` (hello accepted), ``quote`` (per task, with
price/accepted/matched/degraded and latency attribution), ``joined``
(per worker), ``settle`` (one per commit/expire/depart, emitted as
settlement happens), ``reject`` (admission control shed the event),
``summary`` (post-flush totals), ``stats``, and ``error``.

The messages carry *full* entity payloads even though the server already
knows its universe: the server validates the ids and positions agree, so
a client replaying a different stream fails loudly instead of silently
quoting the server's own data.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.market.entities import Task, Worker
from repro.spatial.geometry import Point

#: Bump when the message schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on one wire line; asyncio's reader enforces it so a
#: garbage peer cannot balloon the buffer.
MAX_LINE_BYTES = 1 << 20

#: Client→server message types that flow through the ingest queue (in
#: arrival order); everything else is handled inline by the reader.
EVENT_TYPES = ("task", "worker", "depart", "flush")


class ProtocolError(ValueError):
    """A malformed or out-of-contract message."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def encode_message(message: Dict[str, Any]) -> bytes:
    """One message → one newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """One wire line → message dict, with contract checks.

    Raises:
        ProtocolError: on non-JSON input, non-object payloads, or a
            missing ``type`` field.
    """
    try:
        message = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message has no 'type' field")
    return message


# ---------------------------------------------------------------------------
# entity payloads
# ---------------------------------------------------------------------------
def task_to_wire(task: Task) -> Dict[str, Any]:
    """Serialise a task for the wire (floats survive bit-exactly)."""
    return {
        "task_id": int(task.task_id),
        "period": int(task.period),
        "origin": [task.origin.x, task.origin.y],
        "destination": [task.destination.x, task.destination.y],
        "distance": task.distance,
        "valuation": task.valuation,
        "grid_index": task.grid_index,
        "duration": task.duration,
    }


def task_from_wire(payload: Dict[str, Any]) -> Task:
    """Rebuild a task from its wire payload.

    Raises:
        ProtocolError: on missing fields or malformed coordinates.
    """
    try:
        return Task(
            task_id=int(payload["task_id"]),
            period=int(payload["period"]),
            origin=Point(*map(float, payload["origin"])),
            destination=Point(*map(float, payload["destination"])),
            distance=float(payload["distance"]),
            valuation=(
                None if payload.get("valuation") is None else float(payload["valuation"])
            ),
            grid_index=(
                None if payload.get("grid_index") is None else int(payload["grid_index"])
            ),
            duration=(
                None if payload.get("duration") is None else float(payload["duration"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed task payload: {exc}") from exc


def worker_to_wire(worker: Worker) -> Dict[str, Any]:
    """Serialise a worker for the wire."""
    return {
        "worker_id": int(worker.worker_id),
        "period": int(worker.period),
        "location": [worker.location.x, worker.location.y],
        "radius": worker.radius,
        "duration": None if worker.duration is None else int(worker.duration),
    }


def worker_from_wire(payload: Dict[str, Any]) -> Worker:
    """Rebuild a worker from its wire payload.

    Raises:
        ProtocolError: on missing fields or malformed coordinates.
    """
    try:
        return Worker(
            worker_id=int(payload["worker_id"]),
            period=int(payload["period"]),
            location=Point(*map(float, payload["location"])),
            radius=float(payload["radius"]),
            duration=(
                None if payload.get("duration") is None else int(payload["duration"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed worker payload: {exc}") from exc


# ---------------------------------------------------------------------------
# message constructors (keep field names in one place)
# ---------------------------------------------------------------------------
def hello_message(
    scenario: str,
    scale: float,
    seed: int,
    strategy: str,
    params: Optional[Dict[str, Any]] = None,
    task_lifetime: Optional[float] = None,
) -> Dict[str, Any]:
    """The session-opening handshake message."""
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "scenario": scenario,
        "scale": scale,
        "seed": seed,
        "strategy": strategy,
        "params": params or {},
        "task_lifetime": task_lifetime,
    }


def error_message(reason: str) -> Dict[str, Any]:
    return {"type": "error", "reason": reason}


__all__ = [
    "EVENT_TYPES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "error_message",
    "hello_message",
    "task_from_wire",
    "task_to_wire",
    "worker_from_wire",
    "worker_to_wire",
]
