"""Replay client: drive a scenario's arrival stream into the service.

The client rebuilds the same :class:`~repro.simulation.streaming.ArrivalStream`
the server owns (scenario registry, same scale/seed/params), walks it
through the same validated-event iterator the offline engine uses, and
ships every arrival as one NDJSON line.  Replies are collected by a
concurrent reader task — essential under ``admission="block"``: if the
client wrote without reading, server backpressure and the client's full
socket buffer would deadlock the pair.

Pacing: ``rate`` is in *stream time units per wall-clock second*.  A
stream whose events span 12 periods replayed at ``rate=6.0`` takes about
two seconds.  ``rate=None`` (offline) sends as fast as the socket
allows, which with blocking admission is exactly the lossless mode the
differential gate runs in.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    hello_message,
    task_to_wire,
    worker_to_wire,
)
from repro.simulation.streaming import TaskArrival, _validated_events


@dataclass
class ReplayReport:
    """Everything one replay session produced, in arrival order.

    Attributes:
        ready: The server's handshake reply (strategy, universe sizes…).
        quotes: One ``quote`` message per task the server priced.
        settles: Every ``settle`` message (commits, expiries, departures).
        rejects: Task arrivals shed by admission control.
        joined: One ``joined`` message per worker arrival.
        summary: The post-flush ``summary`` totals (``None`` only if the
            session died before flushing).
        stats: The final ``stats`` snapshot, when requested.
        events_sent: Arrival events actually written to the socket.
        wall_seconds: Wall-clock span of the send loop.
    """

    ready: Dict[str, Any]
    quotes: List[Dict[str, Any]] = field(default_factory=list)
    settles: List[Dict[str, Any]] = field(default_factory=list)
    rejects: List[Dict[str, Any]] = field(default_factory=list)
    joined: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None
    stats: Optional[Dict[str, Any]] = None
    events_sent: int = 0
    wall_seconds: float = 0.0

    @property
    def commits(self) -> List[Tuple[int, int]]:
        """Realised ``(task_id, worker_id)`` pairs in settlement order."""
        return [
            (settle["task_id"], settle["worker_id"])
            for settle in self.settles
            if settle["kind"] == "commit"
        ]

    @property
    def revenue(self) -> float:
        """Settled revenue (bit-exact off the wire — JSON floats round-trip)."""
        if self.summary is None:
            raise ValueError("session produced no summary (flush never ran)")
        return float(self.summary["revenue"])


async def replay(
    host: str,
    port: int,
    scenario: str,
    *,
    scale: float = 0.05,
    seed: int = 0,
    strategy: str = "BaseP",
    params: Optional[Dict[str, Any]] = None,
    task_lifetime: Optional[float] = None,
    rate: Optional[float] = None,
    request_stats: bool = True,
) -> ReplayReport:
    """Replay one scenario session against a running server.

    Args:
        host: Server host.
        port: Server port.
        scenario: Registered scenario name (must match the server's).
        scale: Scenario scale (must match the server's).
        seed: Scenario seed (must match the server's).
        strategy: Pricing strategy the session should quote with.
        params: Extra scenario parameters (must match the server's).
        task_lifetime: Optional lifetime override shipped in the hello.
        rate: Stream time units per wall second; ``None`` = offline.
        request_stats: Ask for a final ``stats`` snapshot before ``bye``.

    Returns:
        The collected :class:`ReplayReport`.

    Raises:
        ProtocolError: if the server refuses the hello or reports an
            error mid-session.
    """
    from repro.simulation.scenarios import get_scenario

    params = dict(params or {})
    stream = get_scenario(scenario).stream(scale=scale, seed=seed, **params)

    reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
    try:
        writer.write(
            encode_message(
                hello_message(
                    scenario,
                    scale,
                    seed,
                    strategy,
                    params=params,
                    task_lifetime=task_lifetime,
                )
            )
        )
        await writer.drain()
        first = await reader.readline()
        if not first:
            raise ProtocolError("server closed the connection during handshake")
        ready = decode_message(first)
        if ready["type"] == "error":
            raise ProtocolError(f"hello refused: {ready.get('reason')}")
        if ready["type"] != "ready":
            raise ProtocolError(f"expected 'ready', got {ready['type']!r}")

        report = ReplayReport(ready=ready)
        error: List[Dict[str, Any]] = []
        summary_seen = asyncio.Event()

        async def _collect() -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        return
                    message = decode_message(line)
                    mtype = message["type"]
                    if mtype == "quote":
                        report.quotes.append(message)
                    elif mtype == "settle":
                        report.settles.append(message)
                    elif mtype == "reject":
                        report.rejects.append(message)
                    elif mtype in ("joined", "departed"):
                        report.joined.append(message)
                    elif mtype == "summary":
                        report.summary = message
                        summary_seen.set()
                    elif mtype == "stats":
                        report.stats = message
                    elif mtype == "error":
                        error.append(message)
                        return
            finally:
                summary_seen.set()

        collector = asyncio.create_task(_collect())
        started = perf_counter()
        origin: Optional[float] = None
        for event in _validated_events(stream):
            if collector.done():
                break
            if rate is not None:
                if origin is None:
                    origin = event.time
                target = started + (event.time - origin) / rate
                delay = target - perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            if isinstance(event, TaskArrival):
                message = {
                    "type": "task",
                    "time": event.time,
                    "task": task_to_wire(event.task),
                }
            else:
                message = {
                    "type": "worker",
                    "time": event.time,
                    "worker": worker_to_wire(event.worker),
                }
            writer.write(encode_message(message))
            report.events_sent += 1
            # Draining per event is what lets blocking admission reach
            # back through TCP and pace this loop losslessly.
            await writer.drain()
        report.wall_seconds = perf_counter() - started

        if not collector.done():
            writer.write(encode_message({"type": "flush", "time": None}))
            await writer.drain()
            # The summary marks the flush fully settled; only then is a
            # stats snapshot the *final* one.
            await summary_seen.wait()
            if request_stats and not collector.done():
                writer.write(encode_message({"type": "stats"}))
            writer.write(encode_message({"type": "bye"}))
            await writer.drain()
        await collector
        if error:
            raise ProtocolError(f"server error: {error[0].get('reason')}")
        return report
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def run_replay(host: str, port: int, scenario: str, **kwargs: Any) -> ReplayReport:
    """Synchronous wrapper around :func:`replay` (own event loop)."""
    return asyncio.run(replay(host, port, scenario, **kwargs))


__all__ = ["ReplayReport", "replay", "run_replay"]
