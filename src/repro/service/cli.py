"""Command-line front end of the dispatch service.

Two subcommands, reachable both as ``python -m repro.service`` and
through the experiment CLI (``python -m repro.experiments.cli serve`` /
``... replay``)::

    # terminal 1: own the hotspot_burst universe, serve on a fixed port
    python -m repro.service serve --scenario hotspot_burst --port 7431 \
        --slo-ms 50 --admission reject

    # terminal 2: replay the same stream at 6 period-units/second
    python -m repro.service replay --port 7431 --scenario hotspot_burst \
        --strategy SDR --rate 6

``serve --port 0`` binds an ephemeral port and prints it, which is how
the CI job and the benchmark harness boot throwaway servers.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from repro.service.client import run_replay
from repro.service.server import DispatchServer, ServiceConfig


def build_service_parser() -> argparse.ArgumentParser:
    from repro.pricing.registry import available_strategies
    from repro.simulation.scenarios import available_scenarios

    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Run or exercise the event-at-a-time dispatch service.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="own a scenario universe and quote arrivals over a socket"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port (printed)"
    )
    serve.add_argument(
        "--scenario", choices=available_scenarios(), default="hotspot_burst"
    )
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--strategy",
        choices=[name for name in available_strategies() if name != "MAPS"],
        default="BaseP",
        help="default pricing strategy (a hello may override; MAPS needs "
        "window-batched supply and cannot quote event-at-a-time)",
    )
    serve.add_argument("--task-lifetime", type=float, default=4.0)
    serve.add_argument("--max-degree", type=int, default=None)
    serve.add_argument(
        "--universe-matcher",
        action="store_true",
        help="force the classic universe delta matcher instead of the "
        "incremental live-plane backend (the default when --max-degree "
        "is unset); quotes are bit-identical either way",
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="per-quote latency objective; queue waits beyond "
        "degrade-fraction of it switch the quote to the greedy insert "
        "path (default: no SLO, never degrade)",
    )
    serve.add_argument("--degrade-fraction", type=float, default=0.5)
    serve.add_argument("--queue-size", type=int, default=1024)
    serve.add_argument(
        "--admission",
        choices=["block", "reject"],
        default="block",
        help="full-queue policy: block the reader (lossless TCP "
        "backpressure) or shed task arrivals with reject replies",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="exit after the first session's connection closes",
    )

    replay = commands.add_parser(
        "replay", help="replay a scenario's arrival stream against a server"
    )
    replay.add_argument("--host", default="127.0.0.1")
    replay.add_argument("--port", type=int, required=True)
    replay.add_argument(
        "--scenario", choices=available_scenarios(), default="hotspot_burst"
    )
    replay.add_argument("--scale", type=float, default=0.05)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--strategy", default="BaseP")
    replay.add_argument("--task-lifetime", type=float, default=None)
    replay.add_argument(
        "--rate",
        type=float,
        default=None,
        help="stream time units per wall second (default: offline, "
        "as fast as backpressure allows)",
    )
    return parser


def _serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        scenario=args.scenario,
        scale=args.scale,
        seed=args.seed,
        strategy=args.strategy,
        task_lifetime=args.task_lifetime,
        max_degree=args.max_degree,
        incremental=False if args.universe_matcher else None,
        slo_ms=args.slo_ms,
        degrade_fraction=args.degrade_fraction,
        queue_size=args.queue_size,
        admission=args.admission,
        once=args.once,
    )

    async def _run() -> None:
        server = DispatchServer(config)
        port = await server.start(host=args.host, port=args.port)
        print(
            f"# dispatch service: {config.scenario} scale={config.scale:g} "
            f"seed={config.seed} on {args.host}:{port} "
            f"(admission={config.admission}, slo_ms={config.slo_ms}, "
            f"GET /stats for observability)",
            flush=True,
        )
        try:
            await server.serve_until_stopped()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        # The shm module's signal/atexit backstops already reclaimed the
        # arena segment; a bare ^C exit is a clean exit.
        pass
    return 0


def _replay(args: argparse.Namespace) -> int:
    report = run_replay(
        args.host,
        args.port,
        args.scenario,
        scale=args.scale,
        seed=args.seed,
        strategy=args.strategy,
        task_lifetime=args.task_lifetime,
        rate=args.rate,
    )
    summary = report.summary or {}
    print(
        f"# replayed {report.events_sent} events in {report.wall_seconds:.3f}s "
        f"({report.events_sent / report.wall_seconds:.0f} ev/s)"
        if report.wall_seconds > 0
        else f"# replayed {report.events_sent} events"
    )
    print(
        f"revenue {summary.get('revenue', 0.0):.4f}  "
        f"quoted {summary.get('quoted', 0)}  "
        f"accepted {summary.get('accepted', 0)}  "
        f"committed {summary.get('committed', 0)}  "
        f"expired {summary.get('expired', 0)}  "
        f"degraded {summary.get('degraded', 0)}  "
        f"rejected {summary.get('rejected', 0)}"
    )
    if report.stats is not None:
        for name in ("queue_wait", "service", "total"):
            series = report.stats.get("latency_ms", {}).get(name)
            if series:
                print(
                    f"{name:>10s}: p50 {series['p50_ms']:.3f} ms  "
                    f"p99 {series['p99_ms']:.3f} ms  "
                    f"max {series['max_ms']:.3f} ms  (n={series['count']})"
                )
    return 0


def service_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_service_parser()
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.command == "serve":
        return _serve(args)
    return _replay(args)


__all__ = ["build_service_parser", "service_main"]
