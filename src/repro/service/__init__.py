"""Dispatch-as-a-service: the asyncio event-at-a-time front end.

Everything offline stays in :mod:`repro.simulation`; this package adds
the long-running ingest layer of ROADMAP item 1 — a newline-delimited
JSON socket protocol (:mod:`repro.service.protocol`), the resident
dispatch server with latency SLOs, bounded-queue backpressure and a
``/stats`` surface (:mod:`repro.service.server`), and a replay client
driving any registered scenario's arrival stream at a configurable rate
(:mod:`repro.service.client`).  The event loop itself — settle, quote,
decide, insert — is :class:`repro.simulation.streaming.DispatchSession`,
shared with the offline :class:`~repro.simulation.streaming.EventStreamingEngine`
so the service's differential gate is exact.  See ``docs/service.md``.
"""

from repro.service.client import ReplayReport, replay, run_replay
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.server import DispatchServer, ServiceConfig

__all__ = [
    "DispatchServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplayReport",
    "ServiceConfig",
    "replay",
    "run_replay",
]
