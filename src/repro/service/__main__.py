"""``python -m repro.service`` — serve or replay; see ``--help``."""

import sys

from repro.service.cli import service_main

if __name__ == "__main__":  # pragma: no cover - exercised via service_main in tests
    sys.exit(service_main())
