"""The resident dispatch server: asyncio ingest over one live session.

Architecture (one connection = one replay session, FIFO end to end)::

    client ──lines──▶ reader ──bounded queue──▶ consumer ──▶ DispatchSession
                        │ stats/reject (inline)     │ quotes/settlements
                        ▼                           ▼
                      writer  ◀─────────────────────┘

* The **reader** parses lines and enqueues events into a bounded
  :class:`asyncio.Queue`.  Under ``admission="block"`` (default) a full
  queue makes the reader await — it stops reading, the TCP window fills,
  and backpressure propagates to the client losslessly.  Under
  ``admission="reject"`` a full queue sheds *task* arrivals with an
  explicit ``reject`` reply instead (workers, departures and flushes are
  never shed: silently losing supply or control messages would corrupt
  the session state the client reasons about).
* The **consumer** drains the queue in arrival order through one
  resident :class:`~repro.simulation.streaming.DispatchSession` — the
  same settle → quote → decide → insert core the offline
  :class:`~repro.simulation.streaming.EventStreamingEngine` runs, which
  is what makes the differential gate exact.  When a quote has waited in
  the queue longer than ``degrade_fraction * slo_ms``, the insert falls
  back to the bounded greedy path
  (:meth:`~repro.matching.incremental.DynamicMatcher.insert_task_greedy`)
  so the exact delta repair cannot bust the SLO — counted, surfaced,
  and off by default (no SLO configured, never degrade).
* **Observability**: per-stage latency series (queue wait, service time,
  total turnaround, plus the session's settle/quote/decide/match/
  feedback stages), queue depth and drop/degrade counters, served as an
  NDJSON ``stats`` message in-protocol or as a plain ``GET /stats`` HTTP
  endpoint on the same port (the first line of a connection is sniffed).

The universe arrays (task distances and both arrival-time columns) live
in a :class:`~repro.utils.shm.ShmArena` segment owned by the server —
the same zero-copy data plane the sharded engines use, so a future
multi-process quoting tier can attach without pickling; the arena is
unlinked on :meth:`DispatchServer.stop` and covered by the shm module's
atexit *and* signal backstops.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.pricing.registry import calibrated_kwargs, create_strategy
from repro.service.protocol import (
    EVENT_TYPES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_message,
    task_from_wire,
    worker_from_wire,
)
from repro.simulation.streaming import (
    ArrivalStream,
    DispatchSession,
    Settlement,
    build_universe,
    resolve_demand_grids,
)
from repro.utils.shm import ShmArena


@dataclass
class ServiceConfig:
    """Everything the server needs to own a scenario session.

    Attributes:
        scenario: Registered scenario name whose stream the server owns
            (the universe is pre-built from it at startup; clients must
            replay the same scenario/scale/seed/params).
        scale: Scenario scale.
        seed: Scenario *and* session seed (acceptance RNG, calibration).
        params: Extra scenario parameters.
        strategy: Default pricing strategy (a ``hello`` may override with
            any grid-state strategy; MAPS is refused — see
            :class:`~repro.simulation.streaming.DispatchSession`).
        task_lifetime: Default task lifetime in period units.
        max_degree: Optional universe adjacency cap (forces the classic
            universe matcher; incompatible with ``incremental``).
        incremental: Session backend.  ``None`` (default) quotes off the
            live incremental adjacency plane whenever ``max_degree`` is
            unset — per-insert cost tracks the live neighbourhood, not
            the universe row density, and the startup universe skips its
            graph build.  ``False`` forces the universe
            :class:`~repro.matching.incremental.DynamicMatcher`;
            ``True`` insists (and raises if ``max_degree`` is set).
            Bit-identical quotes either way (see
            :class:`~repro.simulation.streaming.DispatchSession`).
        slo_ms: Per-quote latency objective in milliseconds; ``None``
            disables degradation entirely.
        degrade_fraction: Degrade a quote once its queue wait exceeds
            this fraction of the SLO (the remaining budget must cover the
            quote itself).
        queue_size: Ingest queue bound (events).
        admission: ``"block"`` (lossless TCP backpressure) or
            ``"reject"`` (shed task arrivals with a ``reject`` reply).
        once: Stop the server after the first session's connection
            closes (tests and one-shot benchmarks).
        event_delay: Test seam — artificial per-event stall in seconds
            inside the consumer, to make queue pressure deterministic.
    """

    scenario: str = "hotspot_burst"
    scale: float = 0.05
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    strategy: str = "BaseP"
    task_lifetime: float = 4.0
    max_degree: Optional[int] = None
    incremental: Optional[bool] = None
    slo_ms: Optional[float] = None
    degrade_fraction: float = 0.5
    queue_size: int = 1024
    admission: str = "block"
    once: bool = False
    event_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_size <= 0:
            raise ValueError("queue_size must be positive")
        if self.admission not in ("block", "reject"):
            raise ValueError(
                f"unknown admission mode {self.admission!r}; choose 'block' or 'reject'"
            )
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive when given")
        if not 0.0 < self.degrade_fraction <= 1.0:
            raise ValueError("degrade_fraction must be in (0, 1]")
        if self.incremental and self.max_degree is not None:
            raise ValueError(
                "incremental sessions are exact; drop max_degree or pass "
                "incremental=False"
            )

    @property
    def resolved_incremental(self) -> bool:
        """The backend the sessions will actually run."""
        if self.incremental is None:
            return self.max_degree is None
        return bool(self.incremental)


class LatencySeries:
    """Latency samples with exact percentiles (bounded raw storage)."""

    #: Raw-sample cap; count/mean/max stay exact beyond it, percentiles
    #: degrade to the first ``_CAP`` samples (far above bench volumes).
    _CAP = 200_000

    def __init__(self) -> None:
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.peak = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.peak:
            self.peak = seconds
        if len(self.samples) < self._CAP:
            self.samples.append(seconds)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile in seconds (0.0 when empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """JSON-ready milliseconds summary."""
        return {
            "count": self.count,
            "mean_ms": (self.total / self.count * 1e3) if self.count else 0.0,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "max_ms": self.peak * 1e3,
        }


class ServiceStats:
    """Counters plus latency series — the ``/stats`` surface."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.series: Dict[str, LatencySeries] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = LatencySeries()
        series.observe(seconds)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """The :class:`DispatchSession` ``stage_hook`` adapter."""
        self.observe(f"stage_{stage}", seconds)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "latency_ms": {
                name: series.summary() for name, series in sorted(self.series.items())
            },
        }


class DispatchServer:
    """The long-running quoting service over one scenario universe.

    Lifecycle: :meth:`prepare` (build stream → universe → shm arena →
    calibration; implicit in :meth:`start`), :meth:`start` (bind; returns
    the bound port, so ``port=0`` works for tests), :meth:`serve_until_stopped`,
    :meth:`stop` (close and unlink the arena).  One session at a time: a
    second concurrent ``hello`` is refused with a busy error — replays
    are sequential by design (the session owns the strategy state and
    the matcher; see ``docs/service.md`` for the multi-tenant outlook).
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.stats = ServiceStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._arena: Optional[ShmArena] = None
        self._stream: Optional[ArrivalStream] = None
        self._universe = None
        self._calibration = None
        self._worker_pos_by_id: Dict[int, int] = {}
        self._busy = False
        self._active_queue: Optional[asyncio.Queue] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Build the scenario session state (idempotent, synchronous).

        Heavy by design — universe pre-scan plus Algorithm 1 calibration
        — and run once at startup so per-connection session resets are
        cheap.  Calibration probes the stream's ``demand_grids`` metadata
        cells (the satellite-2 fix), not the whole grid.
        """
        if self._stream is not None:
            return
        from repro.simulation.engine import calibrate_base_price_for_context
        from repro.simulation.scenarios import get_scenario

        config = self.config
        scenario = get_scenario(config.scenario)
        stream = scenario.stream(
            scale=config.scale, seed=config.seed, **dict(config.params)
        )
        instance, task_arrivals, worker_arrivals = build_universe(
            stream,
            max_degree=config.max_degree,
            # Incremental sessions never touch the universe graph — the
            # pre-scan keeps only the position-aligned lists and arrays.
            build_graph=not config.resolved_incremental,
        )
        arrays = instance.ensure_arrays()
        # The universe columns the quoting tier reads per event live in
        # one owned shm segment; the session's arrival lookups go through
        # the mapped views, so attaching processes would see the same
        # bytes with zero copies.
        self._arena = ShmArena.create(
            {
                "task_distances": np.ascontiguousarray(
                    arrays.distances, dtype=np.float64
                ),
                "task_arrivals": np.asarray(task_arrivals, dtype=np.float64),
                "worker_arrivals": np.asarray(worker_arrivals, dtype=np.float64),
            }
        )
        self._universe = (
            instance,
            self._arena["task_arrivals"],
            self._arena["worker_arrivals"],
        )
        self._worker_pos_by_id = {
            worker.worker_id: pos for pos, worker in enumerate(instance.workers)
        }
        grids = resolve_demand_grids(stream)
        if grids is None:
            grids = sorted(cell.index for cell in stream.grid.cells())
        self._calibration = calibrate_base_price_for_context(
            acceptance=stream.acceptance,
            price_bounds=stream.price_bounds,
            seed=config.seed,
            grids=grids,
        )
        self._stream = stream

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and listen; returns the actually-bound port."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self.prepare()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Close the listener and destroy the shm segment (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._arena is not None:
            # Drop the views aliasing the segment before unlinking.
            self._universe = None
            self._arena.unlink()
            self._arena = None
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``once`` session ending)."""
        if self._stop_event is None:
            raise RuntimeError("server is not started")
        await self._stop_event.wait()

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, Any]:
        snapshot = self.stats.snapshot()
        queue = self._active_queue
        instance = self._universe[0] if self._universe is not None else None
        snapshot.update(
            {
                "type": "stats",
                "busy": self._busy,
                "queue_depth": queue.qsize() if queue is not None else 0,
                "queue_size": self.config.queue_size,
                "admission": self.config.admission,
                "slo_ms": self.config.slo_ms,
                "segment": (
                    self._arena.handle.segment if self._arena is not None else None
                ),
                "universe": {
                    "tasks": len(instance.tasks) if instance is not None else 0,
                    "workers": len(instance.workers) if instance is not None else 0,
                },
            }
        )
        return snapshot

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    @staticmethod
    def _write(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        writer.write(encode_message(message))

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_ran = False
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(b"GET "):
                await self._serve_http(first, reader, writer)
                return
            hello = decode_message(first)
            if hello.get("type") != "hello":
                raise ProtocolError("first message must be 'hello' (or an HTTP GET)")
            if self._busy:
                self._write(writer, error_message("busy: a session is already active"))
                await writer.drain()
                return
            self._busy = True
            try:
                session_ran = True
                await self._run_session(hello, reader, writer)
            finally:
                self._busy = False
        except ProtocolError as exc:
            try:
                self._write(writer, error_message(str(exc)))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            if session_ran and self.config.once and self._stop_event is not None:
                self._stop_event.set()

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP: ``GET /stats`` on the NDJSON port."""
        while True:  # drain request headers
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) > 1 else "/"
        if path.split("?")[0] == "/stats":
            status = "200 OK"
            body = (json.dumps(self.stats_snapshot(), indent=2) + "\n").encode("utf-8")
        else:
            status = "404 Not Found"
            body = b'{"error": "only /stats exists"}\n'
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

    def _build_session(self, hello: Dict[str, Any]) -> DispatchSession:
        """Validate the handshake and reset a fresh session over the universe."""
        config = self.config
        if hello.get("protocol") not in (None, PROTOCOL_VERSION):
            raise ProtocolError(
                f"protocol {hello.get('protocol')!r} unsupported "
                f"(server speaks {PROTOCOL_VERSION})"
            )
        for key, expected in (
            ("scenario", config.scenario),
            ("scale", config.scale),
            ("seed", config.seed),
            ("params", config.params),
        ):
            offered = hello.get(key)
            if offered is not None and offered != expected:
                raise ProtocolError(
                    f"hello {key}={offered!r} does not match the server's "
                    f"universe ({key}={expected!r}); restart the server for a "
                    "different scenario session"
                )
        strategy_name = hello.get("strategy") or config.strategy
        lifetime = hello.get("task_lifetime")
        lifetime = config.task_lifetime if lifetime is None else float(lifetime)
        try:
            strategy = create_strategy(
                strategy_name,
                **calibrated_kwargs(
                    strategy_name,
                    self._calibration,
                    p_min=self._stream.price_bounds[0],
                    p_max=self._stream.price_bounds[1],
                ),
            )
            return DispatchSession(
                self._stream,
                strategy,
                seed=config.seed,
                task_lifetime=lifetime,
                universe=self._universe,
                stage_hook=self.stats.observe_stage,
                incremental=config.resolved_incremental,
            )
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    async def _run_session(
        self,
        hello: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        session = self._build_session(hello)
        instance = self._universe[0]
        self._write(
            writer,
            {
                "type": "ready",
                "protocol": PROTOCOL_VERSION,
                "strategy": session.strategy.name,
                "base_price": self._calibration.base_price,
                "tasks": len(instance.tasks),
                "workers": len(instance.workers),
                "admission": self.config.admission,
                "queue_size": self.config.queue_size,
                "slo_ms": self.config.slo_ms,
            },
        )
        await writer.drain()

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._active_queue = queue
        consumer = asyncio.create_task(self._consume(session, queue, writer))
        # Universe positions are assigned here, at ingest: a shed task
        # still consumes its position, because the client replays the
        # stream in order and the *next* delivered task must line up
        # with the *next* position.  (Counting only delivered tasks
        # desyncs the differential id check after the first shed.)
        universe_tasks = self._universe[0].tasks
        next_task_pos = 0
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = decode_message(line)
                mtype = message["type"]
                if mtype == "bye":
                    break
                if mtype == "stats":
                    # Served inline so a monitoring probe is never stuck
                    # behind the ingest queue it is trying to observe.
                    self._write(writer, self.stats_snapshot())
                    continue
                if mtype not in EVENT_TYPES:
                    raise ProtocolError(f"unexpected message type {mtype!r}")
                if mtype == "task":
                    if next_task_pos >= len(universe_tasks):
                        raise ProtocolError(
                            "more task arrivals than the scenario universe holds"
                        )
                    task_pos = next_task_pos
                    next_task_pos += 1
                    if self.config.admission == "reject" and queue.full():
                        offered_id = (message.get("task") or {}).get("task_id")
                        expected_id = universe_tasks[task_pos].task_id
                        if offered_id != expected_id:
                            raise ProtocolError(
                                f"task arrival #{task_pos} has id {offered_id}, "
                                f"but the universe stream has id {expected_id} "
                                "at that position — client and server replay "
                                "different streams"
                            )
                        self.stats.bump("rejected")
                        self._write(
                            writer,
                            {
                                "type": "reject",
                                "reason": "backpressure: ingest queue is full",
                                "task_id": offered_id,
                                "time": message.get("time"),
                            },
                        )
                        continue
                    item = (loop.time(), task_pos, message)
                else:
                    item = (loop.time(), None, message)
                if queue.full():
                    # A blocking put can never resolve once the consumer
                    # has died; race it against the consumer so a failure
                    # there surfaces instead of deadlocking reader and
                    # client at zero CPU.
                    putter = asyncio.ensure_future(queue.put(item))
                    await asyncio.wait(
                        {putter, consumer}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if not putter.done():
                        putter.cancel()
                        consumer.result()
                        raise ProtocolError("event consumer exited mid-stream")
                else:
                    queue.put_nowait(item)
        finally:
            self._active_queue = None
            if consumer.done():
                consumer.result()
            else:
                sentinel = asyncio.ensure_future(queue.put(None))
                await asyncio.wait(
                    {sentinel, consumer}, return_when=asyncio.FIRST_COMPLETED
                )
                if consumer.done() and not sentinel.done():
                    sentinel.cancel()
                await consumer

    # ------------------------------------------------------------------
    # the consumer: events → session, strictly in arrival order
    # ------------------------------------------------------------------
    def _emit_settlements(
        self, writer: asyncio.StreamWriter, settlements: List[Settlement]
    ) -> None:
        for settlement in settlements:
            if settlement.kind == "commit":
                self.stats.bump("committed")
            elif settlement.kind == "expire":
                self.stats.bump("expired")
            else:
                self.stats.bump("departed")
            self._write(
                writer,
                {
                    "type": "settle",
                    "kind": settlement.kind,
                    "time": settlement.time,
                    "task_id": settlement.task_id,
                    "worker_id": settlement.worker_id,
                    "revenue": settlement.revenue,
                },
            )

    async def _consume(
        self,
        session: DispatchSession,
        queue: asyncio.Queue,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        config = self.config
        slo_seconds = None if config.slo_ms is None else config.slo_ms / 1e3
        next_worker = 0
        instance = self._universe[0]
        while True:
            item = await queue.get()
            if item is None:
                return
            # The reader assigns task positions at ingest (shed arrivals
            # consume theirs too); workers carry None and count here.
            received_at, task_pos, message = item
            if config.event_delay:
                await asyncio.sleep(config.event_delay)
            queue_wait = loop.time() - received_at
            mtype = message["type"]
            try:
                if mtype == "task":
                    offered = task_from_wire(message.get("task") or {})
                    expected = instance.tasks[task_pos]
                    if offered.task_id != expected.task_id:
                        raise ProtocolError(
                            f"task arrival #{task_pos} has id {offered.task_id}, "
                            f"but the universe stream has id {expected.task_id} "
                            "at that position — client and server replay "
                            "different streams"
                        )
                    degrade = (
                        slo_seconds is not None
                        and queue_wait > slo_seconds * config.degrade_fraction
                    )
                    started = perf_counter()
                    outcome, settlements = session.on_task(
                        task_pos, float(message["time"]), degrade=degrade
                    )
                    service_seconds = perf_counter() - started
                    self.stats.bump("quoted")
                    if outcome.accepted:
                        self.stats.bump("accepted")
                    if outcome.degraded:
                        self.stats.bump("degraded")
                    self.stats.observe("queue_wait", queue_wait)
                    self.stats.observe("service", service_seconds)
                    self.stats.observe("total", loop.time() - received_at)
                    self._emit_settlements(writer, settlements)
                    self._write(
                        writer,
                        {
                            "type": "quote",
                            "task_id": outcome.task_id,
                            "grid_index": outcome.grid_index,
                            "price": outcome.price,
                            "accepted": outcome.accepted,
                            "matched": outcome.matched,
                            "degraded": outcome.degraded,
                            "deadline": outcome.deadline,
                            "queue_wait_ms": queue_wait * 1e3,
                            "service_ms": service_seconds * 1e3,
                        },
                    )
                elif mtype == "worker":
                    if next_worker >= len(instance.workers):
                        raise ProtocolError(
                            "more worker arrivals than the scenario universe holds"
                        )
                    worker_pos = next_worker
                    next_worker += 1
                    offered = worker_from_wire(message.get("worker") or {})
                    expected = instance.workers[worker_pos]
                    if offered.worker_id != expected.worker_id:
                        raise ProtocolError(
                            f"worker arrival #{worker_pos} has id "
                            f"{offered.worker_id}, but the universe stream has "
                            f"id {expected.worker_id} at that position"
                        )
                    joined, settlements = session.on_worker(
                        worker_pos, float(message["time"])
                    )
                    self.stats.bump("workers_joined" if joined else "workers_expired")
                    self._emit_settlements(writer, settlements)
                    self._write(
                        writer,
                        {
                            "type": "joined",
                            "worker_id": offered.worker_id,
                            "joined": joined,
                        },
                    )
                elif mtype == "depart":
                    worker_id = int(message["worker_id"])
                    worker_pos = self._worker_pos_by_id.get(worker_id)
                    if worker_pos is None:
                        raise ProtocolError(
                            f"depart names unknown worker id {worker_id}"
                        )
                    departed, settlements = session.depart_worker(
                        worker_pos, float(message["time"])
                    )
                    self._emit_settlements(writer, settlements)
                    self._write(
                        writer,
                        {
                            "type": "departed",
                            "worker_id": worker_id,
                            "departed": departed,
                        },
                    )
                else:  # flush
                    settlements = session.drain()
                    self._emit_settlements(writer, settlements)
                    self._write(
                        writer,
                        {
                            "type": "summary",
                            "revenue": session.revenue,
                            "quoted": session.quoted,
                            "accepted": session.accepted,
                            "degraded": session.degraded,
                            "committed": session.committed,
                            "expired": session.expired,
                            "departed": session.departed,
                            "rejected": self.stats.counters.get("rejected", 0),
                        },
                    )
            except (KeyError, TypeError) as exc:
                raise ProtocolError(f"malformed {mtype} message: {exc}") from exc
            finally:
                queue.task_done()
            await writer.drain()


__all__ = ["DispatchServer", "LatencySeries", "ServiceConfig", "ServiceStats"]
