"""Host fingerprint stamped into every benchmark measure payload.

``tools/bench_to_json.py`` records a full ``run["host"]`` block
(platform, cpu counts, kernel mode) at the trajectory layer, but the
``measure_*`` payloads also travel alone — through the tier-1 benchmark
gates and ad-hoc profiling runs — where a number without its kernel
mode or core budget is unattributable.  Every measurement protocol
therefore stamps this minimal fingerprint into its own payload.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.kernels import active_kernel_mode, numba_version
from repro.utils.affinity import effective_cpu_count


def host_fingerprint() -> Dict[str, Any]:
    """The attribution triple every measure payload carries.

    ``effective_cores`` is what the process may actually use (cpuset /
    affinity aware), ``kernels`` the active kernel dispatch mode and
    ``numba`` its version (``None`` on pure-Python hosts).
    """
    return {
        "effective_cores": effective_cpu_count(),
        "kernels": active_kernel_mode(),
        "numba": numba_version(),
    }


__all__ = ["host_fingerprint"]
