"""Matching hot-path throughput measurement, shared by bench and tooling.

One measurement protocol feeds two consumers:

* ``benchmarks/test_bench_matching.py`` — the tier-1 gate asserting the
  array-native hot path beats the pre-vectorisation baseline by the
  required factor at bounded revenue loss (small horizon, CI-sized);
* ``tools/bench_to_json.py --benchmark matching`` — the writer that
  records the full-size trajectory point (``BENCH_matching.json``), so
  future perf PRs have a baseline to be measured against.

The measured quantity is end-to-end **single-shard** system throughput in
tasks per second on the ``city_scale`` scenario — the same protocol as
``BENCH_sharded.json``'s 1-shard row, so the two files compose: shard
speedups multiply the per-shard constants measured here.

Each measured *configuration* names one point on the exactness/speed
curve:

* ``loop`` — scalar loop graph builder, exact matroid matching: the
  pre-vectorisation baseline (bit-identical results to ``vectorized``);
* ``vectorized`` — the array-native graph builder (the default path),
  exact matroid matching: same results, less builder time;
* ``capped-<K>`` — vectorized builder with ``max_degree=K`` (K nearest
  workers per task), exact matching on the capped graph;
* ``vgreedy`` — vectorized builder, numpy round-based greedy matching;
* any of the above with ``+warm`` — cross-period warm starts on.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.host import host_fingerprint
from repro.matching.bipartite import force_loop_builder
from repro.pricing.registry import create_strategy
from repro.simulation.scenarios import get_scenario
from repro.simulation.sharded import ShardedEngine

#: Configurations the CI gate measures (baseline first).
DEFAULT_CONFIGS = ("loop", "vectorized", "capped-16", "capped-8", "vgreedy")


@dataclass(frozen=True)
class MatchingBenchPoint:
    """One measured hot-path configuration."""

    config: str
    backend: str
    max_degree: Optional[int]
    warm_start: bool
    seconds: float
    total_tasks: int
    tasks_per_second: float
    revenue: float
    served: int


@dataclass(frozen=True)
class _ConfigSpec:
    name: str
    loop_builder: bool
    backend: str
    max_degree: Optional[int]
    warm_start: bool


def parse_config(name: str) -> _ConfigSpec:
    """Parse a configuration name like ``capped-8+warm`` (see module doc)."""
    loop_builder = False
    backend = "matroid"
    max_degree: Optional[int] = None
    warm_start = False
    for part in name.split("+"):
        part = part.strip()
        if part == "loop":
            loop_builder = True
        elif part == "vectorized":
            pass
        elif part == "vgreedy":
            backend = "vgreedy"
        elif part == "warm":
            warm_start = True
        elif part.startswith("capped-"):
            max_degree = int(part[len("capped-") :])
        else:
            raise ValueError(
                f"unknown hot-path configuration part {part!r} in {name!r}"
            )
    return _ConfigSpec(
        name=name,
        loop_builder=loop_builder,
        backend=backend,
        max_degree=max_degree,
        warm_start=warm_start,
    )


def measure_matching_throughput(
    scale: float,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    seed: int = 0,
    strategy: str = "BaseP",
    base_price: float = 2.0,
    num_periods: Optional[int] = None,
) -> Dict[str, object]:
    """Measure single-shard city-scale throughput across configurations.

    Args:
        scale: ``city_scale`` horizon scale (1.0 = the 1M-task horizon).
        configs: Configuration names (see :func:`parse_config`); when a
            ``loop`` configuration is present it is the speedup baseline,
            otherwise the first configuration is.
        seed: Workload and engine seed.
        strategy: Pricing strategy name (a cheap non-learning strategy
            keeps the measurement graph/matching-dominated).
        base_price: Base price handed to the strategy.
        num_periods: Optional horizon override forwarded to the scenario.

    Returns:
        A JSON-ready payload: per-configuration measurements plus speedup
        and revenue ratios relative to the baseline configuration.
    """
    scenario = get_scenario("city_scale")
    params = {} if num_periods is None else {"num_periods": num_periods}
    results: List[MatchingBenchPoint] = []
    for name in configs:
        spec = parse_config(name)
        workload = scenario.chunked(scale=scale, seed=seed, **params)
        engine = ShardedEngine(
            workload,
            num_shards=1,
            halo=0,
            seed=seed,
            matching_backend=spec.backend,
            max_degree=spec.max_degree,
            warm_start=spec.warm_start,
        )
        guard = force_loop_builder() if spec.loop_builder else nullcontext()
        with guard:
            start = time.perf_counter()
            run = engine.run(create_strategy(strategy, base_price=base_price))
            elapsed = time.perf_counter() - start
        results.append(
            MatchingBenchPoint(
                config=spec.name,
                backend=spec.backend,
                max_degree=spec.max_degree,
                warm_start=spec.warm_start,
                seconds=elapsed,
                total_tasks=run.metrics.total_tasks,
                tasks_per_second=run.metrics.total_tasks / elapsed,
                revenue=run.metrics.total_revenue,
                served=run.metrics.served_tasks,
            )
        )

    baseline = next(
        (point for point in results if point.config == "loop"), results[0]
    )
    speedups = {
        point.config: point.tasks_per_second / baseline.tasks_per_second
        for point in results
    }
    revenue_ratios = {
        point.config: (
            point.revenue / baseline.revenue if baseline.revenue else 1.0
        )
        for point in results
    }
    return {
        "benchmark": "matching_hot_path_throughput",
        "host": host_fingerprint(),
        "scenario": "city_scale",
        "scale": float(scale),
        "seed": int(seed),
        "strategy": strategy,
        "shards": 1,
        "baseline_config": baseline.config,
        "total_tasks": baseline.total_tasks,
        "results": [asdict(point) for point in results],
        "speedup_vs_baseline": speedups,
        "revenue_ratio_vs_baseline": revenue_ratios,
    }


__all__ = [
    "DEFAULT_CONFIGS",
    "MatchingBenchPoint",
    "measure_matching_throughput",
    "parse_config",
]
