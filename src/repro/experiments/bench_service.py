"""Dispatch-service latency and throughput, shared by bench and tooling.

One measurement protocol feeds two consumers:

* ``benchmarks/test_bench_service.py`` — the tier-1 gate booting a real
  server, replaying the hotspot burst and asserting the p99 quote
  latency bound, the offline differential gate and a leak-free shm
  shutdown (CI-sized stream);
* ``tools/bench_to_json.py --benchmark service`` — the writer that
  records the full-size trajectory point (``BENCH_service.json``).

**What is measured.**  Three sessions against in-process
:class:`~repro.service.server.DispatchServer` instances over real
loopback sockets, all replaying the ``hotspot_burst`` scenario:

* ``offline`` — blocking admission, unpaced replay: the lossless mode,
  on the default *incremental* session backend (live adjacency plane +
  lazy matcher, no universe graph).  Its result is differentially gated
  against :class:`~repro.simulation.streaming.EventStreamingEngine` on
  the same stream — ``repr``-identical settled revenue and identical
  commit pairs, asserted here so every recorded benchmark re-proves the
  gate.
* ``paced`` — the stream replayed under a wall-clock rate with a latency
  SLO armed; quote latencies are what a live deployment would see.
* ``burst_shed`` — rejecting admission with a tiny ingest queue and an
  artificial per-event stall, driven unpaced: the overload regime.  The
  point records how many arrivals admission control shed.
* ``offline_universe`` — the ``offline`` replay on the classic universe
  :class:`~repro.matching.incremental.DynamicMatcher` backend.  Gated
  bitwise against ``offline`` (same revenue ``repr``, same commit
  pairs): the two backends are interchangeable floats-wise, so the
  recorded ``speedup_incremental_quote_p50`` is a pure implementation
  delta, not a semantics change.

Per point: wall seconds, sustained arrival and quote throughput, settled
revenue, and the server-side ``queue_wait`` / ``service`` / ``total``
latency percentiles (milliseconds).  ``service`` is the in-session quote
cost and the headline ``p50_quote_ms`` / ``p99_quote_ms`` report;
``total`` (queue wait + service) is the client-visible latency the SLO
governs — under an unpaced closed-loop flood it measures queue depth,
not quoting speed, so it stays a per-point detail rather than the
headline.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.experiments.host import host_fingerprint
from repro.service.client import replay
from repro.service.server import DispatchServer, ServiceConfig

#: The benchmark scenario (the service exists for flash-crowd regimes).
SCENARIO = "hotspot_burst"


def _point(config_name: str, report, server: DispatchServer) -> Dict[str, Any]:
    """One JSON-ready measurement row (printer contract: ``config``,
    ``seconds``, ``tasks_per_second``, ``revenue``)."""
    summary = report.summary or {}
    stats = report.stats or {}
    latency = stats.get("latency_ms", {})
    seconds = report.wall_seconds
    quoted = int(summary.get("quoted", 0))
    total = latency.get("total", {})
    return {
        "config": config_name,
        "seconds": seconds,
        "tasks_per_second": quoted / seconds if seconds else 0.0,
        "arrivals_per_second": report.events_sent / seconds if seconds else 0.0,
        "revenue": float(summary.get("revenue", 0.0)),
        "events_sent": report.events_sent,
        "quoted": quoted,
        "accepted": int(summary.get("accepted", 0)),
        "committed": int(summary.get("committed", 0)),
        "expired": int(summary.get("expired", 0)),
        "degraded": int(summary.get("degraded", 0)),
        "rejected": int(summary.get("rejected", 0)),
        "p50_ms": float(total.get("p50_ms", 0.0)),
        "p99_ms": float(total.get("p99_ms", 0.0)),
        "latency_ms": latency,
        "queue_size": server.config.queue_size,
        "admission": server.config.admission,
        "slo_ms": server.config.slo_ms,
        "incremental": server.config.resolved_incremental,
    }


async def _run_config(
    service_config: ServiceConfig,
    strategy: str,
    rate: Optional[float],
):
    """Boot a server, replay one session against it, tear it down."""
    server = DispatchServer(service_config)
    port = await server.start()
    try:
        report = await replay(
            "127.0.0.1",
            port,
            service_config.scenario,
            scale=service_config.scale,
            seed=service_config.seed,
            strategy=strategy,
            params=service_config.params,
            rate=rate,
        )
    finally:
        await server.stop()
    return report, server


def _offline_reference(
    scale: float, seed: int, strategy: str, task_lifetime: float
) -> Dict[str, Any]:
    """The offline engine's answer on the identical stream."""
    from repro.pricing.registry import calibrated_kwargs, create_strategy
    from repro.simulation.scenarios import get_scenario
    from repro.simulation.streaming import EventStreamingEngine, StreamingEngine

    stream = get_scenario(SCENARIO).stream(scale=scale, seed=seed)
    calibration = StreamingEngine(stream, seed=seed).calibrate_base_price()
    engine = EventStreamingEngine(stream, seed=seed, task_lifetime=task_lifetime)
    engine.run(create_strategy(strategy, **calibrated_kwargs(strategy, calibration)))
    session = engine.last_session
    return {
        "revenue": session.revenue,
        "commits": list(session.commit_log),
        "committed": session.committed,
    }


def measure_service_latency(
    scale: float = 0.2,
    seed: int = 0,
    strategy: str = "BaseP",
    task_lifetime: float = 4.0,
    rate: Optional[float] = None,
    slo_ms: float = 50.0,
    burst_queue_size: int = 8,
    burst_event_delay: float = 0.002,
) -> Dict[str, object]:
    """Measure service quote latency, throughput and shed behaviour.

    Args:
        scale: ``hotspot_burst`` scale (0.2 ≈ 1.8k arrival events).
        seed: Scenario and session seed.
        strategy: Pricing strategy quoted by every session (any
            grid-state strategy; MAPS cannot quote event-at-a-time).
        rate: Pacing for the ``paced`` point, in stream time units per
            wall second; default picks ~4x the offline replay pace so
            the pacer, not the socket, sets the tempo.
        slo_ms: Latency SLO armed for the ``paced`` point.
        burst_queue_size: Ingest bound for the ``burst_shed`` point.
        burst_event_delay: Artificial per-event stall (seconds) for the
            ``burst_shed`` point, forcing the queue to fill.

    Returns:
        A JSON-ready payload: one row per configuration plus the
        ``differential`` block proving the offline point equals the
        :class:`EventStreamingEngine` bit for bit.
    """

    async def _measure() -> Dict[str, object]:
        base = dict(scenario=SCENARIO, scale=scale, seed=seed, strategy=strategy,
                    task_lifetime=task_lifetime)
        offline_report, offline_server = await _run_config(
            ServiceConfig(admission="block", **base), strategy, rate=None
        )
        times = _stream_times()
        offline_span = max(1e-9, max(times) - min(times))
        paced_rate = rate
        if paced_rate is None:
            # ~4x the offline pace: fast enough to finish promptly, slow
            # enough that the pacer (not the socket) sets the tempo.
            paced_rate = offline_span / max(offline_report.wall_seconds, 1e-6) / 4.0
        paced_report, paced_server = await _run_config(
            ServiceConfig(admission="block", slo_ms=slo_ms, **base),
            strategy,
            rate=paced_rate,
        )
        shed_report, shed_server = await _run_config(
            ServiceConfig(
                admission="reject",
                queue_size=burst_queue_size,
                event_delay=burst_event_delay,
                slo_ms=slo_ms,
                **base,
            ),
            strategy,
            rate=None,
        )
        universe_report, universe_server = await _run_config(
            ServiceConfig(admission="block", incremental=False, **base),
            strategy,
            rate=None,
        )
        return {
            "offline": (offline_report, offline_server),
            "paced": (paced_report, paced_server, paced_rate),
            "burst_shed": (shed_report, shed_server),
            "offline_universe": (universe_report, universe_server),
        }

    def _stream_times():
        from repro.simulation.scenarios import get_scenario

        stream = get_scenario(SCENARIO).stream(scale=scale, seed=seed)
        return [float(event.time) for event in stream.iter_events()]

    measured = asyncio.run(_measure())
    offline_report, offline_server = measured["offline"]
    paced_report, paced_server, paced_rate = measured["paced"]
    shed_report, shed_server = measured["burst_shed"]
    universe_report, universe_server = measured["offline_universe"]

    reference = _offline_reference(scale, seed, strategy, task_lifetime)
    revenue_match = repr(offline_report.revenue) == repr(reference["revenue"])
    commits_match = sorted(offline_report.commits) == sorted(reference["commits"])
    if not (revenue_match and commits_match):
        raise AssertionError(
            "offline service diverged from EventStreamingEngine: "
            f"revenue {offline_report.revenue!r} vs {reference['revenue']!r}, "
            f"{len(offline_report.commits)} vs {len(reference['commits'])} commits"
        )
    backends_match = repr(universe_report.revenue) == repr(
        offline_report.revenue
    ) and sorted(universe_report.commits) == sorted(offline_report.commits)
    if not backends_match:
        raise AssertionError(
            "universe-backend replay diverged from the incremental backend: "
            f"revenue {universe_report.revenue!r} vs {offline_report.revenue!r}, "
            f"{len(universe_report.commits)} vs {len(offline_report.commits)} commits"
        )

    results = [
        _point("offline", offline_report, offline_server),
        _point("paced", paced_report, paced_server),
        _point("burst_shed", shed_report, shed_server),
        _point("offline_universe", universe_report, universe_server),
    ]
    offline_point = results[0]
    offline_service = offline_point["latency_ms"].get("service", {})
    universe_service = results[3]["latency_ms"].get("service", {})
    incremental_p50 = float(offline_service.get("p50_ms", 0.0))
    universe_p50 = float(universe_service.get("p50_ms", 0.0))
    return {
        "benchmark": "service_latency",
        "scenario": SCENARIO,
        "scale": float(scale),
        "seed": int(seed),
        "strategy": strategy,
        "task_lifetime": float(task_lifetime),
        "paced_rate": float(paced_rate),
        "slo_ms": float(slo_ms),
        "burst_queue_size": int(burst_queue_size),
        "burst_event_delay": float(burst_event_delay),
        "results": results,
        "differential": {
            "reference": "EventStreamingEngine",
            "revenue_bitwise_equal": revenue_match,
            "commit_pairs_equal": commits_match,
            "backends_bitwise_equal": backends_match,
            "revenue": float(reference["revenue"]),
            "committed": int(reference["committed"]),
        },
        "p50_quote_ms": incremental_p50,
        "p99_quote_ms": float(offline_service.get("p99_ms", 0.0)),
        "p99_total_ms": offline_point["p99_ms"],
        "sustained_arrivals_per_second": offline_point["arrivals_per_second"],
        "speedup_incremental_quote_p50": (
            universe_p50 / incremental_p50 if incremental_p50 else 0.0
        ),
        "host": host_fingerprint(),
    }


__all__ = ["SCENARIO", "measure_service_latency"]
