"""Parallel multi-run executor for strategy / seed sweeps.

The engine's per-strategy runs are embarrassingly parallel: every
``(strategy, seed)`` cell simulates the same workload with an independent
random stream (the engine derives its accept/reject stream as
``derive_seed(seed, "acceptance", strategy.name)``, so the stream depends
only on the cell, never on scheduling).  :class:`ParallelRunner` fans
those cells across a ``ProcessPoolExecutor`` and is guaranteed to return
*exactly* the results of running :meth:`SimulationEngine.run_many`
sequentially for each seed — the determinism tests assert equality.

Strategies are described by :class:`StrategySpec` (a name for
:func:`repro.pricing.registry.create_strategy` plus keyword arguments)
rather than live objects, so each worker process constructs its own
strategy and no mutable learning state crosses process boundaries.

Streaming runs follow the same recipe-based design: an arrival stream is
usually backed by a generator (unpicklable), so :class:`StreamSpec` names
a registered scenario (see :mod:`repro.simulation.scenarios`) plus its
parameters, and every worker process rebuilds the stream locally before
driving a :class:`~repro.simulation.streaming.StreamingEngine` through it.
Because scenario streams are deterministic in their seed, parallel
streaming results are identical to sequential ones too.

Sharded runs follow the same pattern: a picklable :class:`ShardSpec`
carries the shard count and halo width, and each worker process builds a
:class:`~repro.simulation.sharded.ShardedEngine` for its cell.  A spec
may also request process-per-shard execution *within* a run
(``shard_jobs``), which the sharded engine implements by splitting the
workload spatially and running one full-horizon process per shard.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.pricing.registry import create_strategy
from repro.utils.affinity import effective_cpu_count
from repro.simulation.config import WorkloadBundle
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.sharded import ShardedEngine
from repro.simulation.streaming import (
    ArrivalStream,
    DynamicStreamingEngine,
    StreamingEngine,
)

#: Key of one run: ``(strategy name, seed)``.
RunKey = Tuple[str, int]


@dataclass(frozen=True)
class ShardSpec:
    """A picklable recipe for spatially sharded execution.

    Attributes:
        num_shards: Rectangular shards the grid is tiled into (``1``
            reproduces the batch engine bit-for-bit).
        halo: Boundary band width, in grid cells, of the halo-exchange
            reconciliation pass (``0`` disables it).
        shard_jobs: Worker processes for process-per-shard execution
            *inside one run* (requires ``halo=0``).  Leave at ``1`` when
            the :class:`ParallelRunner` already fans cells across
            processes — nesting pools multiplies workers.
        dynamic: Run the halo reconciliation through the ``dynamic``
            delta-repair backend (see
            :class:`~repro.simulation.sharded.ShardedEngine`).
    """

    num_shards: int = 1
    halo: int = 1
    shard_jobs: int = 1
    dynamic: bool = False

    def build_engine(
        self,
        workload: WorkloadBundle,
        seed: int,
        matching_backend: str,
        track_memory: bool,
        keep_details: bool,
        max_degree: Optional[int] = None,
        warm_start: bool = False,
    ) -> ShardedEngine:
        """Construct the sharded engine for one ``(strategy, seed)`` cell."""
        return ShardedEngine(
            workload,
            num_shards=self.num_shards,
            halo=self.halo,
            seed=seed,
            matching_backend=matching_backend,
            track_memory=track_memory,
            keep_details=keep_details,
            shard_jobs=self.shard_jobs,
            max_degree=max_degree,
            warm_start=warm_start,
            dynamic=self.dynamic,
        )


@dataclass(frozen=True)
class StreamSpec:
    """A picklable recipe for one scenario-backed arrival stream.

    Attributes:
        scenario: Name registered in :mod:`repro.simulation.scenarios`.
        scale: Scale factor forwarded to the scenario.
        seed: Scenario (workload) seed; ``None`` keeps the scenario default.
        window: Dispatch window length for the streaming engine, in period
            units.
        params: Extra scenario parameters (must be picklable).
        dynamic: Dispatch through the
            :class:`~repro.simulation.streaming.DynamicStreamingEngine`
            (one matching maintained under churn by delta repair) instead
            of the match-or-lose-forever :class:`StreamingEngine`.
        task_lifetime: Default task lifetime, in period units, for the
            dynamic engine (``None`` keeps its default; only honored with
            ``dynamic=True``).
    """

    scenario: str
    scale: float = 1.0
    seed: Optional[int] = None
    window: float = 1.0
    params: Mapping[str, object] = field(default_factory=dict)
    dynamic: bool = False
    task_lifetime: Optional[float] = None

    def build(self) -> ArrivalStream:
        """Rebuild the arrival stream (called in each worker process)."""
        from repro.simulation.scenarios import get_scenario

        return get_scenario(self.scenario).stream(
            scale=self.scale, seed=self.seed, **dict(self.params)
        )


@dataclass(frozen=True)
class StrategySpec:
    """A picklable recipe for one strategy.

    Attributes:
        name: Registry name (``MAPS``, ``BaseP``, ``SDR``, ``SDE``,
            ``CappedUCB``).
        kwargs: Keyword arguments forwarded to
            :func:`repro.pricing.registry.create_strategy` (``base_price``
            is required by most strategies; ``calibration`` warm-starts
            MAPS).
        label: Optional result key; defaults to ``name``.  Give two specs
            of the same strategy (e.g. two MAPS hyperparameter settings)
            distinct labels so both runs survive in the keyed results.
    """

    name: str
    kwargs: Mapping[str, object] = field(default_factory=dict)
    label: Optional[str] = None

    @property
    def key(self) -> str:
        return self.label if self.label is not None else self.name

    def build(self):
        return create_strategy(self.name, **dict(self.kwargs))


def _execute_run(
    workload: WorkloadBundle,
    spec: StrategySpec,
    seed: int,
    matching_backend: str,
    track_memory: bool,
    keep_details: bool,
    shards: Optional[ShardSpec] = None,
    max_degree: Optional[int] = None,
    warm_start: bool = False,
) -> Tuple[RunKey, SimulationResult]:
    """Top-level worker function (must be picklable for process pools)."""
    if shards is not None:
        engine = shards.build_engine(
            workload,
            seed,
            matching_backend,
            track_memory,
            keep_details,
            max_degree,
            warm_start,
        )
    else:
        engine = SimulationEngine(
            workload,
            seed=seed,
            matching_backend=matching_backend,
            track_memory=track_memory,
            keep_details=keep_details,
            max_degree=max_degree,
            warm_start=warm_start,
        )
    return (spec.key, seed), engine.run(spec.build())


def _execute_stream_run(
    stream_spec: StreamSpec,
    spec: StrategySpec,
    seed: int,
    matching_backend: str,
    track_memory: bool,
    keep_details: bool,
    max_degree: Optional[int] = None,
    warm_start: bool = False,
) -> Tuple[RunKey, SimulationResult]:
    """Streaming counterpart of :func:`_execute_run` (also picklable)."""
    if stream_spec.dynamic:
        lifetime_kwargs = (
            {}
            if stream_spec.task_lifetime is None
            else {"task_lifetime": stream_spec.task_lifetime}
        )
        engine: StreamingEngine = DynamicStreamingEngine(
            stream_spec.build(),
            seed=seed,
            window=stream_spec.window,
            track_memory=track_memory,
            keep_details=keep_details,
            max_degree=max_degree,
            **lifetime_kwargs,
        )
    else:
        engine = StreamingEngine(
            stream_spec.build(),
            seed=seed,
            window=stream_spec.window,
            matching_backend=matching_backend,
            track_memory=track_memory,
            keep_details=keep_details,
            max_degree=max_degree,
            warm_start=warm_start,
        )
    return (spec.key, seed), engine.run(spec.build())


#: Per-worker-process workload, installed once by the pool initializer so
#: the (potentially multi-megabyte) bundle is not re-pickled per job.
_WORKER_WORKLOAD: Optional[WorkloadBundle] = None


def _init_worker(workload: WorkloadBundle) -> None:
    global _WORKER_WORKLOAD
    _WORKER_WORKLOAD = workload


@dataclass(frozen=True)
class _ArenaWorkloadMeta:
    """Small picklable market context shipped next to an arena handle.

    The horizon length itself travels in the arena handle, which is what
    the attach path iterates by.
    """

    grid: object
    acceptance: object
    metric: str
    price_bounds: Tuple[float, float]
    description: str


def _init_worker_from_arena(handle, meta: _ArenaWorkloadMeta) -> None:
    """Pool initializer: rebuild the workload from shared-memory columns.

    The owner process packs the bundle's period columns into one
    :class:`~repro.simulation.arena.WorkloadArena`; every worker maps the
    segment read-only and materialises its private object bundle from the
    views — no per-worker workload pickling, and a worker crash cannot
    leak the segment (only the owner unlinks).
    """
    from repro.simulation.arena import WorkloadArena

    global _WORKER_WORKLOAD
    arena = WorkloadArena.attach(handle)
    try:
        tasks_by_period = []
        workers_by_period = []
        for task_cols, worker_cols in arena.iter_shard(0):
            tasks_by_period.append(task_cols.to_tasks())
            workers_by_period.append(worker_cols.to_workers())
    finally:
        arena.close()
    _WORKER_WORKLOAD = WorkloadBundle(
        grid=meta.grid,
        tasks_by_period=tasks_by_period,
        workers_by_period=workers_by_period,
        acceptance=meta.acceptance,
        metric=meta.metric,
        price_bounds=meta.price_bounds,
        description=meta.description,
    )


def _execute_run_pooled(
    spec: StrategySpec,
    seed: int,
    matching_backend: str,
    track_memory: bool,
    keep_details: bool,
    shards: Optional[ShardSpec] = None,
    max_degree: Optional[int] = None,
    warm_start: bool = False,
) -> Tuple[RunKey, SimulationResult]:
    assert _WORKER_WORKLOAD is not None, "worker pool initializer did not run"
    return _execute_run(
        _WORKER_WORKLOAD,
        spec,
        seed,
        matching_backend,
        track_memory,
        keep_details,
        shards,
        max_degree,
        warm_start,
    )


class ParallelRunner:
    """Fan ``(strategy, seed)`` simulation runs across processes.

    Args:
        workload: The workload every run simulates (batch mode).  Pass
            ``None`` and give ``stream`` instead for streaming mode.
        specs: Strategy recipes; plain strings are promoted to
            :class:`StrategySpec` with ``shared_kwargs``.
        seeds: Engine seeds; one full strategy sweep runs per seed.
        shared_kwargs: Keyword arguments applied to every promoted string
            spec (e.g. ``base_price`` / ``p_min`` / ``p_max``).
        matching_backend: Matching backend name for every engine.
        max_workers: Process count.  ``None`` (default) resolves to the
            *effective* core count (the scheduling-affinity mask, so
            container cpusets and ``taskset`` are respected), divided by
            ``shards.shard_jobs`` when the spec also fans each run's
            shards across processes — the two levels multiply, and both
            the old "executor default" and raw ``os.cpu_count()``
            oversubscribed restricted hosts.  ``1`` forces the in-process
            sequential path.
        track_memory: Forwarded to the engines.  Peak-memory numbers are
            per-process when running parallel.
        keep_details: Forwarded to the engines.
        stream: A :class:`StreamSpec` switching every run to the
            event-driven :class:`~repro.simulation.streaming.StreamingEngine`
            over the named scenario's arrival stream (rebuilt inside each
            worker process; exactly one of ``workload`` / ``stream`` must
            be given).
        shards: A :class:`ShardSpec` switching every batch run to the
            spatially sharded
            :class:`~repro.simulation.sharded.ShardedEngine` (batch mode
            only; the spec is picklable, so sharded cells fan across
            processes like plain ones).
        max_degree: Optional per-task adjacency cap (nearest workers
            only) forwarded to every engine; ``None`` keeps exact graphs.
        warm_start: Forward cross-period warm-start hints to every
            engine's matching (weight-preserving; off by default).
        workload_via_arena: Ship the workload to worker processes as a
            shared-memory :class:`~repro.simulation.arena.WorkloadArena`
            handle instead of pickling the bundle.  ``None`` (default)
            enables it exactly when the multiprocessing start method
            cannot inherit the bundle for free (i.e. anything but
            ``fork``); forcing ``True`` exercises the zero-copy path on
            fork platforms too.  Results are identical either way.

    Results are keyed by ``(strategy name, seed)`` and their order is
    fixed by the spec/seed declaration order, independent of which process
    finishes first.
    """

    def __init__(
        self,
        workload: Optional[WorkloadBundle],
        specs: Sequence[object],
        seeds: Sequence[int] = (0,),
        shared_kwargs: Optional[Mapping[str, object]] = None,
        matching_backend: str = "matroid",
        max_workers: Optional[int] = None,
        track_memory: bool = False,
        keep_details: bool = False,
        stream: Optional[StreamSpec] = None,
        shards: Optional[ShardSpec] = None,
        max_degree: Optional[int] = None,
        warm_start: bool = False,
        workload_via_arena: Optional[bool] = None,
    ) -> None:
        if not specs:
            raise ValueError("need at least one strategy spec")
        if not seeds:
            raise ValueError("need at least one seed")
        if (workload is None) == (stream is None):
            raise ValueError("give exactly one of workload (batch) or stream (streaming)")
        if shards is not None and stream is not None:
            raise ValueError("sharded execution is batch-mode; drop stream or shards")
        shared = dict(shared_kwargs or {})
        self.workload = workload
        self.stream = stream
        self.shards = shards
        self.specs: List[StrategySpec] = [
            spec if isinstance(spec, StrategySpec) else StrategySpec(str(spec), shared)
            for spec in specs
        ]
        keys = [spec.key for spec in self.specs]
        if len(set(keys)) != len(keys):
            raise ValueError(
                "duplicate strategy result keys; give specs sharing a name "
                f"distinct labels: {keys}"
            )
        self.seeds = [int(seed) for seed in seeds]
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds would collapse results: {self.seeds}")
        self.matching_backend = matching_backend
        if max_workers is None:
            # One process per *effective* core by default — the affinity
            # mask, not os.cpu_count(), is what a container cpuset or
            # taskset actually grants.  When each run additionally fans
            # its shards across shard_jobs processes, divide so the
            # product of the two levels stays at the effective count
            # (clamped to >= 1 when shard_jobs alone exceeds it).
            max_workers = effective_cpu_count()
            if shards is not None and shards.shard_jobs > 1:
                max_workers = max(1, max_workers // int(shards.shard_jobs))
        self.max_workers = int(max_workers)
        self.track_memory = bool(track_memory)
        self.keep_details = bool(keep_details)
        self.max_degree = None if max_degree is None else int(max_degree)
        self.warm_start = bool(warm_start)
        self.workload_via_arena = workload_via_arena

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _jobs(self) -> List[Tuple[StrategySpec, int]]:
        return [(spec, seed) for seed in self.seeds for spec in self.specs]

    def _run_cell(self, spec: StrategySpec, seed: int) -> Tuple[RunKey, SimulationResult]:
        if self.stream is not None:
            return _execute_stream_run(
                self.stream,
                spec,
                seed,
                self.matching_backend,
                self.track_memory,
                self.keep_details,
                self.max_degree,
                self.warm_start,
            )
        assert self.workload is not None
        return _execute_run(
            self.workload,
            spec,
            seed,
            self.matching_backend,
            self.track_memory,
            self.keep_details,
            self.shards,
            self.max_degree,
            self.warm_start,
        )

    def run_sequential(self) -> Dict[RunKey, SimulationResult]:
        """Run every cell in this process (the reference order)."""
        results: Dict[RunKey, SimulationResult] = {}
        for spec, seed in self._jobs():
            key, result = self._run_cell(spec, seed)
            results[key] = result
        return results

    def run(self) -> Dict[RunKey, SimulationResult]:
        """Run every cell, fanning across processes when it can help.

        Falls back to :meth:`run_sequential` when only one worker (or one
        job) is requested, or when the platform cannot start a process
        pool — the results are identical either way.
        """
        jobs = self._jobs()
        if self.max_workers == 1 or len(jobs) == 1:
            return self.run_sequential()
        # Unpicklable payloads are detected up front so the degradation is
        # deterministic; exceptions raised *inside* a worker stay fatal and
        # propagate with their original type rather than triggering a
        # silent (and potentially expensive) sequential rerun.  Specs are
        # tiny and always cross the job queue; the (potentially large)
        # workload only needs pickling on non-fork start methods — forked
        # workers inherit the initializer args without serialisation.
        use_arena = self.workload is not None and (
            self.workload_via_arena
            if self.workload_via_arena is not None
            else multiprocessing.get_start_method() != "fork"
        )
        try:
            pickle.dumps(self.specs)
            pickle.dumps(self.stream)
            pickle.dumps(self.shards)
            if (
                self.workload is not None
                and not use_arena
                and multiprocessing.get_start_method() != "fork"
            ):
                pickle.dumps(self.workload)
        except Exception as error:
            warnings.warn(
                f"ParallelRunner: payload is not picklable ({error!r}); "
                "running all cells sequentially in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            return self.run_sequential()
        arena = None
        try:
            if self.stream is not None:
                # Stream recipes are tiny; each job pickles its own cell
                # and rebuilds the arrival stream inside the worker.
                with ProcessPoolExecutor(max_workers=self.max_workers) as executor:
                    outputs = list(
                        executor.map(
                            _execute_stream_run,
                            [self.stream] * len(jobs),
                            [spec for spec, _ in jobs],
                            [seed for _, seed in jobs],
                            [self.matching_backend] * len(jobs),
                            [self.track_memory] * len(jobs),
                            [self.keep_details] * len(jobs),
                            [self.max_degree] * len(jobs),
                            [self.warm_start] * len(jobs),
                        )
                    )
            else:
                # The workload is shipped once per worker via the
                # initializer; each job only pickles its (spec, seed)
                # cell.  Zero-copy mode packs the horizon's columns into
                # one shared-memory arena and hands workers the handle —
                # kilobytes through the queue instead of the bundle.
                assert self.workload is not None
                if use_arena:
                    from repro.simulation.arena import WorkloadArena

                    arena = WorkloadArena.create(
                        {0: list(self.workload.iter_period_columns())}
                    )
                    initializer = _init_worker_from_arena
                    initargs = (
                        arena.handle,
                        _ArenaWorkloadMeta(
                            grid=self.workload.grid,
                            acceptance=self.workload.acceptance,
                            metric=self.workload.metric,
                            price_bounds=self.workload.price_bounds,
                            description=self.workload.description,
                        ),
                    )
                else:
                    initializer = _init_worker
                    initargs = (self.workload,)
                with ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=initializer,
                    initargs=initargs,
                ) as executor:
                    outputs = list(
                        executor.map(
                            _execute_run_pooled,
                            [spec for spec, _ in jobs],
                            [seed for _, seed in jobs],
                            [self.matching_backend] * len(jobs),
                            [self.track_memory] * len(jobs),
                            [self.keep_details] * len(jobs),
                            [self.shards] * len(jobs),
                            [self.max_degree] * len(jobs),
                            [self.warm_start] * len(jobs),
                        )
                    )
        except (
            OSError,  # pool could not start (sandboxed / restricted hosts)
            BrokenExecutor,  # pool died mid-run (e.g. a worker was OOM-killed)
        ) as error:  # pragma: no cover - depends on host limits
            warnings.warn(
                f"ParallelRunner: process pool unavailable ({error!r}); "
                "re-running all cells sequentially in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            return self.run_sequential()
        finally:
            if arena is not None:
                arena.unlink()
        return dict(outputs)

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    def run_by_strategy(self) -> Dict[str, Dict[int, SimulationResult]]:
        """Results regrouped as ``{strategy: {seed: result}}``."""
        grouped: Dict[str, Dict[int, SimulationResult]] = {}
        for (name, seed), result in self.run().items():
            grouped.setdefault(name, {})[seed] = result
        return grouped


__all__ = ["ParallelRunner", "ShardSpec", "StrategySpec", "StreamSpec", "RunKey"]
