"""Experiment harness reproducing the paper's evaluation (Section 5).

* :mod:`repro.experiments.sweeps` — generic machinery to sweep one
  parameter, run every strategy on each setting and collect the three
  metrics of the paper (revenue, time, memory);
* :mod:`repro.experiments.figures` — the registry of experiments, one per
  table/figure of the paper (Figs. 6, 7, 8 and 10), each mapping a figure
  id to a parameter sweep over the appropriate workload generator;
* :mod:`repro.experiments.parallel` — the :class:`ParallelRunner` that
  fans (strategy, seed) simulation runs across processes with results
  identical to a sequential sweep;
* :mod:`repro.experiments.report` — plain-text table/series rendering used
  by the benchmark harness and EXPERIMENTS.md;
* :mod:`repro.experiments.bench_sharded` /
  :mod:`repro.experiments.bench_matching` — the measurement protocols
  behind ``benchmarks/test_bench_sharded.py`` /
  ``benchmarks/test_bench_matching.py`` and the ``BENCH_*.json``
  trajectory files written by ``tools/bench_to_json.py``.
"""

from repro.experiments.parallel import ParallelRunner, StrategySpec, StreamSpec
from repro.experiments.sweeps import (
    ExperimentResult,
    ParameterSweep,
    SweepCell,
    run_sweep,
)
from repro.experiments.figures import (
    FIGURES,
    FigureSpec,
    build_figure_sweep,
    figure_ids,
    get_figure,
)
from repro.experiments.report import (
    format_series,
    format_table,
    result_to_series,
)

__all__ = [
    "ParameterSweep",
    "SweepCell",
    "ExperimentResult",
    "run_sweep",
    "ParallelRunner",
    "StrategySpec",
    "StreamSpec",
    "FigureSpec",
    "FIGURES",
    "figure_ids",
    "get_figure",
    "build_figure_sweep",
    "format_table",
    "format_series",
    "result_to_series",
]
