"""Registry of the paper's evaluation experiments (Figs. 6, 7, 8 and 10).

Every figure of the evaluation section is registered as a
:class:`FigureSpec`: the swept parameter, the values the paper uses, and a
workload factory.  Because the paper's full-size instances (up to 500 000
tasks and workers over hundreds of periods, times five strategies) are
sized for the authors' C++ implementation, each spec accepts a ``scale``
factor that shrinks the task/worker/period counts proportionally while
preserving the per-period demand/supply density — the quantity that
determines which strategy wins.  The benchmark harness uses a small scale
by default and EXPERIMENTS.md records the scale used for the reported
numbers; passing ``scale=1.0`` reproduces the paper-sized instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.simulation.config import BeijingConfig, SyntheticConfig, WorkloadBundle
from repro.simulation.generator import SyntheticWorkloadGenerator
from repro.simulation.taxi import BeijingTaxiGenerator
from repro.experiments.sweeps import ParameterSweep

#: A factory building the workload for one (parameter value, scale) pair.
ScaledFactory = Callable[[object, float], WorkloadBundle]


@dataclass(frozen=True)
class FigureSpec:
    """One experiment of the paper's evaluation.

    Attributes:
        figure_id: Identifier used by benchmarks and EXPERIMENTS.md
            (e.g. ``"fig6-W"``).
        title: Human-readable description.
        parameter_name: Name of the swept parameter as the paper labels it.
        parameter_values: The paper's sweep values.
        factory: Workload factory ``(value, scale) -> WorkloadBundle``.
        metrics: The metrics the paper reports for this figure.
        expectation: One-line statement of the expected qualitative shape,
            checked (loosely) by the benchmark assertions.
    """

    figure_id: str
    title: str
    parameter_name: str
    parameter_values: List[object]
    factory: ScaledFactory
    metrics: List[str] = field(default_factory=lambda: ["revenue", "time", "memory"])
    expectation: str = ""

    def build_sweep(
        self,
        scale: float = 0.05,
        strategies: Optional[Sequence[str]] = None,
        values: Optional[Sequence[object]] = None,
        seed: int = 0,
        track_memory: bool = False,
    ) -> ParameterSweep:
        """Materialise a :class:`ParameterSweep` at the requested scale."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        chosen_values = list(values) if values is not None else list(self.parameter_values)
        sweep_kwargs = dict(
            experiment_id=self.figure_id,
            parameter_name=self.parameter_name,
            parameter_values=chosen_values,
            workload_factory=lambda value: self.factory(value, scale),
            seed=seed,
            track_memory=track_memory,
        )
        if strategies is not None:
            sweep_kwargs["strategies"] = list(strategies)
        return ParameterSweep(**sweep_kwargs)


# ---------------------------------------------------------------------------
# synthetic workload helpers
# ---------------------------------------------------------------------------
#: Default synthetic parameters (bold entries of Table 3).
PAPER_DEFAULTS = dict(
    num_workers=5000,
    num_tasks=20000,
    temporal_mu=0.5,
    spatial_mean=0.5,
    demand_mu=2.0,
    demand_sigma=1.0,
    num_periods=400,
    grid_side=10,
    worker_radius=10.0,
)


def scaled_synthetic_config(scale: float, **overrides) -> SyntheticConfig:
    """Build a :class:`SyntheticConfig` at ``scale`` of the paper's size.

    Worker count, task count and the number of periods are all multiplied
    by ``scale`` (subject to small minimums), so the per-period density of
    tasks and workers — which drives the supply/demand conditions — is
    preserved.  Explicit overrides are applied *after* scaling, so a sweep
    that fixes ``num_periods`` (e.g. the T sweep) can do so.
    """
    params = dict(PAPER_DEFAULTS)
    scaled = dict(
        num_workers=max(10, int(round(params["num_workers"] * scale))),
        num_tasks=max(20, int(round(params["num_tasks"] * scale))),
        num_periods=max(5, int(round(params["num_periods"] * scale))),
    )
    params.update(scaled)
    params.update(overrides)
    return SyntheticConfig(**params)


def _synthetic_workload(scale: float, **overrides) -> WorkloadBundle:
    config = scaled_synthetic_config(scale, **overrides)
    return SyntheticWorkloadGenerator(config).generate()


def _beijing_workload(dataset: int, duration: int, scale: float) -> WorkloadBundle:
    base = BeijingConfig.dataset_1() if dataset == 1 else BeijingConfig.dataset_2()
    config = base.scaled(scale)
    config = replace(
        config,
        worker_duration=int(duration),
        num_periods=max(10, int(round(base.num_periods * max(scale * 4, 0.25)))),
    )
    return BeijingTaxiGenerator(config).generate()


# ---------------------------------------------------------------------------
# figure registry
# ---------------------------------------------------------------------------
FIGURES: Dict[str, FigureSpec] = {}


def _register(spec: FigureSpec) -> FigureSpec:
    FIGURES[spec.figure_id] = spec
    return spec


_register(
    FigureSpec(
        figure_id="fig6-W",
        title="Fig. 6 col. 1: effect of the number of workers |W|",
        parameter_name="|W|",
        parameter_values=[1250, 2500, 5000, 7500, 10000],
        factory=lambda value, scale: _synthetic_workload(
            scale, num_workers=max(5, int(round(int(value) * scale)))
        ),
        expectation="Revenue increases with |W| for every strategy; MAPS is highest.",
    )
)

_register(
    FigureSpec(
        figure_id="fig6-R",
        title="Fig. 6 col. 2: effect of the number of requests |R|",
        parameter_name="|R|",
        parameter_values=[5000, 10000, 20000, 30000, 40000],
        factory=lambda value, scale: _synthetic_workload(
            scale, num_tasks=max(10, int(round(int(value) * scale)))
        ),
        expectation="Revenue increases with |R| and saturates; MAPS is highest.",
    )
)

_register(
    FigureSpec(
        figure_id="fig6-tmu",
        title="Fig. 6 col. 3: effect of the temporal distribution mean of requests",
        parameter_name="mu",
        parameter_values=[0.1, 0.3, 0.5, 0.7, 0.9],
        factory=lambda value, scale: _synthetic_workload(scale, temporal_mu=float(value)),
        expectation="Revenue peaks when the task mean aligns with the workers' (mu=0.5).",
    )
)

_register(
    FigureSpec(
        figure_id="fig6-smean",
        title="Fig. 6 col. 4: effect of the spatial distribution mean of requests",
        parameter_name="mean",
        parameter_values=[0.1, 0.3, 0.5, 0.7, 0.9],
        factory=lambda value, scale: _synthetic_workload(scale, spatial_mean=float(value)),
        expectation="Revenue peaks when task origins overlap the workers' (mean=0.5).",
    )
)

_register(
    FigureSpec(
        figure_id="fig7-dmu",
        title="Fig. 7 col. 1: effect of the demand distribution mean",
        parameter_name="mu",
        parameter_values=[1.0, 1.5, 2.0, 2.5, 3.0],
        factory=lambda value, scale: _synthetic_workload(scale, demand_mu=float(value)),
        expectation="Revenue increases with the valuation mean; MAPS is highest.",
    )
)

_register(
    FigureSpec(
        figure_id="fig7-dsigma",
        title="Fig. 7 col. 2: effect of the demand distribution standard deviation",
        parameter_name="sigma",
        parameter_values=[0.5, 1.0, 1.5, 2.0, 2.5],
        factory=lambda value, scale: _synthetic_workload(scale, demand_sigma=float(value)),
        expectation="Revenue increases with sigma (truncation raises the mean); MAPS is highest.",
    )
)

_register(
    FigureSpec(
        figure_id="fig7-T",
        title="Fig. 7 col. 3: effect of the number of time periods T",
        parameter_name="T",
        parameter_values=[200, 400, 600, 800, 1000],
        factory=lambda value, scale: _synthetic_workload(
            scale, num_periods=max(5, int(round(int(value) * scale)))
        ),
        expectation="Revenue decreases slightly as T grows (thinner per-period markets).",
    )
)

_register(
    FigureSpec(
        figure_id="fig7-G",
        title="Fig. 7 col. 4: effect of the number of grids G",
        parameter_name="G",
        parameter_values=[25, 100, 225, 400, 625],
        factory=lambda value, scale: _synthetic_workload(
            scale, grid_side=int(round(int(value) ** 0.5))
        ),
        expectation="Revenue first rises with G then flattens; memory grows with G.",
    )
)

_register(
    FigureSpec(
        figure_id="fig8-aw",
        title="Fig. 8 col. 1: effect of the worker radius a_w",
        parameter_name="a_w",
        parameter_values=[5, 10, 15, 20, 25],
        factory=lambda value, scale: _synthetic_workload(scale, worker_radius=float(value)),
        expectation="Revenue increases with a_w and saturates; MAPS time grows with edges.",
    )
)

_register(
    FigureSpec(
        figure_id="fig8-scale",
        title="Fig. 8 col. 2: scalability with |W| = |R|",
        parameter_name="|W|=|R|",
        parameter_values=[100000, 200000, 300000, 400000, 500000],
        factory=lambda value, scale: _synthetic_workload(
            scale,
            num_workers=max(10, int(round(int(value) * scale))),
            num_tasks=max(10, int(round(int(value) * scale))),
        ),
        expectation="MAPS time grows roughly linearly; other strategies stay flat.",
    )
)

_register(
    FigureSpec(
        figure_id="fig8-real1",
        title="Fig. 8 col. 3: Beijing dataset #1 (5pm-7pm), varying worker duration",
        parameter_name="delta_w",
        parameter_values=[5, 10, 15, 20, 25],
        factory=lambda value, scale: _beijing_workload(1, int(value), scale),
        expectation="Revenue grows with worker duration and saturates; MAPS is highest.",
    )
)

_register(
    FigureSpec(
        figure_id="fig8-real2",
        title="Fig. 8 col. 4: Beijing dataset #2 (0am-2am), varying worker duration",
        parameter_name="delta_w",
        parameter_values=[5, 10, 15, 20, 25],
        factory=lambda value, scale: _beijing_workload(2, int(value), scale),
        expectation="MAPS highest; CappedUCB competitive with BaseP under tight supply.",
    )
)

_register(
    FigureSpec(
        figure_id="fig10-alpha",
        title="Fig. 10 (Appendix D): exponential demand distribution, varying alpha",
        parameter_name="alpha",
        parameter_values=[0.5, 0.75, 1.0, 1.25, 1.5],
        factory=lambda value, scale: _synthetic_workload(
            scale, demand_distribution="exponential", demand_rate=float(value)
        ),
        expectation="MAPS highest for every alpha, mirroring the normal-demand results.",
    )
)


def figure_ids() -> List[str]:
    """All registered experiment identifiers, in registration order."""
    return list(FIGURES.keys())


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec by id.

    Raises:
        KeyError: for unknown ids; the message lists the available ones.
    """
    if figure_id not in FIGURES:
        raise KeyError(
            f"unknown figure id {figure_id!r}; available: {', '.join(figure_ids())}"
        )
    return FIGURES[figure_id]


def build_figure_sweep(figure_id: str, **kwargs) -> ParameterSweep:
    """Shortcut: ``get_figure(figure_id).build_sweep(**kwargs)``."""
    return get_figure(figure_id).build_sweep(**kwargs)


__all__ = [
    "FigureSpec",
    "FIGURES",
    "figure_ids",
    "get_figure",
    "build_figure_sweep",
    "scaled_synthetic_config",
    "PAPER_DEFAULTS",
]
