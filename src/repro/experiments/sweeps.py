"""Parameter sweeps over pricing strategies.

A sweep varies one experiment parameter (e.g. ``|W|``) over a list of
values; for each value a workload is generated, the base price is
calibrated once (shared by every strategy that needs it, as in the paper),
and every strategy is simulated on the *same* workload.  The result is a
grid of :class:`SweepCell` records — one per (parameter value, strategy) —
carrying the three metrics the paper plots.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base_pricing import BasePricingConfig, BasePricingResult
from repro.experiments.parallel import ParallelRunner, StrategySpec
from repro.pricing.registry import PAPER_STRATEGIES, calibrated_kwargs, create_strategy
from repro.pricing.strategy import PricingStrategy
from repro.simulation.config import WorkloadBundle
from repro.simulation.engine import SimulationEngine

#: Builds the workload for one parameter value.
WorkloadFactory = Callable[[object], WorkloadBundle]


@dataclass
class SweepCell:
    """Metrics of one strategy at one parameter value."""

    parameter: object
    strategy: str
    revenue: float
    pricing_time_seconds: float
    matching_time_seconds: float
    peak_memory_mb: float
    served_tasks: int
    accepted_tasks: int
    total_tasks: int

    @property
    def total_time_seconds(self) -> float:
        return self.pricing_time_seconds + self.matching_time_seconds


@dataclass
class ExperimentResult:
    """All cells of one sweep, plus bookkeeping for reports."""

    experiment_id: str
    parameter_name: str
    parameter_values: List[object]
    strategies: List[str]
    cells: List[SweepCell] = field(default_factory=list)
    base_prices: Dict[object, float] = field(default_factory=dict)

    def cell(self, parameter: object, strategy: str) -> SweepCell:
        for candidate in self.cells:
            if candidate.parameter == parameter and candidate.strategy == strategy:
                return candidate
        raise KeyError(f"no cell for parameter={parameter!r}, strategy={strategy!r}")

    def revenue_series(self, strategy: str) -> List[float]:
        return [self.cell(value, strategy).revenue for value in self.parameter_values]

    def time_series(self, strategy: str) -> List[float]:
        return [
            self.cell(value, strategy).pricing_time_seconds
            for value in self.parameter_values
        ]

    def memory_series(self, strategy: str) -> List[float]:
        return [
            self.cell(value, strategy).peak_memory_mb for value in self.parameter_values
        ]

    def winner_by_revenue(self, parameter: object) -> str:
        """Strategy with the highest revenue at one parameter value."""
        best_strategy = None
        best_revenue = float("-inf")
        for strategy in self.strategies:
            revenue = self.cell(parameter, strategy).revenue
            if revenue > best_revenue:
                best_revenue = revenue
                best_strategy = strategy
        assert best_strategy is not None
        return best_strategy


@dataclass
class ParameterSweep:
    """Specification of one parameter sweep.

    Attributes:
        experiment_id: Identifier (e.g. ``"fig6-W"``).
        parameter_name: Human-readable parameter name (e.g. ``"|W|"``).
        parameter_values: The values to sweep.
        workload_factory: Maps a parameter value to a generated workload.
        strategies: Strategy names to compare (paper's five by default).
        seed: Seed passed to the simulation engine.
        track_memory: Enable peak-memory tracking (slower).
        calibration_config: Base pricing parameters (a capped probe budget
            by default to keep the calibration phase affordable).
    """

    experiment_id: str
    parameter_name: str
    parameter_values: List[object]
    workload_factory: WorkloadFactory
    strategies: List[str] = field(default_factory=lambda: list(PAPER_STRATEGIES))
    seed: int = 0
    track_memory: bool = False
    calibration_config: Optional[BasePricingConfig] = None


def run_sweep(sweep: ParameterSweep, jobs: int = 1) -> ExperimentResult:
    """Execute a sweep and collect metrics for every (value, strategy) pair.

    Args:
        sweep: The sweep specification.
        jobs: Number of worker processes for the per-value strategy runs.
            ``1`` (default) runs everything sequentially in-process; ``0``
            lets the executor pick its default worker count.  Because each
            run's randomness is derived solely from ``(seed, strategy)``,
            parallel results are identical to sequential ones.
    """
    result = ExperimentResult(
        experiment_id=sweep.experiment_id,
        parameter_name=sweep.parameter_name,
        parameter_values=list(sweep.parameter_values),
        strategies=list(sweep.strategies),
    )
    # Distinct strategy names are required to key the fanned-out results.
    use_parallel = jobs != 1 and len(set(sweep.strategies)) == len(sweep.strategies)
    if jobs != 1 and not use_parallel:
        warnings.warn(
            "run_sweep: duplicate strategy names cannot be keyed apart; "
            f"ignoring jobs={jobs} and running sequentially",
            RuntimeWarning,
            stacklevel=2,
        )
    for value in sweep.parameter_values:
        workload = sweep.workload_factory(value)
        engine = SimulationEngine(
            workload,
            seed=sweep.seed,
            track_memory=sweep.track_memory,
        )
        p_min, p_max = workload.price_bounds
        calibration = engine.calibrate_base_price(config=sweep.calibration_config)
        result.base_prices[value] = calibration.base_price

        def _strategy_kwargs(strategy_name: str) -> dict:
            return calibrated_kwargs(strategy_name, calibration, p_min=p_min, p_max=p_max)

        if use_parallel:
            runner = ParallelRunner(
                workload,
                [
                    StrategySpec(strategy_name, _strategy_kwargs(strategy_name))
                    for strategy_name in sweep.strategies
                ],
                seeds=[sweep.seed],
                max_workers=None if jobs <= 0 else jobs,
                track_memory=sweep.track_memory,
            )
            # Results are keyed by the sweep's own strategy strings (the
            # uniqueness guard above makes the keys collision-free), in
            # declaration order.
            simulations = list(runner.run().values())
        else:
            simulations = [
                engine.run(create_strategy(strategy_name, **_strategy_kwargs(strategy_name)))
                for strategy_name in sweep.strategies
            ]

        for strategy_name, simulation in zip(sweep.strategies, simulations):
            metrics = simulation.metrics
            result.cells.append(
                SweepCell(
                    parameter=value,
                    strategy=strategy_name,
                    revenue=metrics.total_revenue,
                    pricing_time_seconds=metrics.pricing_time_seconds,
                    matching_time_seconds=metrics.matching_time_seconds,
                    peak_memory_mb=metrics.peak_memory_mb,
                    served_tasks=metrics.served_tasks,
                    accepted_tasks=metrics.accepted_tasks,
                    total_tasks=metrics.total_tasks,
                )
            )
    return result


def run_single_setting(
    workload: WorkloadBundle,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
    track_memory: bool = False,
    calibration_config: Optional[BasePricingConfig] = None,
) -> ExperimentResult:
    """Convenience wrapper: compare strategies on a single fixed workload."""
    sweep = ParameterSweep(
        experiment_id="single",
        parameter_name="setting",
        parameter_values=["default"],
        workload_factory=lambda _value: workload,
        strategies=list(strategies or PAPER_STRATEGIES),
        seed=seed,
        track_memory=track_memory,
        calibration_config=calibration_config,
    )
    return run_sweep(sweep)


__all__ = [
    "ParameterSweep",
    "SweepCell",
    "ExperimentResult",
    "run_sweep",
    "run_single_setting",
]
