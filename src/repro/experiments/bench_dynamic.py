"""Delta-repair matching throughput vs per-window re-solve, shared by
bench and tooling.

One measurement protocol feeds two consumers:

* ``benchmarks/test_bench_dynamic.py`` — the tier-1 gate asserting the
  :class:`~repro.matching.incremental.DynamicMatcher` delta path beats a
  fresh per-window re-solve by the required factor on the high-churn
  scenario (CI-sized horizon);
* ``tools/bench_to_json.py --benchmark dynamic`` — the writer that
  records the full-size trajectory point (``BENCH_dynamic.json``).

**What is measured.**  The ``churn_city`` stream is pre-compiled into a
*trajectory*: a universe adjacency over every task/worker the stream
yields, plus per-window operation lists (worker arrivals with departure
times, accepted tasks with fixed-price weights ``d_r * base_price`` and
deadlines).  The same trajectory then runs through two passes:

* ``delta`` — one maintained :class:`DynamicMatcher`; every window
  settles due deadlines/departures (commit / expire / repair) and
  inserts the window's arrivals.  Timed: the matcher operations.
* ``rewindow`` — the baseline.  Every window rebuilds a fresh matcher
  from scratch over the live population (workers ascending, tasks in
  ``(-weight, pos)`` order — the transversal-matroid greedy, i.e. the
  batch ``matroid`` solve).  Timed: the rebuilds.  Settlement replays
  the delta pass's recorded commit/expire/depart events, so both passes
  walk the *identical* population trajectory — which is what makes the
  bit-identity check meaningful.

**Bit-identity contract.**  After every window the rewindow pass asserts
that its freshly re-solved matching has the same matched-task basis and
the same ``repr``-identical total weight as the delta pass recorded:
the maintained matching *is* the per-window re-solve, delivered at
delta cost.  The final committed revenue is asserted ``repr``-identical
between the passes.

**Horizon chunking.**  The universe adjacency is quadratic in the
population, so a 1M-task horizon cannot be one graph.  The horizon is
chunked into independent *epochs* (fresh seed, drained at the end);
churn statistics are horizon-invariant, so per-epoch measurements sum
honestly.  ``scale`` stretches the number of epochs (the city_scale
convention: density fixed, horizon scaled); scale 1.0 is the ~1M-task
horizon (200 epochs x 125 periods x ~40 tasks/period).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.gdp import PeriodInstance
from repro.matching.incremental import DynamicMatcher
from repro.simulation.scenarios import get_scenario
from repro.simulation.streaming import TaskArrival, window_index
from repro.utils.rng import derive_seed

#: Epochs at scale 1.0 — together the ~1M-task horizon.
FULL_EPOCHS = 200

#: Periods per epoch (the largest population whose universe adjacency
#: stays comfortably in memory at churn_city density).
EPOCH_PERIODS = 125


@dataclass(frozen=True)
class DynamicBenchPoint:
    """One measured resolve mode."""

    config: str
    seconds: float
    total_tasks: int
    tasks_per_second: float
    revenue: float
    committed: int


@dataclass(frozen=True)
class _WindowOps:
    """One dispatch window's pre-compiled population delta."""

    start: float
    #: ``(worker_pos, departure_time_or_None)`` in arrival order.
    workers: List[Tuple[int, Optional[float]]]
    #: ``(task_pos, weight, deadline)`` in ``(-weight, pos)`` order.
    tasks: List[Tuple[int, float, float]]


@dataclass
class _Epoch:
    graph: object
    num_tasks: int
    num_workers: int
    windows: List[_WindowOps]


def _build_epoch(
    seed: int,
    epoch_periods: int,
    window: float,
    task_lifetime: float,
    worker_lifetime: float,
    base_price: float,
    max_degree: Optional[int],
) -> _Epoch:
    """Compile one churn_city epoch into a universe graph + window ops."""
    stream = get_scenario("churn_city").stream(
        scale=1.0,
        seed=seed,
        num_periods=epoch_periods,
        task_lifetime=task_lifetime,
        worker_lifetime=worker_lifetime,
    )
    tasks, workers, task_times = [], [], []
    per_window: Dict[int, Tuple[list, list]] = {}
    for event in stream.iter_events():
        widx = window_index(float(event.time), window)
        ops = per_window.setdefault(widx, ([], []))
        if isinstance(event, TaskArrival):
            pos = len(tasks)
            tasks.append(event.task)
            task_times.append(float(event.time))
            ops[1].append(pos)
        else:
            pos = len(workers)
            worker = event.worker
            workers.append(worker)
            departs = (
                None
                if worker.duration is None
                else float(worker.period + worker.duration)
            )
            ops[0].append((pos, departs))
    instance = PeriodInstance.build(
        period=0,
        grid=stream.grid,
        tasks=tasks,
        workers=workers,
        metric=stream.metric,
        max_degree=max_degree,
    )
    distances = instance.ensure_arrays().distances
    windows: List[_WindowOps] = []
    for widx in sorted(per_window):
        worker_ops, task_positions = per_window[widx]
        entries = []
        for pos in task_positions:
            lifetime = (
                tasks[pos].duration
                if tasks[pos].duration is not None
                else task_lifetime
            )
            entries.append(
                (
                    pos,
                    float(distances[pos]) * base_price,
                    task_times[pos] + float(lifetime),
                )
            )
        entries.sort(key=lambda entry: (-entry[1], entry[0]))
        windows.append(
            _WindowOps(start=widx * window, workers=worker_ops, tasks=entries)
        )
    return _Epoch(
        graph=instance.graph,
        num_tasks=len(tasks),
        num_workers=len(workers),
        windows=windows,
    )


@dataclass
class _DeltaTrace:
    """Everything the rewindow pass needs to replay the delta pass."""

    seconds: float = 0.0
    revenue: float = 0.0
    committed: int = 0
    #: Per window: the settlement events applied *before* its arrivals,
    #: as ``("commit", task, worker) | ("expire", task, -1) |
    #: ("depart", worker, -1)``; the last entry is the final drain.
    settlements: List[List[Tuple[str, int, int]]] = field(default_factory=list)
    #: Per window: (sorted matched-task basis, repr(total_weight)).
    bases: List[Tuple[Tuple[int, ...], str]] = field(default_factory=list)
    live_task_samples: List[int] = field(default_factory=list)
    settled_tasks: int = 0


def _settle(
    matcher: DynamicMatcher,
    deadlines: List[Tuple[float, int]],
    departures: List[Tuple[float, int]],
    live_weights: Dict[int, float],
    live_workers: set,
    bound: float,
    log: List[Tuple[str, int, int]],
) -> Tuple[float, int]:
    """Commit/expire everything due at or before ``bound``, logging the
    applied events (same global time order as the streaming engine)."""
    revenue = 0.0
    commits = 0
    while deadlines or departures:
        due_deadline = deadlines[0][0] if deadlines else math.inf
        due_departure = departures[0][0] if departures else math.inf
        if min(due_deadline, due_departure) > bound:
            break
        if due_deadline <= due_departure:
            _, task_pos = heapq.heappop(deadlines)
            if task_pos not in live_weights:
                continue
            if matcher.is_task_matched(task_pos):
                worker_pos = matcher.commit_task(task_pos)
                revenue += live_weights.pop(task_pos)
                commits += 1
                live_workers.discard(worker_pos)
                log.append(("commit", task_pos, worker_pos))
            else:
                matcher.remove_task(task_pos)
                live_weights.pop(task_pos)
                log.append(("expire", task_pos, -1))
        else:
            _, worker_pos = heapq.heappop(departures)
            if worker_pos not in live_workers:
                continue
            matcher.remove_worker(worker_pos)
            live_workers.discard(worker_pos)
            log.append(("depart", worker_pos, -1))
    return revenue, commits


def _run_delta(epoch: _Epoch, trace: _DeltaTrace) -> None:
    """Maintained-matching pass; times the matcher operations only."""
    matcher = DynamicMatcher(epoch.graph, [0.0] * epoch.num_tasks)
    live_weights: Dict[int, float] = {}
    live_workers: set = set()
    deadlines: List[Tuple[float, int]] = []
    departures: List[Tuple[float, int]] = []
    for ops in epoch.windows:
        log: List[Tuple[str, int, int]] = []
        start = time.perf_counter()
        revenue, commits = _settle(
            matcher, deadlines, departures, live_weights, live_workers,
            ops.start, log,
        )
        for worker_pos, departs in ops.workers:
            if departs is not None and departs <= ops.start:
                continue
            matcher.insert_worker(worker_pos)
            live_workers.add(worker_pos)
            if departs is not None:
                heapq.heappush(departures, (departs, worker_pos))
        for task_pos, weight, deadline in ops.tasks:
            matcher.insert_task(task_pos, weight)
            live_weights[task_pos] = weight
            heapq.heappush(deadlines, (deadline, task_pos))
        trace.seconds += time.perf_counter() - start
        trace.revenue += revenue
        trace.committed += commits
        trace.settlements.append(log)
        trace.settled_tasks += sum(
            1 for kind, _, _ in log if kind in ("commit", "expire")
        )
        trace.live_task_samples.append(len(live_weights))
        basis = tuple(
            sorted(pos for pos in live_weights if matcher.is_task_matched(pos))
        )
        trace.bases.append((basis, repr(matcher.total_weight())))
    # Drain everything still pending after the final window.
    log = []
    start = time.perf_counter()
    revenue, commits = _settle(
        matcher, deadlines, departures, live_weights, live_workers,
        math.inf, log,
    )
    trace.seconds += time.perf_counter() - start
    trace.revenue += revenue
    trace.committed += commits
    trace.settlements.append(log)
    trace.settled_tasks += sum(
        1 for kind, _, _ in log if kind in ("commit", "expire")
    )


def _replay(
    log: List[Tuple[str, int, int]],
    live_weights: Dict[int, float],
    live_workers: set,
) -> Tuple[float, int]:
    """Apply a recorded settlement log to the live population."""
    revenue = 0.0
    commits = 0
    for kind, pos, worker_pos in log:
        if kind == "commit":
            revenue += live_weights.pop(pos)
            commits += 1
            live_workers.discard(worker_pos)
        elif kind == "expire":
            live_weights.pop(pos)
        else:
            live_workers.discard(pos)
    return revenue, commits


def _run_rewindow(epoch: _Epoch, trace: _DeltaTrace) -> Tuple[float, float, int]:
    """Per-window re-solve pass; times the rebuilds only.

    Settlement replays the delta pass's recorded events so both passes
    walk the identical population trajectory; after every rebuild the
    matched basis and total weight are asserted bit-identical to the
    delta pass.  Returns ``(seconds, revenue, committed)``.
    """
    live_weights: Dict[int, float] = {}
    live_workers: set = set()
    seconds = 0.0
    revenue = 0.0
    committed = 0
    for index, ops in enumerate(epoch.windows):
        window_revenue, commits = _replay(
            trace.settlements[index], live_weights, live_workers
        )
        revenue += window_revenue
        committed += commits
        for worker_pos, departs in ops.workers:
            if departs is not None and departs <= ops.start:
                continue
            live_workers.add(worker_pos)
        for task_pos, weight, _ in ops.tasks:
            live_weights[task_pos] = weight
        start = time.perf_counter()
        matcher = DynamicMatcher(epoch.graph, [0.0] * epoch.num_tasks)
        for worker_pos in sorted(live_workers):
            matcher.insert_worker(worker_pos)
        for task_pos in sorted(
            live_weights, key=lambda pos: (-live_weights[pos], pos)
        ):
            matcher.insert_task(task_pos, live_weights[task_pos])
        seconds += time.perf_counter() - start
        basis = tuple(
            sorted(pos for pos in live_weights if matcher.is_task_matched(pos))
        )
        expected_basis, expected_total = trace.bases[index]
        if basis != expected_basis:
            raise AssertionError(
                f"window {index}: re-solved basis diverged from the "
                f"maintained matching ({len(basis)} vs "
                f"{len(expected_basis)} matched tasks)"
            )
        total = repr(matcher.total_weight())
        if total != expected_total:
            raise AssertionError(
                f"window {index}: re-solved total {total} != maintained "
                f"{expected_total}"
            )
    window_revenue, commits = _replay(
        trace.settlements[-1], live_weights, live_workers
    )
    revenue += window_revenue
    committed += commits
    return seconds, revenue, committed


def measure_dynamic_throughput(
    scale: float = 1.0,
    seed: int = 0,
    window: float = 1.0,
    epochs: Optional[int] = None,
    epoch_periods: int = EPOCH_PERIODS,
    task_lifetime: float = 8.0,
    worker_lifetime: float = 6.0,
    base_price: float = 2.0,
    max_degree: Optional[int] = 16,
) -> Dict[str, object]:
    """Measure delta-repair vs per-window re-solve matching throughput.

    Args:
        scale: Horizon scale (1.0 = the ~1M-task horizon); stretches the
            number of epochs while per-window churn density stays fixed.
        seed: Root seed; each epoch derives its own stream seed.
        window: Dispatch window length in period units.
        epochs: Explicit epoch count (overrides ``scale``).
        epoch_periods: Periods per epoch.
        task_lifetime: Mean periods a request stays open (the churn
            knob: per-window turnover is ~``2 / task_lifetime``).
        worker_lifetime: Mean worker shift length in periods.
        base_price: Fixed price; weights are ``distance * base_price``
            (no pricing pipeline — the measurement is matcher-only).
        max_degree: Per-task cap on the universe adjacency (16 nearest
            workers by default — the hot-path cap the degree-capped
            configurations of ``BENCH_matching.json`` run at; both
            passes solve the identical capped graph, so the comparison
            stays exact).  ``None`` uncaps.

    Returns:
        A JSON-ready payload: both passes' measurements, the delta
        speedup over the re-solve baseline, churn statistics, and the
        number of windows whose bit-identity was asserted.
    """
    if epochs is None:
        epochs = max(1, int(round(FULL_EPOCHS * scale)))
    total_tasks = 0
    total_workers = 0
    num_windows = 0
    rewindow_seconds = 0.0
    rewindow_revenue = 0.0
    rewindow_committed = 0
    trace_totals = _DeltaTrace()
    live_samples: List[int] = []
    arrivals = 0
    settled = 0
    for epoch_index in range(epochs):
        epoch = _build_epoch(
            seed=derive_seed(seed, "dynamic-bench", epoch_index),
            epoch_periods=epoch_periods,
            window=window,
            task_lifetime=task_lifetime,
            worker_lifetime=worker_lifetime,
            base_price=base_price,
            max_degree=max_degree,
        )
        trace = _DeltaTrace()
        _run_delta(epoch, trace)
        seconds, revenue, committed = _run_rewindow(epoch, trace)
        if repr(revenue) != repr(trace.revenue):
            raise AssertionError(
                f"epoch {epoch_index}: rewindow revenue {revenue!r} != "
                f"delta revenue {trace.revenue!r}"
            )
        total_tasks += epoch.num_tasks
        total_workers += epoch.num_workers
        num_windows += len(epoch.windows)
        rewindow_seconds += seconds
        rewindow_revenue += revenue
        rewindow_committed += committed
        trace_totals.seconds += trace.seconds
        trace_totals.revenue += trace.revenue
        trace_totals.committed += trace.committed
        live_samples.extend(trace.live_task_samples)
        arrivals += sum(len(ops.tasks) for ops in epoch.windows)
        settled += trace.settled_tasks

    mean_live = sum(live_samples) / len(live_samples) if live_samples else 0.0
    # Turnover fraction: population changes (inserts + settlements) per
    # window relative to the standing population — ~2/task_lifetime, the
    # churn_city docstring's definition (~20-25% at the defaults).
    churn = (
        (arrivals + settled) / (num_windows * mean_live)
        if num_windows and mean_live
        else 0.0
    )
    results = [
        DynamicBenchPoint(
            config="rewindow",
            seconds=rewindow_seconds,
            total_tasks=total_tasks,
            tasks_per_second=total_tasks / rewindow_seconds,
            revenue=rewindow_revenue,
            committed=rewindow_committed,
        ),
        DynamicBenchPoint(
            config="delta",
            seconds=trace_totals.seconds,
            total_tasks=total_tasks,
            tasks_per_second=total_tasks / trace_totals.seconds,
            revenue=trace_totals.revenue,
            committed=trace_totals.committed,
        ),
    ]
    baseline = results[0]
    return {
        "benchmark": "dynamic_matching_throughput",
        "scenario": "churn_city",
        "scale": float(scale),
        "seed": int(seed),
        "window": float(window),
        "epochs": int(epochs),
        "epoch_periods": int(epoch_periods),
        "task_lifetime": float(task_lifetime),
        "worker_lifetime": float(worker_lifetime),
        "base_price": float(base_price),
        "max_degree": max_degree,
        "total_tasks": total_tasks,
        "total_workers": total_workers,
        "num_windows": num_windows,
        "mean_live_tasks": mean_live,
        "churn_per_window": churn,
        "windows_bit_identical": num_windows,
        "baseline_config": baseline.config,
        "results": [asdict(point) for point in results],
        "speedup_vs_baseline": {
            point.config: point.tasks_per_second / baseline.tasks_per_second
            for point in results
        },
        "revenue_ratio_vs_baseline": {
            point.config: (
                point.revenue / baseline.revenue if baseline.revenue else 1.0
            )
            for point in results
        },
    }


__all__ = [
    "EPOCH_PERIODS",
    "FULL_EPOCHS",
    "DynamicBenchPoint",
    "measure_dynamic_throughput",
]
