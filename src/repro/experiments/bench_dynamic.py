"""Delta-repair matching throughput vs per-window re-solve, shared by
bench and tooling.

One measurement protocol feeds two consumers:

* ``benchmarks/test_bench_dynamic.py`` — the tier-1 gate asserting the
  :class:`~repro.matching.incremental.DynamicMatcher` delta path beats a
  fresh per-window re-solve by the required factor on the high-churn
  scenario (CI-sized horizon);
* ``tools/bench_to_json.py --benchmark dynamic`` — the writer that
  records the full-size trajectory point (``BENCH_dynamic.json``).

**What is measured.**  The ``churn_city`` stream is pre-compiled into a
*trajectory*: a universe adjacency over every task/worker the stream
yields, plus per-window operation lists (worker arrivals with departure
times, accepted tasks with fixed-price weights ``d_r * base_price`` and
deadlines).  The same trajectory then runs through two passes:

* ``delta`` — one maintained :class:`DynamicMatcher`; every window
  settles due deadlines/departures (commit / expire / repair) and
  inserts the window's arrivals.  Timed: the matcher operations.
* ``rewindow`` — the baseline.  Every window rebuilds a fresh matcher
  from scratch over the live population (workers ascending, tasks in
  ``(-weight, pos)`` order — the transversal-matroid greedy, i.e. the
  batch ``matroid`` solve).  Timed: the rebuilds.  Settlement replays
  the delta pass's recorded commit/expire/depart events, so both passes
  walk the *identical* population trajectory — which is what makes the
  bit-identity check meaningful.
* ``incremental`` — the warm path this chain exists to measure: a
  :class:`~repro.matching.incremental.LazyDynamicMatcher` whose
  universe grows one arrival at a time, with candidate rows answered
  per arrival by an
  :class:`~repro.spatial.index.IncrementalAdjacencyIndex` over the live
  population.  No universe pre-scan, live-only state; timed: index
  maintenance + matcher operations.  Gated per window against
  ``incremental_rewindow``, a fresh matroid re-solve over the realised
  rows (also timed, as this path's own re-solve baseline).

**Bit-identity contract.**  After every window the rewindow pass asserts
that its freshly re-solved matching has the same matched-task basis and
the same ``repr``-identical total weight as the delta pass recorded:
the maintained matching *is* the per-window re-solve, delivered at
delta cost.  The final committed revenue is asserted ``repr``-identical
between the passes.  The incremental pass carries the same per-window
contract against re-solves over its realised rows; under a degree cap
its trajectory is its own (the realised-population cap is a denser —
strictly more useful — adjacency than the universe cap), while the
*exact* (uncapped) sub-measurement pins both passes to one trajectory
and gates every window bit-identical across the two implementations.

**Horizon chunking.**  The universe adjacency is quadratic in the
population, so a 1M-task horizon cannot be one graph.  The horizon is
chunked into independent *epochs* (fresh seed, drained at the end);
churn statistics are horizon-invariant, so per-epoch measurements sum
honestly.  ``scale`` stretches the number of epochs (the city_scale
convention: density fixed, horizon scaled); scale 1.0 is the ~1M-task
horizon (200 epochs x 125 periods x ~40 tasks/period).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.gdp import PeriodInstance
from repro.experiments.host import host_fingerprint
from repro.matching.incremental import DynamicMatcher, LazyDynamicMatcher
from repro.simulation.scenarios import get_scenario
from repro.simulation.streaming import TaskArrival, window_index
from repro.spatial.index import IncrementalAdjacencyIndex
from repro.utils.rng import derive_seed

#: Epochs at scale 1.0 — together the ~1M-task horizon.
FULL_EPOCHS = 200

#: Periods per epoch (the largest population whose universe adjacency
#: stays comfortably in memory at churn_city density).
EPOCH_PERIODS = 125


@dataclass(frozen=True)
class DynamicBenchPoint:
    """One measured resolve mode."""

    config: str
    seconds: float
    total_tasks: int
    tasks_per_second: float
    revenue: float
    committed: int


@dataclass(frozen=True)
class _WindowOps:
    """One dispatch window's pre-compiled population delta."""

    start: float
    #: ``(worker_pos, departure_time_or_None)`` in arrival order.
    workers: List[Tuple[int, Optional[float]]]
    #: ``(task_pos, weight, deadline)`` in ``(-weight, pos)`` order.
    tasks: List[Tuple[int, float, float]]


@dataclass
class _Epoch:
    graph: object
    num_tasks: int
    num_workers: int
    windows: List[_WindowOps]
    #: The lazy/incremental pass needs raw geometry, not the universe
    #: graph: per-universe-position coordinates (and worker radii) plus
    #: the grid/metric to run an :class:`IncrementalAdjacencyIndex` over.
    grid: object = None
    metric: str = "euclidean"
    task_x: Optional[np.ndarray] = None
    task_y: Optional[np.ndarray] = None
    worker_x: Optional[np.ndarray] = None
    worker_y: Optional[np.ndarray] = None
    worker_radius: Optional[np.ndarray] = None
    #: Seconds spent building the universe adjacency — the pre-scan the
    #: delta pass depends on but does not time, reported alongside so
    #: end-to-end comparisons against the index-backed pass stay honest.
    universe_build_seconds: float = 0.0


def _build_epoch(
    seed: int,
    epoch_periods: int,
    window: float,
    task_lifetime: float,
    worker_lifetime: float,
    base_price: float,
    max_degree: Optional[int],
) -> _Epoch:
    """Compile one churn_city epoch into a universe graph + window ops."""
    stream = get_scenario("churn_city").stream(
        scale=1.0,
        seed=seed,
        num_periods=epoch_periods,
        task_lifetime=task_lifetime,
        worker_lifetime=worker_lifetime,
    )
    tasks, workers, task_times = [], [], []
    per_window: Dict[int, Tuple[list, list]] = {}
    for event in stream.iter_events():
        widx = window_index(float(event.time), window)
        ops = per_window.setdefault(widx, ([], []))
        if isinstance(event, TaskArrival):
            pos = len(tasks)
            tasks.append(event.task)
            task_times.append(float(event.time))
            ops[1].append(pos)
        else:
            pos = len(workers)
            worker = event.worker
            workers.append(worker)
            departs = (
                None
                if worker.duration is None
                else float(worker.period + worker.duration)
            )
            ops[0].append((pos, departs))
    build_start = time.perf_counter()
    instance = PeriodInstance.build(
        period=0,
        grid=stream.grid,
        tasks=tasks,
        workers=workers,
        metric=stream.metric,
        max_degree=max_degree,
    )
    universe_build_seconds = time.perf_counter() - build_start
    distances = instance.ensure_arrays().distances
    windows: List[_WindowOps] = []
    for widx in sorted(per_window):
        worker_ops, task_positions = per_window[widx]
        entries = []
        for pos in task_positions:
            lifetime = (
                tasks[pos].duration
                if tasks[pos].duration is not None
                else task_lifetime
            )
            entries.append(
                (
                    pos,
                    float(distances[pos]) * base_price,
                    task_times[pos] + float(lifetime),
                )
            )
        entries.sort(key=lambda entry: (-entry[1], entry[0]))
        windows.append(
            _WindowOps(start=widx * window, workers=worker_ops, tasks=entries)
        )
    return _Epoch(
        graph=instance.graph,
        num_tasks=len(tasks),
        num_workers=len(workers),
        windows=windows,
        grid=stream.grid,
        metric=stream.metric,
        task_x=np.array([task.origin.x for task in tasks], dtype=np.float64),
        task_y=np.array([task.origin.y for task in tasks], dtype=np.float64),
        worker_x=np.array([w.location.x for w in workers], dtype=np.float64),
        worker_y=np.array([w.location.y for w in workers], dtype=np.float64),
        worker_radius=np.array([w.radius for w in workers], dtype=np.float64),
        universe_build_seconds=universe_build_seconds,
    )


@dataclass
class _DeltaTrace:
    """Everything the rewindow pass needs to replay the delta pass."""

    seconds: float = 0.0
    revenue: float = 0.0
    committed: int = 0
    #: Per window: the settlement events applied *before* its arrivals,
    #: as ``("commit", task, worker) | ("expire", task, -1) |
    #: ("depart", worker, -1)``; the last entry is the final drain.
    settlements: List[List[Tuple[str, int, int]]] = field(default_factory=list)
    #: Per window: (sorted matched-task basis, repr(total_weight)).
    bases: List[Tuple[Tuple[int, ...], str]] = field(default_factory=list)
    live_task_samples: List[int] = field(default_factory=list)
    settled_tasks: int = 0


def _settle(
    matcher: DynamicMatcher,
    deadlines: List[Tuple[float, int]],
    departures: List[Tuple[float, int]],
    live_weights: Dict[int, float],
    live_workers: set,
    bound: float,
    log: List[Tuple[str, int, int]],
) -> Tuple[float, int]:
    """Commit/expire everything due at or before ``bound``, logging the
    applied events (same global time order as the streaming engine)."""
    revenue = 0.0
    commits = 0
    while deadlines or departures:
        due_deadline = deadlines[0][0] if deadlines else math.inf
        due_departure = departures[0][0] if departures else math.inf
        if min(due_deadline, due_departure) > bound:
            break
        if due_deadline <= due_departure:
            _, task_pos = heapq.heappop(deadlines)
            if task_pos not in live_weights:
                continue
            if matcher.is_task_matched(task_pos):
                worker_pos = matcher.commit_task(task_pos)
                revenue += live_weights.pop(task_pos)
                commits += 1
                live_workers.discard(worker_pos)
                log.append(("commit", task_pos, worker_pos))
            else:
                matcher.remove_task(task_pos)
                live_weights.pop(task_pos)
                log.append(("expire", task_pos, -1))
        else:
            _, worker_pos = heapq.heappop(departures)
            if worker_pos not in live_workers:
                continue
            matcher.remove_worker(worker_pos)
            live_workers.discard(worker_pos)
            log.append(("depart", worker_pos, -1))
    return revenue, commits


def _run_delta(epoch: _Epoch, trace: _DeltaTrace) -> None:
    """Maintained-matching pass; times the matcher operations only."""
    matcher = DynamicMatcher(epoch.graph, [0.0] * epoch.num_tasks)
    live_weights: Dict[int, float] = {}
    live_workers: set = set()
    deadlines: List[Tuple[float, int]] = []
    departures: List[Tuple[float, int]] = []
    for ops in epoch.windows:
        log: List[Tuple[str, int, int]] = []
        start = time.perf_counter()
        revenue, commits = _settle(
            matcher, deadlines, departures, live_weights, live_workers,
            ops.start, log,
        )
        for worker_pos, departs in ops.workers:
            if departs is not None and departs <= ops.start:
                continue
            matcher.insert_worker(worker_pos)
            live_workers.add(worker_pos)
            if departs is not None:
                heapq.heappush(departures, (departs, worker_pos))
        for task_pos, weight, deadline in ops.tasks:
            matcher.insert_task(task_pos, weight)
            live_weights[task_pos] = weight
            heapq.heappush(deadlines, (deadline, task_pos))
        trace.seconds += time.perf_counter() - start
        trace.revenue += revenue
        trace.committed += commits
        trace.settlements.append(log)
        trace.settled_tasks += sum(
            1 for kind, _, _ in log if kind in ("commit", "expire")
        )
        trace.live_task_samples.append(len(live_weights))
        basis = tuple(
            sorted(pos for pos in live_weights if matcher.is_task_matched(pos))
        )
        trace.bases.append((basis, repr(matcher.total_weight())))
    # Drain everything still pending after the final window.
    log = []
    start = time.perf_counter()
    revenue, commits = _settle(
        matcher, deadlines, departures, live_weights, live_workers,
        math.inf, log,
    )
    trace.seconds += time.perf_counter() - start
    trace.revenue += revenue
    trace.committed += commits
    trace.settlements.append(log)
    trace.settled_tasks += sum(
        1 for kind, _, _ in log if kind in ("commit", "expire")
    )


def _replay(
    log: List[Tuple[str, int, int]],
    live_weights: Dict[int, float],
    live_workers: set,
) -> Tuple[float, int]:
    """Apply a recorded settlement log to the live population."""
    revenue = 0.0
    commits = 0
    for kind, pos, worker_pos in log:
        if kind == "commit":
            revenue += live_weights.pop(pos)
            commits += 1
            live_workers.discard(worker_pos)
        elif kind == "expire":
            live_weights.pop(pos)
        else:
            live_workers.discard(pos)
    return revenue, commits


def _run_rewindow(epoch: _Epoch, trace: _DeltaTrace) -> Tuple[float, float, int]:
    """Per-window re-solve pass; times the rebuilds only.

    Settlement replays the delta pass's recorded events so both passes
    walk the identical population trajectory; after every rebuild the
    matched basis and total weight are asserted bit-identical to the
    delta pass.  Returns ``(seconds, revenue, committed)``.
    """
    live_weights: Dict[int, float] = {}
    live_workers: set = set()
    seconds = 0.0
    revenue = 0.0
    committed = 0
    for index, ops in enumerate(epoch.windows):
        window_revenue, commits = _replay(
            trace.settlements[index], live_weights, live_workers
        )
        revenue += window_revenue
        committed += commits
        for worker_pos, departs in ops.workers:
            if departs is not None and departs <= ops.start:
                continue
            live_workers.add(worker_pos)
        for task_pos, weight, _ in ops.tasks:
            live_weights[task_pos] = weight
        start = time.perf_counter()
        matcher = DynamicMatcher(epoch.graph, [0.0] * epoch.num_tasks)
        for worker_pos in sorted(live_workers):
            matcher.insert_worker(worker_pos)
        for task_pos in sorted(
            live_weights, key=lambda pos: (-live_weights[pos], pos)
        ):
            matcher.insert_task(task_pos, live_weights[task_pos])
        seconds += time.perf_counter() - start
        basis = tuple(
            sorted(pos for pos in live_weights if matcher.is_task_matched(pos))
        )
        expected_basis, expected_total = trace.bases[index]
        if basis != expected_basis:
            raise AssertionError(
                f"window {index}: re-solved basis diverged from the "
                f"maintained matching ({len(basis)} vs "
                f"{len(expected_basis)} matched tasks)"
            )
        total = repr(matcher.total_weight())
        if total != expected_total:
            raise AssertionError(
                f"window {index}: re-solved total {total} != maintained "
                f"{expected_total}"
            )
    window_revenue, commits = _replay(
        trace.settlements[-1], live_weights, live_workers
    )
    revenue += window_revenue
    committed += commits
    return seconds, revenue, committed


@dataclass
class _IncrementalTotals:
    """Measurements of the index-backed lazy pass (plus its gate's cost)."""

    seconds: float = 0.0
    resolve_seconds: float = 0.0
    revenue: float = 0.0
    committed: int = 0
    windows_checked: int = 0


def _resolve_realised(
    rows_of: Dict[int, List[int]],
    weight_of_slot: Dict[int, float],
    live_workers: set,
) -> Tuple[set, float]:
    """Fresh matroid-greedy re-solve over the realised live rows.

    The incremental pass's per-window gate baseline: tasks in
    ``(-weight, slot)`` priority order, augmenting over each task's
    realised row restricted to the live workers.  Returns the matched
    task-slot basis and the total accumulated in that same priority
    order (the lazy matcher's exact float sequence).
    """
    order = sorted(weight_of_slot, key=lambda slot: (-weight_of_slot[slot], slot))
    match_worker: Dict[int, int] = {}
    for start in order:
        visited: set = set()
        tasks_stack = [start]
        iters = [iter(rows_of[start])]
        chosen: List[Optional[int]] = [None]
        success = False
        while tasks_stack:
            descended = False
            for worker in iters[-1]:
                if worker in visited or worker not in live_workers:
                    continue
                visited.add(worker)
                chosen[-1] = worker
                owner = match_worker.get(worker)
                if owner is None:
                    for task, picked in zip(tasks_stack, chosen):
                        match_worker[picked] = task
                    success = True
                    break
                tasks_stack.append(owner)
                iters.append(iter(rows_of[owner]))
                chosen.append(None)
                descended = True
                break
            if success:
                break
            if not descended:
                tasks_stack.pop()
                iters.pop()
                chosen.pop()
    basis = set(match_worker.values())
    total = 0.0
    for slot in order:
        if slot in basis:
            total += weight_of_slot[slot]
    return basis, total


def _settle_incremental(
    matcher: LazyDynamicMatcher,
    index: IncrementalAdjacencyIndex,
    task_slot: Dict[int, int],
    worker_slot: Dict[int, int],
    worker_pos_of: Dict[int, int],
    rows_of: Dict[int, List[int]],
    weight_of_slot: Dict[int, float],
    deadlines: List[Tuple[float, int]],
    departures: List[Tuple[float, int]],
    bound: float,
) -> Tuple[float, int]:
    """Commit/expire/depart everything due at or before ``bound``.

    Same global time-order rules as :func:`_settle`, but driving the
    lazy matcher and both index planes through the universe-position →
    slot maps.
    """
    revenue = 0.0
    commits = 0
    while deadlines or departures:
        due_deadline = deadlines[0][0] if deadlines else math.inf
        due_departure = departures[0][0] if departures else math.inf
        if min(due_deadline, due_departure) > bound:
            break
        if due_deadline <= due_departure:
            _, task_pos = heapq.heappop(deadlines)
            tslot = task_slot.pop(task_pos, None)
            if tslot is None:
                continue
            if matcher.worker_of(tslot) is not None:
                wslot = matcher.commit_task(tslot)
                index.remove_worker(wslot)
                revenue += weight_of_slot.pop(tslot)
                commits += 1
                del worker_slot[worker_pos_of.pop(wslot)]
            else:
                matcher.remove_task(tslot)
                weight_of_slot.pop(tslot)
            index.remove_task(tslot)
            rows_of.pop(tslot)
        else:
            _, worker_pos = heapq.heappop(departures)
            wslot = worker_slot.pop(worker_pos, None)
            if wslot is None:
                continue
            del worker_pos_of[wslot]
            matcher.remove_worker(wslot)
            index.remove_worker(wslot)
    return revenue, commits


def _run_incremental(
    epoch: _Epoch,
    max_degree: Optional[int],
    totals: _IncrementalTotals,
    trace: Optional[_DeltaTrace] = None,
) -> None:
    """Index-backed lazy pass: no universe pre-scan, live-only state.

    One :class:`LazyDynamicMatcher` whose universe grows one arrival at
    a time, with candidate rows answered per arrival by an
    :class:`IncrementalAdjacencyIndex` over the live population (batched
    per window — the chunked column ingestion the engine paths use).
    Timed: index maintenance + matcher operations, i.e. everything this
    path needs — it never builds the epoch graph the delta pass's
    untimed pre-scan produces.

    Under a degree cap the realised-population cap differs from the
    universe cap (capping does not commute with arrival order), so this
    pass walks its *own* settlement trajectory under the identical
    arrival stream and settlement rules; after every window the matched
    basis and priority-ordered total are asserted bit-identical to a
    fresh matroid re-solve over the realised rows
    (:func:`_resolve_realised`, timed as the ``incremental_rewindow``
    baseline).  Uncapped, the trajectory coincides with the delta pass's
    (checked at test scale).
    """
    index = IncrementalAdjacencyIndex(
        epoch.grid, metric=epoch.metric, max_degree=max_degree, track_tasks=True
    )
    matcher = LazyDynamicMatcher()
    task_slot: Dict[int, int] = {}
    worker_slot: Dict[int, int] = {}
    worker_pos_of: Dict[int, int] = {}
    rows_of: Dict[int, List[int]] = {}
    weight_of_slot: Dict[int, float] = {}
    deadlines: List[Tuple[float, int]] = []
    departures: List[Tuple[float, int]] = []
    for window_at, ops in enumerate(epoch.windows + [None]):
        final = ops is None
        bound = math.inf if final else ops.start
        start = time.perf_counter()
        revenue, commits = _settle_incremental(
            matcher, index, task_slot, worker_slot, worker_pos_of,
            rows_of, weight_of_slot, deadlines, departures, bound,
        )
        if not final:
            arriving = [
                (pos, departs)
                for pos, departs in ops.workers
                if departs is None or departs > ops.start
            ]
            if arriving:
                wpos = np.fromiter(
                    (pos for pos, _ in arriving), np.int64, len(arriving)
                )
                slots = index.insert_workers(
                    epoch.worker_x[wpos],
                    epoch.worker_y[wpos],
                    epoch.worker_radius[wpos],
                )
                task_rows = index.worker_rows(slots)
                for (pos, departs), slot, task_row in zip(
                    arriving, slots.tolist(), task_rows
                ):
                    wid, _ = matcher.new_worker(task_row)
                    if wid != slot:
                        raise RuntimeError(
                            "incremental index and matcher slots diverged"
                        )
                    worker_slot[pos] = slot
                    worker_pos_of[slot] = pos
                    for tslot in task_row:
                        rows_of[tslot].append(slot)
                    if departs is not None:
                        heapq.heappush(departures, (departs, pos))
            if ops.tasks:
                tpos = np.fromiter(
                    (pos for pos, _, _ in ops.tasks), np.int64, len(ops.tasks)
                )
                tx = epoch.task_x[tpos]
                ty = epoch.task_y[tpos]
                slots = index.insert_tasks(tx, ty)
                rows = index.task_rows(tx, ty)
                for (pos, weight, deadline), slot, row in zip(
                    ops.tasks, slots.tolist(), rows
                ):
                    tid, _ = matcher.new_task(row, weight)
                    if tid != slot:
                        raise RuntimeError(
                            "incremental index and matcher slots diverged"
                        )
                    task_slot[pos] = slot
                    rows_of[slot] = list(row)
                    weight_of_slot[slot] = weight
                    heapq.heappush(deadlines, (deadline, pos))
        totals.seconds += time.perf_counter() - start
        totals.revenue += revenue
        totals.committed += commits
        if final:
            break
        resolve_start = time.perf_counter()
        live_workers = set(worker_pos_of)
        basis, total = _resolve_realised(rows_of, weight_of_slot, live_workers)
        totals.resolve_seconds += time.perf_counter() - resolve_start
        maintained = set(matcher.matching())
        if maintained != basis:
            raise AssertionError(
                f"incremental basis diverged from the realised-row re-solve "
                f"({len(maintained)} vs {len(basis)} matched tasks)"
            )
        maintained_total = repr(matcher.total_weight())
        if maintained_total != repr(total):
            raise AssertionError(
                f"incremental total {maintained_total} != re-solved {total!r}"
            )
        totals.windows_checked += 1
        if trace is not None:
            # Uncapped, the realised adjacency is the universe adjacency
            # restricted to the live population, so the maintained state
            # must be bit-identical to the delta pass window by window.
            expected_basis, expected_total = trace.bases[window_at]
            universe_basis = tuple(
                sorted(
                    pos
                    for pos, slot in task_slot.items()
                    if matcher.worker_of(slot) is not None
                )
            )
            if universe_basis != expected_basis:
                raise AssertionError(
                    f"window {window_at}: incremental basis diverged from "
                    f"the delta pass ({len(universe_basis)} vs "
                    f"{len(expected_basis)} matched tasks)"
                )
            if maintained_total != expected_total:
                raise AssertionError(
                    f"window {window_at}: incremental total "
                    f"{maintained_total} != delta {expected_total}"
                )


def measure_dynamic_throughput(
    scale: float = 1.0,
    seed: int = 0,
    window: float = 1.0,
    epochs: Optional[int] = None,
    epoch_periods: int = EPOCH_PERIODS,
    task_lifetime: float = 8.0,
    worker_lifetime: float = 6.0,
    base_price: float = 2.0,
    max_degree: Optional[int] = 16,
    exact_epochs: int = 1,
    exact_epoch_periods: Optional[int] = None,
) -> Dict[str, object]:
    """Measure delta-repair vs per-window re-solve matching throughput.

    Args:
        scale: Horizon scale (1.0 = the ~1M-task horizon); stretches the
            number of epochs while per-window churn density stays fixed.
        seed: Root seed; each epoch derives its own stream seed.
        window: Dispatch window length in period units.
        epochs: Explicit epoch count (overrides ``scale``).
        epoch_periods: Periods per epoch.
        task_lifetime: Mean periods a request stays open (the churn
            knob: per-window turnover is ~``2 / task_lifetime``).
        worker_lifetime: Mean worker shift length in periods.
        base_price: Fixed price; weights are ``distance * base_price``
            (no pricing pipeline — the measurement is matcher-only).
        max_degree: Per-task cap on the universe adjacency (16 nearest
            workers by default — the hot-path cap the degree-capped
            configurations of ``BENCH_matching.json`` run at; both
            passes solve the identical capped graph, so the comparison
            stays exact).  ``None`` uncaps.  Note the caps of the delta
            and incremental passes are *different problems*: the delta
            pass caps each universe row over every worker the epoch ever
            yields (mostly workers never concurrently live), while the
            index-backed pass caps over the workers live at insert time
            — a denser, strictly more useful adjacency, which is why its
            committed revenue runs well above the delta pass's under a
            cap.  Uncapped the two coincide exactly.
        exact_epochs: Epochs of the *exact* (uncapped) head-to-head
            sub-measurement, where both passes provably walk the
            identical trajectory and every window is gated bit-identical
            across them.  The delta pass's universe rows grow with the
            horizon uncapped, so this sub-run is kept short; ``0``
            disables it.
        exact_epoch_periods: Periods per exact-sub-measurement epoch
            (defaults to ``epoch_periods``; shrink it to keep CI-sized
            runs fast — the delta pass's uncapped cost is superlinear in
            the epoch length).

    Returns:
        A JSON-ready payload: all passes' measurements, the speedups
        over the re-solve baseline, the incremental-vs-delta ratios
        (operations-only and end-to-end with the universe pre-scan the
        delta pass needs), churn statistics, the number of windows whose
        bit-identity was asserted, and the ``exact`` sub-measurement.
    """
    if epochs is None:
        epochs = max(1, int(round(FULL_EPOCHS * scale)))
    total_tasks = 0
    total_workers = 0
    num_windows = 0
    rewindow_seconds = 0.0
    rewindow_revenue = 0.0
    rewindow_committed = 0
    trace_totals = _DeltaTrace()
    incremental = _IncrementalTotals()
    universe_build_seconds = 0.0
    live_samples: List[int] = []
    arrivals = 0
    settled = 0
    for epoch_index in range(epochs):
        epoch = _build_epoch(
            seed=derive_seed(seed, "dynamic-bench", epoch_index),
            epoch_periods=epoch_periods,
            window=window,
            task_lifetime=task_lifetime,
            worker_lifetime=worker_lifetime,
            base_price=base_price,
            max_degree=max_degree,
        )
        universe_build_seconds += epoch.universe_build_seconds
        trace = _DeltaTrace()
        _run_delta(epoch, trace)
        _run_incremental(epoch, max_degree, incremental)
        seconds, revenue, committed = _run_rewindow(epoch, trace)
        if repr(revenue) != repr(trace.revenue):
            raise AssertionError(
                f"epoch {epoch_index}: rewindow revenue {revenue!r} != "
                f"delta revenue {trace.revenue!r}"
            )
        total_tasks += epoch.num_tasks
        total_workers += epoch.num_workers
        num_windows += len(epoch.windows)
        rewindow_seconds += seconds
        rewindow_revenue += revenue
        rewindow_committed += committed
        trace_totals.seconds += trace.seconds
        trace_totals.revenue += trace.revenue
        trace_totals.committed += trace.committed
        live_samples.extend(trace.live_task_samples)
        arrivals += sum(len(ops.tasks) for ops in epoch.windows)
        settled += trace.settled_tasks

    # Exact head-to-head: uncapped, the realised adjacency IS the
    # universe adjacency restricted to the live population, so the delta
    # and index-backed passes walk one trajectory and every window gates
    # bit-identical across implementations.  Kept to a short horizon —
    # the delta pass's uncapped universe rows make it quadratically
    # expensive, which is the point being measured.
    exact: Optional[Dict[str, object]] = None
    if exact_epochs > 0:
        exact_delta = _DeltaTrace()
        exact_inc = _IncrementalTotals()
        exact_tasks = 0
        exact_windows = 0
        exact_build_seconds = 0.0
        for epoch_index in range(exact_epochs):
            epoch = _build_epoch(
                seed=derive_seed(seed, "dynamic-bench-exact", epoch_index),
                epoch_periods=(
                    epoch_periods if exact_epoch_periods is None
                    else exact_epoch_periods
                ),
                window=window,
                task_lifetime=task_lifetime,
                worker_lifetime=worker_lifetime,
                base_price=base_price,
                max_degree=None,
            )
            trace = _DeltaTrace()
            _run_delta(epoch, trace)
            epoch_inc = _IncrementalTotals()
            _run_incremental(epoch, None, epoch_inc, trace=trace)
            if repr(epoch_inc.revenue) != repr(trace.revenue):
                raise AssertionError(
                    f"exact epoch {epoch_index}: incremental revenue "
                    f"{epoch_inc.revenue!r} != delta revenue "
                    f"{trace.revenue!r}"
                )
            exact_inc.seconds += epoch_inc.seconds
            exact_inc.resolve_seconds += epoch_inc.resolve_seconds
            exact_inc.revenue += epoch_inc.revenue
            exact_inc.committed += epoch_inc.committed
            exact_inc.windows_checked += epoch_inc.windows_checked
            exact_delta.seconds += trace.seconds
            exact_delta.revenue += trace.revenue
            exact_delta.committed += trace.committed
            exact_tasks += epoch.num_tasks
            exact_windows += len(epoch.windows)
            exact_build_seconds += epoch.universe_build_seconds
        exact = {
            "max_degree": None,
            "epochs": int(exact_epochs),
            "epoch_periods": int(
                epoch_periods if exact_epoch_periods is None
                else exact_epoch_periods
            ),
            "total_tasks": exact_tasks,
            "windows_bit_identical": exact_windows,
            "universe_build_seconds": exact_build_seconds,
            "results": [
                asdict(
                    DynamicBenchPoint(
                        config="delta",
                        seconds=exact_delta.seconds,
                        total_tasks=exact_tasks,
                        tasks_per_second=exact_tasks / exact_delta.seconds,
                        revenue=exact_delta.revenue,
                        committed=exact_delta.committed,
                    )
                ),
                asdict(
                    DynamicBenchPoint(
                        config="incremental",
                        seconds=exact_inc.seconds,
                        total_tasks=exact_tasks,
                        tasks_per_second=exact_tasks / exact_inc.seconds,
                        revenue=exact_inc.revenue,
                        committed=exact_inc.committed,
                    )
                ),
            ],
            "speedup_incremental_vs_delta": exact_delta.seconds / exact_inc.seconds,
            "speedup_incremental_vs_delta_end_to_end": (
                (exact_delta.seconds + exact_build_seconds) / exact_inc.seconds
            ),
        }

    mean_live = sum(live_samples) / len(live_samples) if live_samples else 0.0
    # Turnover fraction: population changes (inserts + settlements) per
    # window relative to the standing population — ~2/task_lifetime, the
    # churn_city docstring's definition (~20-25% at the defaults).
    churn = (
        (arrivals + settled) / (num_windows * mean_live)
        if num_windows and mean_live
        else 0.0
    )
    results = [
        DynamicBenchPoint(
            config="rewindow",
            seconds=rewindow_seconds,
            total_tasks=total_tasks,
            tasks_per_second=total_tasks / rewindow_seconds,
            revenue=rewindow_revenue,
            committed=rewindow_committed,
        ),
        DynamicBenchPoint(
            config="delta",
            seconds=trace_totals.seconds,
            total_tasks=total_tasks,
            tasks_per_second=total_tasks / trace_totals.seconds,
            revenue=trace_totals.revenue,
            committed=trace_totals.committed,
        ),
        DynamicBenchPoint(
            config="incremental_rewindow",
            seconds=incremental.resolve_seconds,
            total_tasks=total_tasks,
            tasks_per_second=total_tasks / incremental.resolve_seconds,
            revenue=incremental.revenue,
            committed=incremental.committed,
        ),
        DynamicBenchPoint(
            config="incremental",
            seconds=incremental.seconds,
            total_tasks=total_tasks,
            tasks_per_second=total_tasks / incremental.seconds,
            revenue=incremental.revenue,
            committed=incremental.committed,
        ),
    ]
    baseline = results[0]
    delta_point = results[1]
    incremental_point = results[3]
    return {
        "benchmark": "dynamic_matching_throughput",
        "host": host_fingerprint(),
        "scenario": "churn_city",
        "scale": float(scale),
        "seed": int(seed),
        "window": float(window),
        "epochs": int(epochs),
        "epoch_periods": int(epoch_periods),
        "task_lifetime": float(task_lifetime),
        "worker_lifetime": float(worker_lifetime),
        "base_price": float(base_price),
        "max_degree": max_degree,
        "total_tasks": total_tasks,
        "total_workers": total_workers,
        "num_windows": num_windows,
        "mean_live_tasks": mean_live,
        "churn_per_window": churn,
        "windows_bit_identical": num_windows,
        "windows_gated_realised": incremental.windows_checked,
        "universe_build_seconds": universe_build_seconds,
        "baseline_config": baseline.config,
        "results": [asdict(point) for point in results],
        "speedup_vs_baseline": {
            point.config: point.tasks_per_second / baseline.tasks_per_second
            for point in results
        },
        # The headline warm-path ratio: matcher-ops only, and end-to-end
        # with the delta pass charged for the universe pre-scan it needs
        # (the incremental pass has no equivalent untimed setup).
        "speedup_incremental_vs_delta": (
            incremental_point.tasks_per_second / delta_point.tasks_per_second
        ),
        "speedup_incremental_vs_delta_end_to_end": (
            (delta_point.seconds + universe_build_seconds)
            / incremental_point.seconds
        ),
        "revenue_ratio_vs_baseline": {
            point.config: (
                point.revenue / baseline.revenue if baseline.revenue else 1.0
            )
            for point in results
        },
        "exact": exact,
    }


__all__ = [
    "EPOCH_PERIODS",
    "FULL_EPOCHS",
    "DynamicBenchPoint",
    "measure_dynamic_throughput",
]
