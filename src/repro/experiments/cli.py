"""Command-line interface for the experiment harness.

Regenerate any figure of the paper's evaluation from a shell::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli --figure fig6-W --scale 0.02
    python -m repro.experiments.cli --figure fig8-real2 --scale 0.005 \
        --strategies MAPS BaseP --metric revenue time

The output is the same plain-text tables the benchmark harness prints
(one row per swept parameter value, one column per strategy, one table per
metric), plus a one-line revenue-winner summary.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.figures import FIGURES, figure_ids, get_figure
from repro.experiments.report import format_table, format_winner_summary
from repro.experiments.sweeps import run_sweep
from repro.pricing.registry import PAPER_STRATEGIES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the SIGMOD'18 dynamic "
        "pricing paper at a configurable scale.",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the available experiment ids and exit"
    )
    parser.add_argument(
        "--figure",
        choices=figure_ids(),
        help="experiment id to run (see --list)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="fraction of the paper-sized workload to generate (default 0.01; "
        "1.0 reproduces the paper's instance sizes)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root random seed for the sweep"
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"strategies to compare (default: {' '.join(PAPER_STRATEGIES)})",
    )
    parser.add_argument(
        "--metrics",
        nargs="+",
        default=["revenue", "time", "memory"],
        choices=["revenue", "time", "total_time", "memory", "served", "accepted"],
        help="metrics to print (default: revenue time memory)",
    )
    parser.add_argument(
        "--values",
        nargs="+",
        default=None,
        help="override the swept parameter values (numbers)",
    )
    parser.add_argument(
        "--no-memory-tracking",
        action="store_true",
        help="disable tracemalloc peak-memory tracking (faster)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-value strategy runs (1 = "
        "sequential, 0 = executor default); results are identical to a "
        "sequential run for the same seed",
    )
    return parser


def _parse_values(raw_values: Optional[Sequence[str]]) -> Optional[List[float]]:
    if raw_values is None:
        return None
    parsed: List[float] = []
    for value in raw_values:
        number = float(value)
        parsed.append(int(number) if number.is_integer() else number)
    return parsed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for figure_id in figure_ids():
            spec = FIGURES[figure_id]
            print(f"{figure_id:12s}  {spec.title}")
        return 0

    if args.figure is None:
        parser.error("--figure is required unless --list is given")

    spec = get_figure(args.figure)
    sweep = spec.build_sweep(
        scale=args.scale,
        strategies=args.strategies,
        values=_parse_values(args.values),
        seed=args.seed,
        track_memory=not args.no_memory_tracking,
    )
    print(f"# {spec.title}")
    print(f"# expectation: {spec.expectation}")
    print(f"# scale = {args.scale}, seed = {args.seed}")
    result = run_sweep(sweep, jobs=args.jobs)
    for metric in args.metrics:
        print()
        print(format_table(result, metric))
    print()
    print(format_winner_summary(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
