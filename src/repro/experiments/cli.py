"""Command-line interface for the experiment harness.

Regenerate any figure of the paper's evaluation, or run any registered
scenario in batch or streaming mode, from a shell::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli --figure fig6-W --scale 0.02
    python -m repro.experiments.cli --figure fig8-real2 --scale 0.005 \
        --strategies MAPS BaseP --metrics revenue time
    python -m repro.experiments.cli --scenario hotspot_burst --streaming \
        --window 0.5 --jobs 4
    python -m repro.experiments.cli --scenario city_scale --scale 0.02 \
        --shards 8 --halo 1 --strategies BaseP

Figure runs print the same plain-text tables the benchmark harness prints
(one row per swept parameter value, one column per strategy, one table per
metric) plus a one-line revenue-winner summary; scenario runs print one
row per strategy.  The ``--help`` epilog enumerates the registered
pricing strategies, matching backends and scenarios straight from their
registries.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.figures import FIGURES, figure_ids, get_figure
from repro.experiments.parallel import (
    ParallelRunner,
    ShardSpec,
    StrategySpec,
    StreamSpec,
)
from repro.experiments.report import format_table, format_winner_summary
from repro.experiments.sweeps import run_sweep
from repro.kernels import (
    KERNEL_MODES,
    active_kernel_mode,
    numba_available,
    numba_version,
    set_kernel_mode,
)
from repro.matching.registry import available_backends
from repro.pricing.registry import available_strategies, calibrated_kwargs
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenarios import available_scenarios, get_scenario
from repro.simulation.sharded import ShardedEngine

# Importing the backend implementations registers them; keep this import
# even though nothing references the module directly.
import repro.matching.weighted  # noqa: F401


def _registry_epilog() -> str:
    """The ``--help`` epilog, sourced from the live registries."""
    numba_state = (
        f"numba {numba_version()} installed"
        if numba_available()
        else "numba not installed; auto falls back to python"
    )
    return "\n".join(
        [
            "registered pricing strategies: " + ", ".join(available_strategies()),
            "registered matching backends:  " + ", ".join(available_backends()),
            "registered scenarios:          " + ", ".join(available_scenarios()),
            "kernel modes (--kernels):      "
            + ", ".join(KERNEL_MODES)
            + f" ({numba_state})",
        ]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the SIGMOD'18 dynamic "
        "pricing paper at a configurable scale, or run a registered scenario "
        "in batch or streaming mode.",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiment ids and scenarios, then exit",
    )
    parser.add_argument(
        "--figure",
        choices=figure_ids(),
        help="experiment id to run (see --list)",
    )
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        help="registered scenario to run (single setting, every strategy)",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="dispatch the scenario through the event-driven streaming "
        "engine instead of the batch engine (requires --scenario)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="streaming dispatch window length in period units (requires "
        "--streaming; default 1.0 = the paper's one-minute period)",
    )
    parser.add_argument(
        "--dynamic",
        action="store_true",
        help="maintain one matching under churn via delta repair "
        "(requires --scenario): with --streaming, dispatch through the "
        "dynamic streaming engine (tasks stay tentatively matched until "
        "their deadline); with --shards, run the halo reconciliation "
        "through the dynamic backend; in plain batch mode, shorthand for "
        "--backend dynamic",
    )
    parser.add_argument(
        "--task-lifetime",
        type=float,
        default=None,
        metavar="T",
        help="periods an accepted task stays open before its tentative "
        "assignment commits or expires (requires --dynamic --streaming; "
        "per-task Task.duration overrides it; default 4.0)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the grid into this many rectangular shards and "
        "dispatch them through the sharded engine (batch --scenario runs "
        "only; 1 reproduces the batch engine bit-for-bit)",
    )
    parser.add_argument(
        "--halo",
        type=int,
        default=None,
        help="width, in grid cells, of the halo-exchange reconciliation "
        "band between shards (requires --shards; default 1, 0 disables "
        "reconciliation)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="fraction of the paper-sized workload to generate (figure "
        "default 0.01; scenario default varies per scenario; 1.0 "
        "reproduces the nominal instance sizes)",
    )
    parser.add_argument(
        "--max-degree",
        type=int,
        default=None,
        metavar="K",
        help="keep only the K nearest workers per task in the bipartite "
        "graph (scenario runs only; speeds dense periods at a small, "
        "bounded revenue cost — see docs/performance.md; default: exact "
        "uncapped graph)",
    )
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help="seed each period's matching from the previous period's "
        "matching restricted to still-present workers (scenario runs "
        "only; each period's matching weight equals a cold solve's — "
        "see docs/performance.md)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="run under cProfile and print the top N cumulative hotspots "
        "after the tables (default N=25; see also tools/profile_run.py)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root random seed for the run"
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"strategies to compare (default: {' '.join(available_strategies())})",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="matroid",
        help="matching backend for the realized matching (default matroid)",
    )
    parser.add_argument(
        "--kernels",
        choices=list(KERNEL_MODES),
        default="auto",
        help="implementation family for the scalar hot loops: auto "
        "(default) uses the numba-compiled kernels when numba is "
        "installed and the bit-identical pure-Python fallback otherwise; "
        "numba requires the compiled kernels; python pins the fallback",
    )
    parser.add_argument(
        "--metrics",
        nargs="+",
        default=None,
        choices=["revenue", "time", "total_time", "memory", "served", "accepted"],
        help="metrics to print in figure mode (default: revenue time "
        "memory); scenario runs always print the full per-strategy table",
    )
    parser.add_argument(
        "--values",
        nargs="+",
        default=None,
        help="override the swept parameter values in figure mode (numbers)",
    )
    parser.add_argument(
        "--no-memory-tracking",
        action="store_true",
        help="disable tracemalloc peak-memory tracking (faster)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-value strategy runs (1 = "
        "sequential, 0 = one per core via os.cpu_count()); results are "
        "identical to a sequential run for the same seed.  Combined with "
        "--shards the shard dispatch stays inside each run's process, so "
        "total process count is --jobs (the runner divides its default "
        "by any per-run shard_jobs fan-out to avoid oversubscription)",
    )
    return parser


def _kernel_banner() -> str:
    """The effective kernel family for run banners, e.g. ``numba (0.60.0)``."""
    mode = active_kernel_mode()
    return f"numba ({numba_version()})" if mode == "numba" else mode


def _parse_values(raw_values: Optional[Sequence[str]]) -> Optional[List[float]]:
    if raw_values is None:
        return None
    parsed: List[float] = []
    for value in raw_values:
        number = float(value)
        parsed.append(int(number) if number.is_integer() else number)
    return parsed


def _run_figure(args: argparse.Namespace) -> int:
    spec = get_figure(args.figure)
    scale = 0.01 if args.scale is None else args.scale
    sweep = spec.build_sweep(
        scale=scale,
        strategies=args.strategies,
        values=_parse_values(args.values),
        seed=args.seed,
        track_memory=not args.no_memory_tracking,
    )
    print(f"# {spec.title}")
    print(f"# expectation: {spec.expectation}")
    print(
        f"# scale = {scale}, seed = {args.seed}, "
        f"kernels = {_kernel_banner()}"
    )
    result = run_sweep(sweep, jobs=args.jobs)
    for metric in args.metrics or ["revenue", "time", "memory"]:
        print()
        print(format_table(result, metric))
    print()
    print(format_winner_summary(result))
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    scale = scenario.default_scale if args.scale is None else args.scale
    window = 1.0 if args.window is None else args.window
    halo = 1 if args.halo is None else args.halo
    # Plain-batch --dynamic is shorthand for the dynamic matching backend
    # (validated upstream: --backend, if given, was matroid or dynamic).
    backend = args.backend
    if args.dynamic and not args.streaming and args.shards is None:
        backend = "dynamic"
    # Sharded runs over a lazily chunked scenario stay chunked end to end:
    # materialising a city-scale horizon is exactly what ChunkedWorkload
    # exists to avoid, and the sharded engine consumes it natively.
    use_chunked = args.shards is not None and hasattr(scenario, "chunked")
    if use_chunked:
        workload = scenario.chunked(scale=scale, seed=args.seed)
    else:
        workload = scenario.bundle(scale=scale, seed=args.seed)
    p_min, p_max = workload.price_bounds

    # Calibrate once (Algorithm 1 probes the same ground-truth acceptance
    # models either mode dispatches against).  Chunked workloads calibrate
    # every grid cell; bundles calibrate the grids that have demand.
    if use_chunked:
        calibration = ShardedEngine(
            workload, num_shards=args.shards, halo=halo, seed=args.seed
        ).calibrate_base_price()
    else:
        calibration = SimulationEngine(workload, seed=args.seed).calibrate_base_price()
    strategies = args.strategies or available_strategies()
    specs = [
        StrategySpec(name, calibrated_kwargs(name, calibration, p_min=p_min, p_max=p_max))
        for name in strategies
    ]
    if args.streaming:
        mode = f"streaming (window={window:g})"
        if args.dynamic:
            lifetime = 4.0 if args.task_lifetime is None else args.task_lifetime
            mode = f"dynamic streaming (window={window:g}, lifetime={lifetime:g})"
    elif args.shards is not None:
        mode = f"sharded (shards={args.shards}, halo={halo})"
        if args.dynamic:
            mode += ", dynamic-halo"
    elif args.dynamic:
        mode = "batch (dynamic backend)"
    else:
        mode = "batch"
    if args.max_degree is not None:
        mode += f", max-degree={args.max_degree}"
    if args.warm_start:
        mode += ", warm-start"
    print(f"# scenario {args.scenario}: {scenario.description}")
    print(f"# workload: {workload.description}")
    print(
        f"# mode = {mode}, scale = {scale:g}, seed = {args.seed}, "
        f"backend = {backend}, kernels = {_kernel_banner()}, "
        f"base price = {calibration.base_price:.3f}"
    )
    if use_chunked:
        # Chunk factories are process-local (unpicklable closures), so the
        # strategies run sequentially through one sharded engine; results
        # are identical to fanned-out runs for the same seed anyway.
        if args.jobs not in (0, 1):
            print("# note: --jobs is ignored for chunked sharded runs")
        engine = ShardedEngine(
            workload,
            num_shards=args.shards,
            halo=halo,
            seed=args.seed,
            matching_backend=backend,
            track_memory=not args.no_memory_tracking,
            max_degree=args.max_degree,
            warm_start=args.warm_start,
            dynamic=args.dynamic,
        )
        results = {
            (spec.key, args.seed): engine.run(spec.build()) for spec in specs
        }
    else:
        runner = ParallelRunner(
            workload=None if args.streaming else workload,
            specs=specs,
            seeds=[args.seed],
            matching_backend=backend,
            max_workers=None if args.jobs <= 0 else args.jobs,
            track_memory=not args.no_memory_tracking,
            stream=(
                StreamSpec(
                    scenario=args.scenario,
                    scale=scale,
                    seed=args.seed,
                    window=window,
                    dynamic=args.dynamic,
                    task_lifetime=args.task_lifetime,
                )
                if args.streaming
                else None
            ),
            shards=(
                ShardSpec(num_shards=args.shards, halo=halo, dynamic=args.dynamic)
                if args.shards is not None
                else None
            ),
            max_degree=args.max_degree,
            warm_start=args.warm_start,
        )
        results = runner.run()
    print()
    print(
        f"{'strategy':>10s} {'revenue':>12s} {'served':>8s} {'accepted':>9s} "
        f"{'accept %':>9s} {'pricing s':>10s} {'matching s':>11s} {'peak MB':>8s}"
    )
    for (name, _seed), result in results.items():
        metrics = result.metrics
        print(
            f"{name:>10s} {metrics.total_revenue:12.1f} {metrics.served_tasks:8d} "
            f"{metrics.accepted_tasks:9d} {100 * metrics.acceptance_rate:9.1f} "
            f"{metrics.pricing_time_seconds:10.3f} {metrics.matching_time_seconds:11.3f} "
            f"{metrics.peak_memory_mb:8.1f}"
        )
    best = max(results.items(), key=lambda item: item[1].metrics.total_revenue)
    print()
    print(f"revenue winner: {best[0][0]} ({best[1].metrics.total_revenue:.1f})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arglist = list(sys.argv[1:] if argv is None else argv)
    # The dispatch-service subcommands live in their own parser so the
    # legacy flag interface stays untouched (see docs/service.md).
    if arglist and arglist[0] in ("serve", "replay"):
        from repro.service.cli import service_main

        return service_main(arglist)
    parser = build_parser()
    args = parser.parse_args(arglist)

    if args.list:
        for figure_id in figure_ids():
            spec = FIGURES[figure_id]
            print(f"{figure_id:12s}  {spec.title}")
        for name in available_scenarios():
            scenario = get_scenario(name)
            modes = "batch+streaming"
            print(f"{name:12s}  [scenario, {modes}] {scenario.description}")
        return 0

    if args.figure is not None and args.scenario is not None:
        parser.error("--figure and --scenario are mutually exclusive")
    if args.streaming and args.scenario is None:
        parser.error("--streaming requires --scenario")
    if args.window is not None and not args.streaming:
        parser.error("--window requires --streaming")
    if args.window is not None and args.window <= 0:
        parser.error("--window must be positive")
    if args.shards is not None and args.scenario is None:
        parser.error("--shards requires --scenario")
    if args.shards is not None and args.streaming:
        parser.error("--shards is batch-mode; drop --streaming")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.halo is not None and args.shards is None:
        parser.error("--halo requires --shards")
    if args.halo is not None and args.halo < 0:
        parser.error("--halo must be non-negative")
    if args.dynamic and args.scenario is None:
        parser.error("--dynamic requires --scenario")
    if args.dynamic and args.streaming:
        if args.backend not in ("matroid", "dynamic"):
            parser.error(
                "--dynamic --streaming maintains the matroid-equivalent "
                "matching; --backend cannot override it"
            )
        if args.warm_start:
            parser.error(
                "--warm-start has no effect with --dynamic --streaming: "
                "the maintained matching is the warm start"
            )
    if args.dynamic and not args.streaming and args.shards is None:
        if args.backend not in ("matroid", "dynamic"):
            parser.error(
                "plain-batch --dynamic is shorthand for --backend dynamic; "
                "drop one of the two flags"
            )
    if args.task_lifetime is not None:
        if not (args.dynamic and args.streaming):
            parser.error("--task-lifetime requires --dynamic --streaming")
        if args.task_lifetime <= 0:
            parser.error("--task-lifetime must be positive")
    if args.scenario is None and args.backend != "matroid":
        parser.error("--backend is only honored with --scenario")
    if args.scenario is not None and args.values is not None:
        parser.error("--values is only honored with --figure")
    if args.scenario is not None and args.metrics is not None:
        parser.error(
            "--metrics is only honored with --figure "
            "(scenario runs print the full per-strategy table)"
        )
    if args.max_degree is not None and args.scenario is None:
        parser.error("--max-degree requires --scenario")
    if args.max_degree is not None and args.max_degree < 1:
        parser.error("--max-degree must be a positive integer")
    if args.warm_start and args.scenario is None:
        parser.error("--warm-start requires --scenario")
    if args.profile is not None and args.profile < 1:
        parser.error("--profile must be a positive integer")
    try:
        set_kernel_mode(args.kernels)
    except RuntimeError as error:  # --kernels numba without numba installed
        parser.error(str(error))

    if args.scenario is not None:
        runner = _run_scenario
    elif args.figure is not None:
        runner = _run_figure
    else:
        parser.error("--figure or --scenario is required unless --list is given")

    if args.profile is None:
        return runner(args)

    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = runner(args)
    finally:
        profiler.disable()
        print()
        print(f"# top {args.profile} hotspots (cumulative time)")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.profile)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
