"""Sharded-engine throughput measurement, shared by bench and tooling.

One measurement protocol feeds two consumers:

* ``benchmarks/test_bench_sharded.py`` — the tier-1 gate asserting that
  8 shards deliver at least the required speedup over the global solve
  (small horizon, CI-sized);
* ``tools/bench_to_json.py`` — the writer that records the full-size
  trajectory point (``BENCH_sharded.json``), so future perf PRs have a
  baseline to be measured against.

The measured quantity is end-to-end system throughput in **tasks per
second**: lazy chunk generation, partitioning, quoting, deciding,
matching and halo reconciliation all count.  The workload is the
``city_scale`` scenario, whose ``scale`` parameter stretches the horizon
while keeping the per-period density fixed — so a short CI run and the
1M-task record exercise the same per-period market.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.host import host_fingerprint
from repro.pricing.registry import create_strategy
from repro.simulation.scenarios import get_scenario
from repro.simulation.sharded import ShardedEngine


@dataclass(frozen=True)
class ShardBenchPoint:
    """One measured configuration of the sharded engine."""

    shards: int
    halo: int
    seconds: float
    total_tasks: int
    tasks_per_second: float
    revenue: float
    served: int


def measure_sharded_throughput(
    scale: float,
    shard_counts: Sequence[int] = (1, 4, 8),
    halo: int = 1,
    seed: int = 0,
    strategy: str = "BaseP",
    base_price: float = 2.0,
    num_periods: Optional[int] = None,
) -> Dict[str, object]:
    """Measure city-scale throughput across shard counts.

    Args:
        scale: ``city_scale`` horizon scale (1.0 = the 1M-task horizon).
        shard_counts: Shard counts to measure, e.g. ``(1, 4, 8)``;
            ``1`` is the global (batch-equivalent) solve.
        halo: Halo band width used for every multi-shard configuration.
        seed: Workload and engine seed.
        strategy: Pricing strategy name (a cheap non-learning strategy
            keeps the measurement matching-dominated).
        base_price: Base price handed to the strategy.
        num_periods: Optional horizon override forwarded to the scenario.

    Returns:
        A JSON-ready payload: the per-configuration measurements plus
        speedup and revenue ratios relative to the single-shard solve.
    """
    scenario = get_scenario("city_scale")
    params = {} if num_periods is None else {"num_periods": num_periods}
    results: List[ShardBenchPoint] = []
    for shards in shard_counts:
        workload = scenario.chunked(scale=scale, seed=seed, **params)
        engine = ShardedEngine(
            workload,
            num_shards=shards,
            halo=halo if shards > 1 else 0,
            seed=seed,
        )
        start = time.perf_counter()
        run = engine.run(create_strategy(strategy, base_price=base_price))
        elapsed = time.perf_counter() - start
        results.append(
            ShardBenchPoint(
                shards=int(shards),
                halo=int(halo if shards > 1 else 0),
                seconds=elapsed,
                total_tasks=run.metrics.total_tasks,
                tasks_per_second=run.metrics.total_tasks / elapsed,
                revenue=run.metrics.total_revenue,
                served=run.metrics.served_tasks,
            )
        )

    baseline = next((point for point in results if point.shards == 1), results[0])
    speedups = {
        str(point.shards): point.tasks_per_second / baseline.tasks_per_second
        for point in results
    }
    revenue_ratios = {
        str(point.shards): (
            point.revenue / baseline.revenue if baseline.revenue else 1.0
        )
        for point in results
    }
    return {
        "benchmark": "sharded_engine_throughput",
        "host": host_fingerprint(),
        "scenario": "city_scale",
        "scale": float(scale),
        "seed": int(seed),
        "strategy": strategy,
        "halo": int(halo),
        "total_tasks": baseline.total_tasks,
        "results": [asdict(point) for point in results],
        "speedup_vs_single_shard": speedups,
        "revenue_ratio_vs_single_shard": revenue_ratios,
    }


__all__ = ["ShardBenchPoint", "measure_sharded_throughput"]
