"""Plain-text reporting of experiment results.

The benchmark harness prints, for every reproduced figure, the same series
the paper plots: one row per parameter value and one column per strategy,
for each of the three metrics.  EXPERIMENTS.md embeds the same tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.sweeps import ExperimentResult

_METRIC_ACCESSORS = {
    "revenue": lambda cell: cell.revenue,
    "time": lambda cell: cell.pricing_time_seconds,
    "total_time": lambda cell: cell.total_time_seconds,
    "memory": lambda cell: cell.peak_memory_mb,
    "served": lambda cell: float(cell.served_tasks),
    "accepted": lambda cell: float(cell.accepted_tasks),
}


def result_to_series(
    result: ExperimentResult, metric: str = "revenue"
) -> Dict[str, List[float]]:
    """Extract ``{strategy: [value per parameter]}`` for one metric."""
    if metric not in _METRIC_ACCESSORS:
        raise ValueError(
            f"unknown metric {metric!r}; available: {', '.join(_METRIC_ACCESSORS)}"
        )
    accessor = _METRIC_ACCESSORS[metric]
    series: Dict[str, List[float]] = {}
    for strategy in result.strategies:
        series[strategy] = [
            accessor(result.cell(value, strategy)) for value in result.parameter_values
        ]
    return series


def format_table(
    result: ExperimentResult,
    metric: str = "revenue",
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render one metric of a sweep as a fixed-width text table."""
    series = result_to_series(result, metric)
    header_cells = [result.parameter_name] + list(result.strategies)
    rows: List[List[str]] = []
    for index, value in enumerate(result.parameter_values):
        row = [str(value)]
        for strategy in result.strategies:
            row.append(f"{series[strategy][index]:.{precision}f}")
        rows.append(row)

    widths = [
        max(len(header_cells[col]), *(len(row[col]) for row in rows))
        for col in range(len(header_cells))
    ]
    lines: List[str] = []
    if title is None:
        title = f"{result.experiment_id} — {metric}"
    lines.append(title)
    lines.append(
        "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(header_cells))
    )
    lines.append("  ".join("-" * widths[col] for col in range(len(header_cells))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    result: ExperimentResult, metrics: Sequence[str] = ("revenue", "time", "memory")
) -> str:
    """Render several metrics of a sweep, separated by blank lines."""
    blocks = [format_table(result, metric) for metric in metrics]
    return "\n\n".join(blocks)


def format_winner_summary(result: ExperimentResult) -> str:
    """One line per parameter value naming the revenue winner."""
    lines = [f"{result.experiment_id}: revenue winners"]
    for value in result.parameter_values:
        winner = result.winner_by_revenue(value)
        revenue = result.cell(value, winner).revenue
        lines.append(f"  {result.parameter_name}={value}: {winner} ({revenue:.2f})")
    return "\n".join(lines)


__all__ = [
    "result_to_series",
    "format_table",
    "format_series",
    "format_winner_summary",
]
