"""End-to-end runtime measurement: the compounded shard × matching × plane.

PR 3 (spatial sharding) and PR 4 (array-native matching) each bought a
multiplier in isolation; the zero-copy columnar runtime exists to make
them *compound*.  This protocol measures exactly that: full end-to-end
``city_scale`` throughput — lazy generation, partitioning, quoting,
deciding, matching, halo reconciliation, feedback — for the compound
configuration ``--shards 8 --max-degree 16`` across three data planes:

* ``pr4-baseline`` — the frozen PR 4 cost model: per-cell scipy
  valuation sampling and object chunks (the generation loop below is a
  verbatim copy of the PR 3/PR 4 ``city_scale`` generator, kept as the
  measurement reference), object-path dispatch, exact ``matroid``
  matching on the capped graph.  Values produced are bit-identical to
  the shipping generator's, so revenue comparisons are apples-to-apples;
* ``columnar`` — the same algorithms over the columnar data plane
  (struct-of-arrays chunks, lazy records, batched valuation sampling);
  **bit-identical revenue** to the baseline by construction;
* ``columnar-vgreedy`` — the columnar plane with the round-based
  ``vgreedy`` matching backend, trading a bounded revenue drift for the
  fastest end-to-end path;
* ``warm-shards`` — the PR 4 data plane with one warm
  per-shard dynamic matcher kept alive across periods
  (``ShardedEngine(warm_shards=True)``: incremental adjacency plane +
  lazy matcher instead of per-period graph builds).  Gated **per
  period** against ``pr4-baseline``: every period's revenue must be
  bit-identical to the cold matroid engine's, so the measured delta is
  pure mechanism cost (see ``docs/performance.md`` for when the
  rebuild still wins).

Two consumers share it: ``benchmarks/test_bench_runtime.py`` (CI smoke
gate at a small horizon — the columnar planes must beat the PR 4
baseline by the required factor at bounded revenue drift) and
``tools/bench_to_json.py --benchmark runtime`` (the full 1M-task
``BENCH_runtime.json`` trajectory point).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.host import host_fingerprint
from repro.kernels import active_kernel_mode, warmup as warmup_kernels
from repro.pricing.registry import create_strategy
from repro.simulation.config import ChunkedWorkload
from repro.simulation.scenarios import get_scenario
from repro.simulation.sharded import ShardedEngine
from repro.market.entities import Task, Worker
from repro.spatial.geometry import Point
from repro.utils.rng import derive_seed

#: Measurement configurations, in presentation order.  Each maps to
#: ``(columnar data plane?, matching backend, warm shards?)``.
RUNTIME_CONFIGS: Dict[str, Tuple[bool, str, bool]] = {
    "pr4-baseline": (False, "matroid", False),
    "columnar": (True, "matroid", False),
    "columnar-vgreedy": (True, "vgreedy", False),
    "warm-shards": (False, "matroid", True),
}


@dataclass(frozen=True)
class RuntimeBenchPoint:
    """One measured end-to-end configuration."""

    config: str
    columnar: bool
    backend: str
    warm_shards: bool
    shards: int
    halo: int
    max_degree: Optional[int]
    seconds: float
    total_tasks: int
    tasks_per_second: float
    revenue: float
    served: int


def _pr4_workload(scale: float, seed: int, **params: object) -> ChunkedWorkload:
    """The ``city_scale`` workload under the frozen PR 4 generation model.

    Reconstructs the scenario's market (same grid, hotspots and
    acceptance models — the setup RNG stream is unchanged) and replays
    the PR 3/PR 4 chunk loop verbatim: one scipy ``truncnorm`` dispatch
    per demanded cell per period and fully materialised ``Task`` /
    ``Worker`` objects.  The produced values are bit-identical to the
    shipping generator's (the batched sampler consumes the same RNG
    stream), so this workload isolates the *cost* of the old data plane
    without changing the market.
    """
    scenario = get_scenario("city_scale")
    # Density overrides must reach BOTH the shipped setup and the replay
    # loop below, or the baseline would measure a different market.
    tasks_per_period = int(params.get("tasks_per_period", scenario.TASKS_PER_PERIOD))
    workers_per_period = int(
        params.get("workers_per_period", scenario.WORKERS_PER_PERIOD)
    )
    shipped = scenario.chunked(scale=scale, seed=seed, **params)
    grid = shipped.grid
    side = scenario.REGION_SIDE
    root_seed = 47 if seed is None else int(seed)

    setup_rng = np.random.default_rng(derive_seed(root_seed, "city-setup"))
    hotspots = [
        Point(
            float(setup_rng.uniform(0.15 * side, 0.85 * side)),
            float(setup_rng.uniform(0.15 * side, 0.85 * side)),
        )
        for _ in range(scenario.NUM_HOTSPOTS)
    ]
    hotspot_xs = np.array([spot.x for spot in hotspots])
    hotspot_ys = np.array([spot.y for spot in hotspots])
    models = {
        cell.index: shipped.acceptance.model_for(cell.index)
        for cell in grid.cells()
    }
    num_periods = shipped.num_periods
    radius = scenario.WORKER_RADIUS
    duration = scenario.WORKER_DURATION

    def _chunks() -> Iterator[tuple]:
        for period in range(num_periods):
            rng = np.random.default_rng(derive_seed(root_seed, "city-period", period))
            num_tasks = int(rng.poisson(tasks_per_period))
            num_workers = int(rng.poisson(workers_per_period))
            spot_choice = rng.integers(len(hotspots), size=num_tasks)
            near_spot = rng.random(num_tasks) < 0.5
            xs = np.where(
                near_spot,
                hotspot_xs[spot_choice] + rng.normal(0.0, 0.12 * side, num_tasks),
                rng.uniform(0.0, side, num_tasks),
            )
            ys = np.where(
                near_spot,
                hotspot_ys[spot_choice] + rng.normal(0.0, 0.12 * side, num_tasks),
                rng.uniform(0.0, side, num_tasks),
            )
            xs = np.clip(xs, 0.0, side)
            ys = np.clip(ys, 0.0, side)
            hops = rng.uniform(0.5, 8.0, num_tasks)
            angles = rng.uniform(0.0, 2.0 * np.pi, num_tasks)
            dest_xs = np.clip(xs + hops * np.cos(angles), 0.0, side)
            dest_ys = np.clip(ys + hops * np.sin(angles), 0.0, side)
            cells = grid.locate_many(xs, ys)
            valuations = np.empty(num_tasks, dtype=np.float64)
            for grid_index in np.unique(cells).tolist():
                positions = np.flatnonzero(cells == grid_index)
                valuations[positions] = models[grid_index].distribution.sample(
                    rng, size=int(positions.size)
                )
            tasks = []
            task_base = period * 10_000_000
            for pos in range(num_tasks):
                tasks.append(
                    Task(
                        task_id=task_base + pos,
                        period=period,
                        origin=Point(float(xs[pos]), float(ys[pos])),
                        destination=Point(float(dest_xs[pos]), float(dest_ys[pos])),
                        valuation=float(valuations[pos]),
                        grid_index=int(cells[pos]),
                    )
                )
            worker_xs = rng.uniform(0.0, side, num_workers)
            worker_ys = rng.uniform(0.0, side, num_workers)
            workers = [
                Worker(
                    worker_id=task_base + pos,
                    period=period,
                    location=Point(float(worker_xs[pos]), float(worker_ys[pos])),
                    radius=radius,
                    duration=duration,
                )
                for pos in range(num_workers)
            ]
            yield tasks, workers

    return ChunkedWorkload(
        grid=grid,
        periods=_chunks,
        num_periods=num_periods,
        acceptance=shipped.acceptance,
        metric=shipped.metric,
        price_bounds=shipped.price_bounds,
        description=f"{shipped.description} [pr4 plane]",
        total_tasks_hint=shipped.total_tasks_hint,
    )


def measure_runtime_throughput(
    scale: float,
    configs: Sequence[str] = tuple(RUNTIME_CONFIGS),
    shards: int = 8,
    halo: int = 1,
    max_degree: Optional[int] = 16,
    seed: int = 0,
    strategy: str = "BaseP",
    base_price: float = 2.0,
    num_periods: Optional[int] = None,
) -> Dict[str, object]:
    """Measure compound end-to-end throughput across data planes.

    Args:
        scale: ``city_scale`` horizon scale (1.0 = the ~1M-task horizon).
        configs: Configuration names from :data:`RUNTIME_CONFIGS`.
        shards: Shard count of the compound configuration.
        halo: Halo band width for boundary reconciliation.
        max_degree: Per-task adjacency cap (the compound default is 16).
        seed: Workload and engine seed.
        strategy: Pricing strategy driving every run.
        base_price: Base price handed to the strategy.
        num_periods: Optional horizon override forwarded to the scenario.

    Returns:
        A JSON-ready payload: per-configuration measurements plus speedup
        and revenue ratios relative to the first configuration.
    """
    unknown = [name for name in configs if name not in RUNTIME_CONFIGS]
    if unknown:
        raise ValueError(
            f"unknown runtime configs {unknown}; choose from {sorted(RUNTIME_CONFIGS)}"
        )
    scenario = get_scenario("city_scale")
    params = {} if num_periods is None else {"num_periods": num_periods}
    # Pay any (cached) JIT compilation before the first timed region.
    warmup_kernels()
    results: List[RuntimeBenchPoint] = []
    periods_by_config: Dict[str, List[float]] = {}
    for name in configs:
        columnar, backend, warm = RUNTIME_CONFIGS[name]
        if columnar:
            workload = scenario.chunked(scale=scale, seed=seed, **params)
        else:
            workload = _pr4_workload(scale, seed, **params)
        engine = ShardedEngine(
            workload,
            num_shards=shards,
            halo=halo if shards > 1 else 0,
            seed=seed,
            matching_backend=backend,
            max_degree=max_degree,
            columnar=columnar,
            warm_shards=warm,
        )
        start = time.perf_counter()
        run = engine.run(create_strategy(strategy, base_price=base_price))
        elapsed = time.perf_counter() - start
        periods_by_config[name] = list(run.metrics.revenue_by_period)
        results.append(
            RuntimeBenchPoint(
                config=name,
                columnar=columnar,
                backend=backend,
                warm_shards=warm,
                shards=int(shards),
                halo=int(halo if shards > 1 else 0),
                max_degree=max_degree,
                seconds=elapsed,
                total_tasks=run.metrics.total_tasks,
                tasks_per_second=run.metrics.total_tasks / elapsed,
                revenue=run.metrics.total_revenue,
                served=run.metrics.served_tasks,
            )
        )

    # Warm-shard gate: the warm engine must walk the cold matroid
    # trajectory bit for bit, every period — against the non-columnar
    # cold reference on the identical workload and backend.
    warm_gate: Optional[Dict[str, object]] = None
    if "warm-shards" in periods_by_config and "pr4-baseline" in periods_by_config:
        warm_periods = periods_by_config["warm-shards"]
        cold_periods = periods_by_config["pr4-baseline"]
        mismatched = [
            period
            for period, (warm_rev, cold_rev) in enumerate(
                zip(warm_periods, cold_periods)
            )
            if repr(warm_rev) != repr(cold_rev)
        ]
        if len(warm_periods) != len(cold_periods) or mismatched:
            raise AssertionError(
                "warm-shards diverged from the cold matroid engine: "
                f"{len(mismatched)} mismatched periods of {len(cold_periods)} "
                f"(first: {mismatched[:3]})"
            )
        warm_gate = {
            "reference": "pr4-baseline",
            "periods_bitwise_equal": len(cold_periods),
            "revenue_bitwise_equal": True,
        }

    baseline = results[0]
    speedups = {
        point.config: point.tasks_per_second / baseline.tasks_per_second
        for point in results
    }
    revenue_ratios = {
        point.config: (point.revenue / baseline.revenue if baseline.revenue else 1.0)
        for point in results
    }
    return {
        "benchmark": "end_to_end_runtime",
        "scenario": "city_scale",
        "scale": float(scale),
        "seed": int(seed),
        "strategy": strategy,
        "shards": int(shards),
        "halo": int(halo),
        "max_degree": max_degree,
        "kernels": active_kernel_mode(),
        "baseline_config": baseline.config,
        "total_tasks": baseline.total_tasks,
        "results": [asdict(point) for point in results],
        "speedup_vs_baseline": speedups,
        "revenue_ratio_vs_baseline": revenue_ratios,
        "warm_gate": warm_gate,
        "host": host_fingerprint(),
    }


def measure_multicore_scaling(
    scale: float,
    core_counts: Sequence[int] = (1, 2, 4, 8),
    shards: int = 8,
    max_degree: Optional[int] = 16,
    seed: int = 0,
    strategy: str = "BaseP",
    base_price: float = 2.0,
    num_periods: Optional[int] = None,
) -> Dict[str, object]:
    """Measure process-per-shard scale-out of the columnar engine.

    Runs the full ``city_scale`` horizon through
    ``ShardedEngine(shard_jobs=n)`` — each shard's horizon in its own
    process over the shared-memory arena, ``halo=0`` (processes cannot
    reconcile boundaries mid-period) — once per entry of ``core_counts``.
    ``shard_jobs=1`` is the sequential in-process reference, so
    ``speedup_vs_1core`` reads as end-to-end multi-core speedup over the
    single-core columnar engine at the same shard partition.

    Revenue must be identical across all core counts: ``city_scale``
    tasks carry private valuations, so per-shard acceptance is
    deterministic and the split horizon merges to the same totals however
    the shards are scheduled.  A mismatch in the returned payload means a
    real bug, not noise.

    ``effective_cores`` records the affinity mask's size so a curve
    measured on a core-restricted host (where counts above the mask
    cannot speed anything up) is self-describing.
    """
    from repro.utils.affinity import effective_cpu_count

    if shards < 2:
        raise ValueError("multi-core scaling needs num_shards >= 2")
    scenario = get_scenario("city_scale")
    params = {} if num_periods is None else {"num_periods": num_periods}
    warmup_kernels()
    results: List[Dict[str, object]] = []
    for jobs in core_counts:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError("core_counts entries must be >= 1")
        workload = scenario.chunked(scale=scale, seed=seed, **params)
        engine = ShardedEngine(
            workload,
            num_shards=shards,
            halo=0,
            seed=seed,
            matching_backend="matroid",
            max_degree=max_degree,
            shard_jobs=jobs,
            columnar=True,
        )
        start = time.perf_counter()
        run = engine.run(create_strategy(strategy, base_price=base_price))
        elapsed = time.perf_counter() - start
        results.append(
            {
                "shard_jobs": jobs,
                "seconds": elapsed,
                "total_tasks": run.metrics.total_tasks,
                "tasks_per_second": run.metrics.total_tasks / elapsed,
                "revenue": run.metrics.total_revenue,
                "served": run.metrics.served_tasks,
            }
        )

    single = results[0]
    speedups = {
        str(point["shard_jobs"]): point["tasks_per_second"]
        / single["tasks_per_second"]
        for point in results
    }
    return {
        "benchmark": "multicore_scaling",
        "scenario": "city_scale",
        "scale": float(scale),
        "seed": int(seed),
        "strategy": strategy,
        "shards": int(shards),
        "halo": 0,
        "max_degree": max_degree,
        "kernels": active_kernel_mode(),
        "effective_cores": effective_cpu_count(),
        "total_tasks": single["total_tasks"],
        "results": results,
        "speedup_vs_1core": speedups,
        "host": host_fingerprint(),
    }


__all__ = [
    "RuntimeBenchPoint",
    "RUNTIME_CONFIGS",
    "measure_runtime_throughput",
    "measure_multicore_scaling",
]
