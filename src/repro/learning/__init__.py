"""Demand-learning substrate: sampling, bandit indices and change detection.

The platform never observes private valuations, only accept/reject
feedback per offered price.  Both pricing strategies of the paper learn
the acceptance ratios from this feedback:

* Base Pricing (Algorithm 1) offers every candidate price on a geometric
  ladder to a Hoeffding-determined number of requesters and keeps the
  sample mean (:mod:`repro.learning.sampling`,
  :mod:`repro.learning.estimator`);
* MAPS scores candidate prices with an upper-confidence-bound index that
  mixes the estimated demand curve with the current supply cap
  (:mod:`repro.learning.ucb`), and flags demand shifts with a binomial
  deviation test (:mod:`repro.learning.change`).
"""

from repro.learning.sampling import (
    hoeffding_sample_size,
    num_candidate_prices,
    price_ladder,
)
from repro.learning.estimator import (
    AcceptanceEstimate,
    GridAcceptanceEstimator,
    PriceStats,
)
from repro.learning.ucb import confidence_radius, ucb_index, ucb_score
from repro.learning.change import BinomialChangeDetector

__all__ = [
    "price_ladder",
    "hoeffding_sample_size",
    "num_candidate_prices",
    "PriceStats",
    "AcceptanceEstimate",
    "GridAcceptanceEstimator",
    "confidence_radius",
    "ucb_score",
    "ucb_index",
    "BinomialChangeDetector",
]
