"""Upper-confidence-bound scoring of candidate prices (Section 4.2.2).

MAPS chooses, for a grid with allocated supply ``n`` and task distances
``d_(1) >= d_(2) >= ...``, the candidate price maximising the index

    I~(p) = min( p * S_hat(p) + c(p) ,  (D / C) * p )

where

* ``c(p) = p * sqrt(2 ln N / N(p))`` is the confidence radius (``N`` the
  total number of requesters seen in the grid, ``N(p)`` the number of
  offers at price ``p``; the radius is defined as 0 when ``N(p) = 0`` is
  impossible — the paper treats an untested price as having an infinite
  radius so it gets explored, and we follow that convention by returning
  ``+inf``);
* ``C = sum_r d_r`` is the demand-curve coefficient and
  ``D = sum_{i<=n} d_(i)`` the supply-curve coefficient, so ``(D/C) p``
  is the supply cap normalised per unit of demand distance.

The index therefore optimistically scores the demand curve while never
exceeding what the allocated supply could deliver.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.learning.estimator import AcceptanceEstimate


def confidence_radius(price: float, total_offers: int, offers_at_price: int) -> float:
    """``c(p) = p * sqrt(2 ln N / N(p))``.

    Returns ``+inf`` when the price has never been offered (forcing
    exploration) and 0 when no offer has been made in the grid at all
    (``N = 0``), matching the paper's remark that the radius is zero when
    ``N(p)`` is zero at initialisation time.
    """
    if price < 0:
        raise ValueError("price must be non-negative")
    if total_offers < 0 or offers_at_price < 0:
        raise ValueError("counts must be non-negative")
    if total_offers == 0:
        return 0.0
    if offers_at_price == 0:
        return math.inf
    return price * math.sqrt(2.0 * math.log(total_offers) / offers_at_price)


def ucb_score(
    estimate: AcceptanceEstimate,
    total_offers: int,
    demand_coefficient: float,
    supply_coefficient: float,
) -> float:
    """The index ``I~(p)`` of one candidate price.

    Args:
        estimate: Snapshot ``(p, S_hat(p), N(p))`` of the price.
        total_offers: ``N`` — total offers observed in the grid.
        demand_coefficient: ``C = sum_r d_r`` (must be positive when the
            grid has tasks; a zero value yields a zero index).
        supply_coefficient: ``D = sum_{i<=n} d_(i)``.

    Returns:
        ``min(p * S_hat(p) + c(p), (D / C) * p)``.
    """
    if demand_coefficient < 0 or supply_coefficient < 0:
        raise ValueError("curve coefficients must be non-negative")
    if demand_coefficient == 0.0:
        return 0.0
    price = estimate.price
    radius = confidence_radius(price, total_offers, estimate.offers)
    optimistic_demand = price * estimate.sample_mean + radius
    supply_cap = (supply_coefficient / demand_coefficient) * price
    return min(optimistic_demand, supply_cap)


def ucb_index(
    estimates: Sequence[AcceptanceEstimate],
    total_offers: int,
    demand_coefficient: float,
    supply_coefficient: float,
    prefer_larger_price: bool = True,
) -> Tuple[float, float]:
    """Choose the candidate price with the maximum UCB index (Algorithm 3).

    Algorithm 3 iterates prices "from big to small" and keeps the first
    strict improvement, which means ties are effectively resolved in favour
    of the larger price; ``prefer_larger_price`` reproduces that behaviour
    (set it to False to prefer the smaller price instead).

    Args:
        estimates: Snapshots of every candidate price.
        total_offers: ``N`` for the grid.
        demand_coefficient: ``C``.
        supply_coefficient: ``D``.
        prefer_larger_price: Tie-breaking direction.

    Returns:
        ``(best_price, best_index_value)``.

    Raises:
        ValueError: if ``estimates`` is empty.
    """
    if not estimates:
        raise ValueError("estimates must be non-empty")
    ordered = sorted(estimates, key=lambda e: e.price, reverse=prefer_larger_price)
    best_price: Optional[float] = None
    best_value = -math.inf
    for estimate in ordered:
        value = ucb_score(estimate, total_offers, demand_coefficient, supply_coefficient)
        if value > best_value + 1e-12:
            best_value = value
            best_price = estimate.price
    assert best_price is not None
    return best_price, best_value


__all__ = ["confidence_radius", "ucb_score", "ucb_index"]
