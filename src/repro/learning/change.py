"""Binomial change detection for acceptance ratios (Section 4.2.2).

Acceptance ratios drift over the day (rush hour vs. late night).  MAPS
flags a change when, for a price whose previous acceptance ratio estimate
is ``S_hat(p)``, the number of acceptances among the latest ``m`` offers
falls outside the two-standard-deviation band

    m * S_hat(p)  +-  2 * sqrt( m * S_hat(p) * (1 - S_hat(p)) )

of the binomial distribution.  When the deviation is statistically
significant, the price's statistics are reset so the UCB index re-explores
it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple


def binomial_deviation_bounds(expected_ratio: float, window: int, z: float = 2.0) -> Tuple[float, float]:
    """Acceptance-count bounds ``m*S +- z*sqrt(m*S*(1-S))`` for ``m`` offers.

    Args:
        expected_ratio: Previously estimated acceptance ratio ``S_hat(p)``.
        window: Number of recent offers ``m``.
        z: Width of the band in standard deviations (the paper uses 2).

    Returns:
        ``(lower, upper)`` bounds on the acceptance count, clipped to
        ``[0, window]``.
    """
    if not 0.0 <= expected_ratio <= 1.0:
        raise ValueError("expected_ratio must lie in [0, 1]")
    if window <= 0:
        raise ValueError("window must be positive")
    if z <= 0:
        raise ValueError("z must be positive")
    mean = window * expected_ratio
    spread = z * math.sqrt(window * expected_ratio * (1.0 - expected_ratio))
    return max(0.0, mean - spread), min(float(window), mean + spread)


@dataclass
class _PriceWindow:
    """Sliding window of recent accept/reject outcomes for one price."""

    outcomes: Deque[bool]
    reference_ratio: Optional[float] = None

    @property
    def acceptances(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome)


class BinomialChangeDetector:
    """Detects statistically-significant shifts of per-price acceptance ratios.

    Args:
        window: Number of most recent offers ``m`` examined per price.
        z: Band width in standard deviations (paper: 2).
        min_observations: Observations required before a reference ratio is
            frozen and deviations can be flagged.  Prevents spurious flags
            when the estimate itself is still noisy.
    """

    def __init__(self, window: int = 50, z: float = 2.0, min_observations: int = 20) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if min_observations <= 0:
            raise ValueError("min_observations must be positive")
        self.window = int(window)
        self.z = float(z)
        self.min_observations = int(min_observations)
        self._windows: Dict[float, _PriceWindow] = {}

    # ------------------------------------------------------------------
    # recording & detection
    # ------------------------------------------------------------------
    def observe(self, price: float, accepted: bool) -> bool:
        """Record one observation; return True when a change is flagged.

        When a change is flagged the internal window for the price is
        cleared and its reference ratio forgotten, so the detector starts
        re-learning the post-change behaviour (callers should also reset
        the corresponding :class:`~repro.learning.estimator.PriceStats`).
        """
        state = self._windows.setdefault(
            float(price), _PriceWindow(outcomes=deque(maxlen=self.window))
        )
        state.outcomes.append(bool(accepted))

        if state.reference_ratio is None:
            if len(state.outcomes) >= self.min_observations:
                state.reference_ratio = state.acceptances / len(state.outcomes)
            return False

        if len(state.outcomes) < self.window:
            return False

        lower, upper = binomial_deviation_bounds(
            state.reference_ratio, len(state.outcomes), self.z
        )
        count = state.acceptances
        if count < lower - 1e-9 or count > upper + 1e-9:
            self.reset_price(price)
            return True
        return False

    def reference_ratio(self, price: float) -> Optional[float]:
        state = self._windows.get(float(price))
        return state.reference_ratio if state else None

    def reset_price(self, price: float) -> None:
        """Forget everything recorded for a price."""
        self._windows.pop(float(price), None)

    def reset(self) -> None:
        self._windows.clear()


__all__ = ["BinomialChangeDetector", "binomial_deviation_bounds"]
