"""Candidate price ladders and Hoeffding sample sizes (Algorithm 1).

Base pricing samples acceptance ratios on a geometric ladder of candidate
prices ``p_min, (1+alpha) p_min, (1+alpha)^2 p_min, ..., <= p_max``.  The
number of candidates is ``k = ceil(ln(p_max/p_min) / ln(1+alpha))`` and
each price ``p`` is offered to

    h(p) = ceil( (2 p^2 / eps^2) * ln(2k / delta) )

requesters, which by the Hoeffding inequality makes the estimated revenue
curve point ``p * S_hat(p)`` accurate to ``eps/2`` with probability at
least ``1 - delta/k`` (Theorem 2's proof).
"""

from __future__ import annotations

import math
from typing import List


def num_candidate_prices(p_min: float, p_max: float, alpha: float) -> int:
    """``k = ceil(ln(p_max / p_min) / ln(1 + alpha))`` (Algorithm 1, line 1).

    Returns at least 1 so that degenerate intervals still test ``p_min``.
    """
    _validate_ladder_args(p_min, p_max, alpha)
    if p_max <= p_min:
        return 1
    return max(1, math.ceil(math.log(p_max / p_min) / math.log(1.0 + alpha)))


def price_ladder(p_min: float, p_max: float, alpha: float) -> List[float]:
    """The geometric candidate price ladder of Algorithm 1.

    Starts at ``p_min`` and multiplies by ``(1 + alpha)`` while the price
    does not exceed ``p_max`` (matching the ``while p <= p_max`` loop in
    the pseudo-code).  For the paper's Example 4 (``p_min=1, p_max=5,
    alpha=0.5``) this yields ``[1, 1.5, 2.25, 3.375]`` and a fifth price
    ``5.0625`` would exceed ``p_max`` and is excluded.

    Returns:
        The list of candidate prices in increasing order (never empty).
    """
    _validate_ladder_args(p_min, p_max, alpha)
    ladder: List[float] = []
    price = float(p_min)
    # Guard against pathological float issues with a generous iteration cap.
    max_iterations = 10_000
    while price <= p_max * (1.0 + 1e-12) and len(ladder) < max_iterations:
        ladder.append(price)
        price *= 1.0 + alpha
    if not ladder:
        ladder.append(float(p_min))
    return ladder


def hoeffding_sample_size(price: float, epsilon: float, k: int, delta: float) -> int:
    """``h(p) = ceil( (2 p^2 / eps^2) ln(2k / delta) )`` (Algorithm 1, line 5).

    Args:
        price: Candidate price ``p`` being tested.
        epsilon: Target accuracy of the revenue-curve estimate.
        k: Number of candidate prices on the ladder.
        delta: Overall failure probability budget.

    Returns:
        The number of requesters to offer the price to (at least 1).
    """
    if price <= 0:
        raise ValueError("price must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    return max(1, math.ceil((2.0 * price * price / (epsilon * epsilon)) * math.log(2.0 * k / delta)))


def recommended_epsilon(p_min: float, alpha: float, min_acceptance: float) -> float:
    """The paper's suggested accuracy ``eps = alpha * p_min * min_p S(p)``.

    Section 3.3 argues this choice is small enough to separate two
    successive ladder prices, so the sampling recovers the best ladder
    price with probability ``1 - delta``.

    Args:
        p_min: Smallest candidate price.
        alpha: Ladder multiplier parameter.
        min_acceptance: A lower bound on the acceptance ratio over the
            candidate prices (clipped away from zero to keep the sample
            size finite).
    """
    if p_min <= 0 or alpha <= 0:
        raise ValueError("p_min and alpha must be positive")
    floor = max(1e-3, float(min_acceptance))
    return alpha * p_min * floor


def _validate_ladder_args(p_min: float, p_max: float, alpha: float) -> None:
    if p_min <= 0:
        raise ValueError("p_min must be positive")
    if p_max < p_min:
        raise ValueError("p_max must be at least p_min")
    if alpha <= 0:
        raise ValueError("alpha must be positive")


__all__ = [
    "num_candidate_prices",
    "price_ladder",
    "hoeffding_sample_size",
    "recommended_epsilon",
]
