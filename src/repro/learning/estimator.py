"""Per-grid, per-price acceptance-ratio statistics.

Both Base Pricing and MAPS keep, for every grid ``g`` and candidate price
``p``, the number of times ``p`` was offered (``N(p)``) and the number of
acceptances, giving the sample mean ``S_hat(p)``.  MAPS additionally needs
the total number of requesters observed in the grid (``N``) for its UCB
confidence radius and must be able to reset a price's statistics when the
change detector flags a demand shift.

:class:`GridAcceptanceEstimator` owns those counters for one grid;
:class:`PriceStats` is the per-price record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class PriceStats:
    """Offer/acceptance counters for a single candidate price."""

    price: float
    offers: int = 0
    acceptances: int = 0

    def record(self, accepted: bool, count: int = 1) -> None:
        """Record ``count`` offers with the same outcome."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.offers += count
        if accepted:
            self.acceptances += count

    def record_batch(self, offers: int, acceptances: int) -> None:
        """Record a batch of offers with ``acceptances`` positive outcomes."""
        if offers < 0 or acceptances < 0 or acceptances > offers:
            raise ValueError("need 0 <= acceptances <= offers")
        self.offers += offers
        self.acceptances += acceptances

    @property
    def sample_mean(self) -> float:
        """``S_hat(p)``; defined as 0 before any observation."""
        if self.offers == 0:
            return 0.0
        return self.acceptances / self.offers

    def reset(self) -> None:
        self.offers = 0
        self.acceptances = 0


@dataclass(frozen=True)
class AcceptanceEstimate:
    """A read-only snapshot ``(price, S_hat(p), N(p))`` used by Algorithm 3."""

    price: float
    sample_mean: float
    offers: int


class GridAcceptanceEstimator:
    """Acceptance-ratio estimator for one grid over a fixed price ladder.

    Args:
        grid_index: 1-based grid index (for bookkeeping / error messages).
        candidate_prices: The price ladder shared by all grids.

    The estimator is deliberately ignorant of *how* prices are chosen; it
    only stores observations and exposes snapshots.  Base Pricing drives
    it with a fixed sampling plan, MAPS with UCB-selected prices.
    """

    def __init__(self, grid_index: int, candidate_prices: Sequence[float]) -> None:
        if not candidate_prices:
            raise ValueError("candidate_prices must be non-empty")
        self.grid_index = int(grid_index)
        self._stats: Dict[float, PriceStats] = {
            float(price): PriceStats(price=float(price)) for price in candidate_prices
        }
        # The ladder is fixed at construction; cache it sorted once so the
        # batched snapshot below never re-sorts dict keys.
        self._ladder: List[PriceStats] = [
            self._stats[price] for price in sorted(self._stats)
        ]
        self._version = 0
        self._table_version = -1
        self._table: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, int]] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, price: float, accepted: bool, count: int = 1) -> None:
        """Record an accept/reject observation at a ladder price."""
        self._stats_for(price).record(accepted, count)
        self._version += 1

    def record_batch(self, price: float, offers: int, acceptances: int) -> None:
        self._stats_for(price).record_batch(offers, acceptances)
        self._version += 1

    def reset_price(self, price: float) -> None:
        """Forget the history of one price (after a detected demand change)."""
        self._stats_for(price).reset()
        self._version += 1

    def reset_all(self) -> None:
        for stats in self._stats.values():
            stats.reset()
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def candidate_prices(self) -> List[float]:
        return sorted(self._stats.keys())

    @property
    def total_offers(self) -> int:
        """``N`` — the total number of price offers observed in the grid."""
        return sum(stats.offers for stats in self._stats.values())

    def offers_at(self, price: float) -> int:
        """``N(p)`` for a ladder price."""
        return self._stats_for(price).offers

    def sample_mean(self, price: float) -> float:
        """``S_hat(p)`` for a ladder price."""
        return self._stats_for(price).sample_mean

    def snapshot(self, price: float) -> AcceptanceEstimate:
        stats = self._stats_for(price)
        return AcceptanceEstimate(
            price=stats.price, sample_mean=stats.sample_mean, offers=stats.offers
        )

    def snapshots(self) -> List[AcceptanceEstimate]:
        """Snapshots for every ladder price, in increasing price order."""
        return [self.snapshot(price) for price in self.candidate_prices]

    def snapshot_table(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Batched snapshot ``(prices, sample_means, offers, N)``, ascending.

        The array view the vectorised MAPS planner reads: one call per
        grid per planning round replaces one :class:`AcceptanceEstimate`
        list per maximizer invocation.  Cached until the next recorded
        observation (the estimator tracks a version counter), so repeated
        planning against unchanged statistics is free.  Sample means are
        computed exactly as :attr:`PriceStats.sample_mean` does.
        """
        if self._table is None or self._table_version != self._version:
            count = len(self._ladder)
            prices = np.fromiter(
                (stats.price for stats in self._ladder), dtype=np.float64, count=count
            )
            offers = np.fromiter(
                (stats.offers for stats in self._ladder), dtype=np.float64, count=count
            )
            means = np.fromiter(
                (stats.sample_mean for stats in self._ladder),
                dtype=np.float64,
                count=count,
            )
            total = int(offers.sum())
            self._table = (prices, means, offers, total)
            self._table_version = self._version
        return self._table

    def best_revenue_price(self) -> Tuple[float, float]:
        """``argmax_p p * S_hat(p)`` with ties broken towards smaller prices.

        This is line 9 of Algorithm 1 (the estimated Myerson reserve price
        of the grid).  Returns ``(price, estimated revenue curve value)``.
        """
        best_price: Optional[float] = None
        best_value = -1.0
        for price in self.candidate_prices:
            value = price * self.sample_mean(price)
            if value > best_value + 1e-12:
                best_value = value
                best_price = price
        assert best_price is not None
        return best_price, best_value

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stats_for(self, price: float) -> PriceStats:
        key = float(price)
        if key not in self._stats:
            # Tolerate tiny float drift from repeated multiplication.
            for candidate in self._stats:
                if abs(candidate - key) <= 1e-9 * max(1.0, abs(candidate)):
                    return self._stats[candidate]
            raise KeyError(
                f"price {price} is not on the ladder of grid {self.grid_index}; "
                f"candidates are {self.candidate_prices}"
            )
        return self._stats[key]


__all__ = ["PriceStats", "AcceptanceEstimate", "GridAcceptanceEstimator"]
