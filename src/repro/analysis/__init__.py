"""Empirical verification of the paper's theoretical claims.

The paper proves several guarantees (Theorems 2-5, 8 and 10, Lemma 9).
This subpackage provides utilities that *measure* those guarantees on
concrete instances, which the test suite and the ablation benchmarks use:

* :mod:`repro.analysis.guarantees` — approximation-ratio measurement of a
  price vector against the brute-force GDP optimum on small instances,
  submodularity / diminishing-returns checks of the supply-allocation
  objective, and the UCB regret of a learned price sequence.
"""

from repro.analysis.guarantees import (
    approximation_ratio,
    diminishing_returns_violations,
    empirical_regret,
    is_submodular_on_chain,
)

__all__ = [
    "approximation_ratio",
    "is_submodular_on_chain",
    "diminishing_returns_violations",
    "empirical_regret",
]
