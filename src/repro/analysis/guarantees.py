"""Measuring the paper's guarantees on concrete instances.

These helpers turn the paper's theorems into executable checks:

* Theorem 8 / 10 promise that MAPS achieves a ``(1 - 1/e)`` fraction of the
  optimal approximate revenue (modulo an additive concentration term).
  :func:`approximation_ratio` measures the ratio of a strategy's expected
  revenue against the brute-force GDP optimum on instances small enough to
  enumerate.
* The greedy heap allocation is justified by the submodularity /
  diminishing-returns structure of the supply objective (Lemma 9);
  :func:`is_submodular_on_chain` and :func:`diminishing_returns_violations`
  check that structure numerically for a grid market.
* The UCB analysis (Theorem 5) bounds how often a sub-optimal ladder price
  is chosen; :func:`empirical_regret` computes the realised revenue regret
  of a price sequence against the best fixed ladder price in hindsight.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.gdp import GDPInstance
from repro.market.curves import GridMarket
from repro.matching.possible_worlds import optimal_prices_by_enumeration


def approximation_ratio(
    gdp: GDPInstance,
    grid_prices: Mapping[int, float],
    candidate_prices: Sequence[float],
) -> Tuple[float, float, float]:
    """Ratio of a price vector's expected revenue to the brute-force optimum.

    The optimum enumerates every per-task price combination over
    ``candidate_prices`` (exponential — only use on instances with a
    handful of tasks), which upper-bounds the per-grid-constrained optimum,
    so the returned ratio is conservative.

    Args:
        gdp: The problem instance with ground-truth acceptance models.
        grid_prices: The price vector to evaluate (per grid).
        candidate_prices: The finite price set for the brute-force optimum.

    Returns:
        ``(ratio, achieved, optimum)`` where ``ratio = achieved / optimum``
        (defined as 1.0 when the optimum is zero).
    """
    achieved = gdp.expected_total_revenue(grid_prices, method="exact")

    def ratio_of(task_position: int, price: float) -> float:
        task = gdp.instance.tasks[task_position]
        return gdp.acceptance.acceptance_ratio(task.grid_index, price)

    _, optimum = optimal_prices_by_enumeration(
        gdp.instance.graph, list(candidate_prices), ratio_of
    )
    if optimum <= 0.0:
        return 1.0, achieved, optimum
    return achieved / optimum, achieved, optimum


def is_submodular_on_chain(
    market: GridMarket, candidate_prices: Sequence[float], max_supply: Optional[int] = None
) -> bool:
    """Check diminishing returns of ``max_p L^g(n, p)`` along the supply chain.

    Lemma 9 states the marginal gains are non-increasing in the supply
    level; this is the chain (total-order) special case of submodularity
    that the greedy heap relies on.

    Returns:
        True if no violation (beyond a small numerical tolerance) is found.
    """
    return diminishing_returns_violations(market, candidate_prices, max_supply) == 0


def diminishing_returns_violations(
    market: GridMarket,
    candidate_prices: Sequence[float],
    max_supply: Optional[int] = None,
    tolerance: float = 1e-9,
) -> int:
    """Count the supply levels at which the marginal gain increases.

    A strictly positive count means the discrete candidate ladder broke the
    diminishing-returns structure at some point (possible when the ladder
    is very coarse); MAPS still works but the (1 - 1/e) guarantee of the
    lazy greedy no longer formally applies there.
    """
    limit = max_supply if max_supply is not None else market.num_tasks + 1
    gains: List[float] = []
    for supply in range(limit + 1):
        _, delta = market.marginal_gain(supply, candidate_prices)
        gains.append(delta)
    violations = 0
    for earlier, later in zip(gains, gains[1:]):
        if later > earlier + tolerance:
            violations += 1
    return violations


def empirical_regret(
    chosen_prices: Sequence[float],
    acceptance_ratio: Callable[[float], float],
    candidate_prices: Sequence[float],
) -> Tuple[float, float]:
    """Revenue regret of a price sequence against the best fixed price.

    For a single local market with unlimited supply, the expected
    per-offer revenue of quoting ``p`` is ``p * S(p)``.  The regret of a
    sequence of quoted prices is the gap to always quoting the best ladder
    price — the quantity the UCB analysis (Theorem 5) keeps logarithmic.

    Args:
        chosen_prices: The prices quoted over time (one per offer).
        acceptance_ratio: The true acceptance ratio ``S(p)``.
        candidate_prices: The ladder the learner chooses from.

    Returns:
        ``(total_regret, per_round_regret)``.
    """
    if not chosen_prices:
        return 0.0, 0.0
    best_value = max(p * acceptance_ratio(p) for p in candidate_prices)
    total = 0.0
    for price in chosen_prices:
        total += best_value - price * acceptance_ratio(price)
    return total, total / len(chosen_prices)


__all__ = [
    "approximation_ratio",
    "is_submodular_on_chain",
    "diminishing_returns_violations",
    "empirical_regret",
]
