"""Core market entities: spatial tasks and crowd workers.

These are deliberately small, immutable records.  All behaviour (pricing,
matching, acceptance) lives in the algorithms that consume them, which
keeps the entities serialisable and easy to generate in bulk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.spatial.geometry import DistanceMetric, Point, resolve_metric


@dataclass(frozen=True)
class Task:
    """A spatial task ``r = <t, ori_r, des_r>`` issued by a requester.

    Attributes:
        task_id: Unique identifier of the task (and of its requester; the
            paper uses ``r`` for both).
        period: Time period ``t`` at which the task is issued.
        origin: Pick-up / start location ``ori_r``.
        destination: Drop-off / end location ``des_r``.
        distance: Travel distance ``d_r`` from origin to destination.  The
            platform earns ``d_r * p`` when the task is served at unit
            price ``p``.  If not given, it is computed with ``metric``.
        valuation: The requester's private valuation ``v_r`` (maximum unit
            price he/she accepts).  Hidden from the platform; carried on
            the record so the simulator can answer price offers.  ``None``
            for tasks whose acceptance is governed by an external
            :class:`~repro.market.acceptance.AcceptanceModel`.
        grid_index: Cached 1-based index of the grid cell containing the
            origin (filled in by the workload generator / simulator).
        duration: How long (in period units) the request stays open before
            the requester gives up, counted from arrival.  ``None`` defers
            to the consuming engine's default lifetime; only the dynamic
            streaming engine interprets this — the batch engines resolve
            every task within its arrival period.
    """

    task_id: int
    period: int
    origin: Point
    destination: Point
    distance: float = -1.0
    valuation: Optional[float] = None
    grid_index: Optional[int] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.distance < 0:
            object.__setattr__(
                self, "distance", self.origin.distance_to(self.destination)
            )
        if self.distance < 0:
            raise ValueError("task distance must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("task duration must be positive when given")

    def with_grid(self, grid_index: int) -> "Task":
        """Return a copy annotated with the origin's grid cell index."""
        return replace(self, grid_index=grid_index)

    def with_valuation(self, valuation: float) -> "Task":
        """Return a copy with the private valuation set."""
        return replace(self, valuation=float(valuation))

    def accepts(self, unit_price: float) -> bool:
        """Whether the requester accepts ``unit_price``.

        The paper defines acceptance as ``p <= v_r`` (the requester accepts
        any price not exceeding the private valuation).

        Raises:
            ValueError: if the task has no valuation attached.
        """
        if self.valuation is None:
            raise ValueError(
                f"task {self.task_id} has no private valuation; "
                "use an AcceptanceModel to decide acceptance"
            )
        return unit_price <= self.valuation

    def revenue_at(self, unit_price: float) -> float:
        """Platform revenue ``d_r * p`` if this task is served at ``p``."""
        return self.distance * unit_price


@dataclass(frozen=True)
class Worker:
    """A crowd worker ``w = <t, l_w, a_w>``.

    Attributes:
        worker_id: Unique identifier.
        period: Time period from which the worker is available.
        location: Initial location ``l_w``.
        radius: Service radius ``a_w`` of the range constraint: the worker
            can serve a task only if the task's origin is within ``radius``
            of ``location``.
        duration: Number of consecutive periods the worker stays available
            (the real-data experiments vary this as ``delta_w``). ``None``
            means the worker remains available until matched.
    """

    worker_id: int
    period: int
    location: Point
    radius: float
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("worker radius must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("worker duration must be positive when given")

    def can_serve(
        self, task: Task, metric: Union[str, DistanceMetric] = "euclidean"
    ) -> bool:
        """Range constraint check: ``dist(ori_r, l_w) <= a_w``."""
        distance = resolve_metric(metric)(self.location, task.origin)
        return distance <= self.radius

    def available_in(self, period: int) -> bool:
        """Whether the worker is available during ``period``."""
        if period < self.period:
            return False
        if self.duration is None:
            return True
        return period < self.period + self.duration

    def relocated(self, new_location: Point, period: Optional[int] = None) -> "Worker":
        """Return a copy of this worker at a new location (after a trip)."""
        return replace(
            self,
            location=new_location,
            period=self.period if period is None else period,
        )


__all__ = ["Task", "Worker"]
