"""Private-valuation (demand) distributions.

The paper assumes private valuations ``v_r`` in a grid are i.i.d. samples
from an unknown distribution with a monotone hazard rate (MHR), so that
the revenue curve ``p * S(p)`` with ``S(p) = 1 - F(p)`` is unimodal and
the Myerson reserve price ``p_m = argmax_p p * S(p)`` is its unique
maximiser (Section 3.1.1).  The synthetic experiments draw valuations from
a normal distribution truncated to ``[1, 5]`` with the mean swept in
``{1.0, ..., 3.0}`` and the standard deviation in ``{0.5, ..., 2.5}``;
Appendix D repeats the experiment with an exponential distribution.

Every distribution exposes:

* ``cdf(p)`` — ``F(p) = Pr[v <= p]``;
* ``acceptance_ratio(p)`` — ``S(p) = Pr[v > p]`` (Definition 3);
* ``revenue_curve(p)`` — ``p * S(p)``;
* ``sample(rng, size)`` — draw valuations;
* ``myerson_reserve_price(...)`` — numeric maximiser of the revenue curve,
  used by tests and by the oracle pricing strategy.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.utils.rng import RandomState


class ValuationDistribution(ABC):
    """Interface of a private-valuation distribution on ``[lower, upper]``."""

    #: Inclusive support bounds; ``math.inf`` allowed for the upper bound.
    lower: float = 0.0
    upper: float = math.inf

    # ------------------------------------------------------------------
    # distribution interface
    # ------------------------------------------------------------------
    @abstractmethod
    def cdf(self, price: float) -> float:
        """``F(p) = Pr[v <= p]``."""

    @abstractmethod
    def sample(self, rng: RandomState, size: int = 1) -> np.ndarray:
        """Draw ``size`` valuations."""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def acceptance_ratio(self, price: float) -> float:
        """``S(p) = Pr[v > p] = 1 - F(p)`` (Definition 3)."""
        return max(0.0, min(1.0, 1.0 - self.cdf(price)))

    def revenue_curve(self, price: float) -> float:
        """Expected per-unit-distance revenue ``p * S(p)`` at price ``p``."""
        if price < 0:
            raise ValueError("price must be non-negative")
        return price * self.acceptance_ratio(price)

    def myerson_reserve_price(
        self,
        price_range: Optional[Tuple[float, float]] = None,
        resolution: int = 4096,
    ) -> float:
        """Numerically maximise ``p * S(p)`` over ``price_range``.

        Args:
            price_range: Search interval; defaults to the distribution's
                support (capped for unbounded supports).
            resolution: Number of evenly spaced candidate prices.

        Returns:
            The price that maximises ``p * S(p)`` on the grid; for MHR
            distributions this converges to the Myerson reserve price as
            ``resolution`` grows.
        """
        if price_range is None:
            upper = self.upper if math.isfinite(self.upper) else max(10.0, self.lower * 10 + 10.0)
            price_range = (max(self.lower, 1e-9), upper)
        low, high = price_range
        if high <= low:
            raise ValueError("price_range must have positive width")
        prices = np.linspace(low, high, int(resolution))
        revenues = np.array([self.revenue_curve(float(p)) for p in prices])
        return float(prices[int(np.argmax(revenues))])

    def is_mhr(self, price_range: Optional[Tuple[float, float]] = None, resolution: int = 512) -> bool:
        """Numerically check the monotone-hazard-rate property.

        Evaluates the hazard rate ``f(p) / (1 - F(p))`` on a grid (with the
        density estimated by central differences of the CDF) and checks it
        is non-decreasing up to a small tolerance.  Used by tests to verify
        that the shipped distributions satisfy the paper's assumption.
        """
        if price_range is None:
            upper = self.upper if math.isfinite(self.upper) else self.lower + 10.0
            price_range = (self.lower, upper)
        low, high = price_range
        prices = np.linspace(low + 1e-6, high - 1e-6, resolution)
        step = (high - low) / (resolution * 8)
        hazards = []
        for p in prices:
            survival = 1.0 - self.cdf(float(p))
            if survival <= 1e-9:
                break
            density = (self.cdf(float(p + step)) - self.cdf(float(p - step))) / (2 * step)
            hazards.append(density / survival)
        hazards_arr = np.array(hazards)
        if len(hazards_arr) < 3:
            return True
        diffs = np.diff(hazards_arr)
        tolerance = 1e-6 + 1e-3 * np.abs(hazards_arr[:-1])
        return bool(np.all(diffs >= -tolerance))


class TruncatedNormalValuation(ValuationDistribution):
    """Normal valuations conditioned on an interval (the paper's default).

    The synthetic experiments draw ``v_r`` from ``Normal(mu, sigma)``
    restricted to ``[1, 5]``, i.e. a conditional (truncated) distribution.

    Args:
        mean: Mean of the underlying normal distribution (the paper sweeps
            1.0–3.0).
        std: Standard deviation (the paper sweeps 0.5–2.5).
        lower: Lower truncation bound (paper: 1).
        upper: Upper truncation bound (paper: 5).
    """

    def __init__(self, mean: float, std: float, lower: float = 1.0, upper: float = 5.0) -> None:
        if std <= 0:
            raise ValueError("std must be positive")
        if upper <= lower:
            raise ValueError("upper must exceed lower")
        self.mean = float(mean)
        self.std = float(std)
        self.lower = float(lower)
        self.upper = float(upper)
        a = (self.lower - self.mean) / self.std
        b = (self.upper - self.mean) / self.std
        self._dist = stats.truncnorm(a, b, loc=self.mean, scale=self.std)

    def cdf(self, price: float) -> float:
        if price < self.lower:
            return 0.0
        if price >= self.upper:
            return 1.0
        return float(self._dist.cdf(price))

    def sample(self, rng: RandomState, size: int = 1) -> np.ndarray:
        return np.asarray(self._dist.rvs(size=size, random_state=rng), dtype=float)

    def __repr__(self) -> str:
        return (
            f"TruncatedNormalValuation(mean={self.mean}, std={self.std}, "
            f"lower={self.lower}, upper={self.upper})"
        )


class ExponentialValuation(ValuationDistribution):
    """Exponentially distributed valuations (Appendix D), optionally truncated.

    Args:
        rate: Rate parameter ``alpha`` (the appendix sweeps 0.5–1.5).
        shift: Lower bound of the support (valuations below it never occur).
        upper: Optional truncation upper bound; ``None`` keeps the full tail.
    """

    def __init__(self, rate: float, shift: float = 1.0, upper: Optional[float] = 5.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.shift = float(shift)
        self.lower = self.shift
        self.upper = float(upper) if upper is not None else math.inf
        if math.isfinite(self.upper) and self.upper <= self.lower:
            raise ValueError("upper must exceed shift")
        # Mass of the untruncated exponential inside [shift, upper].
        if math.isfinite(self.upper):
            self._norm = 1.0 - math.exp(-self.rate * (self.upper - self.shift))
        else:
            self._norm = 1.0

    def cdf(self, price: float) -> float:
        if price < self.lower:
            return 0.0
        if price >= self.upper:
            return 1.0
        raw = 1.0 - math.exp(-self.rate * (price - self.shift))
        return raw / self._norm

    def sample(self, rng: RandomState, size: int = 1) -> np.ndarray:
        # Inverse-transform sampling of the truncated exponential.
        u = rng.random(size)
        values = self.shift - np.log(1.0 - u * self._norm) / self.rate
        return np.asarray(values, dtype=float)

    def __repr__(self) -> str:
        return f"ExponentialValuation(rate={self.rate}, shift={self.shift}, upper={self.upper})"


class UniformValuation(ValuationDistribution):
    """Uniform valuations on ``[lower, upper]`` (an MHR distribution).

    With uniform valuations the Myerson reserve price has the closed form
    ``max(lower, upper / 2)``, which makes this distribution convenient for
    exact assertions in tests.
    """

    def __init__(self, lower: float = 1.0, upper: float = 5.0) -> None:
        if upper <= lower:
            raise ValueError("upper must exceed lower")
        self.lower = float(lower)
        self.upper = float(upper)

    def cdf(self, price: float) -> float:
        if price < self.lower:
            return 0.0
        if price >= self.upper:
            return 1.0
        return (price - self.lower) / (self.upper - self.lower)

    def sample(self, rng: RandomState, size: int = 1) -> np.ndarray:
        return rng.uniform(self.lower, self.upper, size=size)

    def exact_myerson_reserve_price(self) -> float:
        """Closed-form maximiser of ``p (upper - p)/(upper - lower)`` on the support."""
        unconstrained = self.upper / 2.0
        return min(self.upper, max(self.lower, unconstrained))

    def __repr__(self) -> str:
        return f"UniformValuation(lower={self.lower}, upper={self.upper})"


class EmpiricalValuationDistribution(ValuationDistribution):
    """A distribution backed by observed valuation samples.

    The Beijing-style experiments cannot observe exact valuations, only the
    accept/reject outcome against historical prices; the taxi trace
    generator reconstructs censored valuations and wraps them in this
    class so the same pricing machinery applies.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        values = np.sort(np.asarray(list(samples), dtype=float))
        if values.size == 0:
            raise ValueError("samples must be non-empty")
        self._values = values
        self.lower = float(values[0])
        self.upper = float(values[-1])

    def cdf(self, price: float) -> float:
        return float(np.searchsorted(self._values, price, side="right")) / self._values.size

    def sample(self, rng: RandomState, size: int = 1) -> np.ndarray:
        return rng.choice(self._values, size=size, replace=True)

    @property
    def num_samples(self) -> int:
        return int(self._values.size)

    def __repr__(self) -> str:
        return f"EmpiricalValuationDistribution(n={self._values.size})"


__all__ = [
    "ValuationDistribution",
    "TruncatedNormalValuation",
    "ExponentialValuation",
    "UniformValuation",
    "EmpiricalValuationDistribution",
]
