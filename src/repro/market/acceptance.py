"""Acceptance behaviour of requesters.

The platform never observes private valuations; it only observes, per
offered price, whether the requester accepted.  For the algorithms we
therefore need two views of the same phenomenon:

* the *ground-truth* view used by the simulator, which knows the per-grid
  valuation distribution (or an explicit acceptance table as in the
  running example's Table 1) and answers price offers; and
* the *estimated* view used by the pricing strategies, which learn
  acceptance ratios from observations (see :mod:`repro.learning`).

This module implements the ground-truth view as :class:`AcceptanceModel`
implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.market.entities import Task
from repro.market.valuation import ValuationDistribution
from repro.utils.rng import RandomState, bernoulli


class AcceptanceModel(ABC):
    """Ground-truth acceptance behaviour of the requesters in one grid."""

    @abstractmethod
    def acceptance_ratio(self, price: float) -> float:
        """True acceptance probability ``S(p)`` for a price ``p``."""

    @abstractmethod
    def sample_valuation(self, rng: RandomState) -> float:
        """Draw one private valuation ``v_r``."""

    def decide(self, task: Task, price: float, rng: RandomState) -> bool:
        """Whether the requester of ``task`` accepts ``price``.

        If the task carries a private valuation the decision is the
        deterministic comparison ``price <= v_r``; otherwise a Bernoulli
        draw with probability ``S(price)`` is used.
        """
        if task.valuation is not None:
            return task.accepts(price)
        return bernoulli(rng, self.acceptance_ratio(price))

    def assign_valuations(self, tasks: Sequence[Task], rng: RandomState) -> list:
        """Return copies of ``tasks`` with freshly sampled valuations."""
        return [task.with_valuation(self.sample_valuation(rng)) for task in tasks]


class DistributionAcceptanceModel(AcceptanceModel):
    """Acceptance driven by a :class:`ValuationDistribution`.

    This is the model used in all synthetic experiments: the per-grid
    distribution is a truncated normal (or exponential in Appendix D) and
    ``S(p) = 1 - F(p)``.
    """

    def __init__(self, distribution: ValuationDistribution) -> None:
        self._distribution = distribution

    @property
    def distribution(self) -> ValuationDistribution:
        return self._distribution

    def acceptance_ratio(self, price: float) -> float:
        return self._distribution.acceptance_ratio(price)

    def sample_valuation(self, rng: RandomState) -> float:
        return float(self._distribution.sample(rng, size=1)[0])

    def __repr__(self) -> str:
        return f"DistributionAcceptanceModel({self._distribution!r})"


class TabularAcceptanceModel(AcceptanceModel):
    """Acceptance ratios given explicitly at a few price points.

    This reproduces Table 1 of the paper (``S(1)=0.9, S(2)=0.8, S(3)=0.5``)
    for the running example and is also handy in unit tests.  Prices
    between table entries are interpolated linearly; prices below the
    smallest entry use its ratio, prices above the largest entry use the
    largest entry's ratio (so the table is a step-wise conservative model
    rather than dropping to zero, matching how Example 3 evaluates the
    prices {3, 3, 2}).

    Valuation sampling inverts the implied CDF, so a task population drawn
    from this model reproduces the tabulated acceptance frequencies.
    """

    def __init__(self, table: Mapping[float, float]) -> None:
        if not table:
            raise ValueError("acceptance table must be non-empty")
        items = sorted((float(p), float(s)) for p, s in table.items())
        for price, ratio in items:
            if price < 0:
                raise ValueError("prices must be non-negative")
            if not 0.0 <= ratio <= 1.0:
                raise ValueError("acceptance ratios must lie in [0, 1]")
        ratios = [s for _, s in items]
        if any(b > a + 1e-12 for a, b in zip(ratios, ratios[1:])):
            raise ValueError("acceptance ratios must be non-increasing in price")
        self._prices = np.array([p for p, _ in items])
        self._ratios = np.array(ratios)

    def acceptance_ratio(self, price: float) -> float:
        if price <= self._prices[0]:
            return float(self._ratios[0])
        if price >= self._prices[-1]:
            return float(self._ratios[-1])
        return float(np.interp(price, self._prices, self._ratios))

    def sample_valuation(self, rng: RandomState) -> float:
        """Sample a valuation consistent with the table.

        We draw ``u ~ Uniform(0, 1)`` and return the largest tabulated
        price ``p`` with ``S(p) > u`` (the requester accepts every price up
        to that point).  If even the smallest price would be rejected we
        return half the smallest price, representing a requester that
        rejects all tabulated prices.
        """
        u = rng.random()
        accepted = self._prices[self._ratios > u]
        if accepted.size == 0:
            return float(self._prices[0]) / 2.0
        return float(accepted[-1])

    @property
    def prices(self) -> np.ndarray:
        return self._prices.copy()

    @property
    def ratios(self) -> np.ndarray:
        return self._ratios.copy()

    def __repr__(self) -> str:
        pairs = ", ".join(f"{p:g}: {s:g}" for p, s in zip(self._prices, self._ratios))
        return f"TabularAcceptanceModel({{{pairs}}})"


class PerGridAcceptance:
    """Convenience container mapping grid index -> acceptance model.

    Falls back to a default model for grids without an explicit entry,
    which matches the synthetic generator where every grid shares the
    same family of distributions but possibly different parameters.
    """

    def __init__(
        self,
        models: Optional[Dict[int, AcceptanceModel]] = None,
        default: Optional[AcceptanceModel] = None,
    ) -> None:
        self._models: Dict[int, AcceptanceModel] = dict(models or {})
        self._default = default
        if not self._models and self._default is None:
            raise ValueError("provide at least one model or a default")

    def model_for(self, grid_index: int) -> AcceptanceModel:
        model = self._models.get(grid_index, self._default)
        if model is None:
            raise KeyError(f"no acceptance model for grid {grid_index} and no default")
        return model

    def acceptance_ratio(self, grid_index: int, price: float) -> float:
        return self.model_for(grid_index).acceptance_ratio(price)

    def acceptance_ratios(
        self, grid_indices: Sequence[int], prices: Sequence[float]
    ) -> np.ndarray:
        """Vectorised ``S^g(p)`` for parallel grid/price arrays.

        Quoted prices are per *grid*, so a period's ``(grid, price)``
        pairs collapse to a handful of unique combinations; this batches
        the lookup into one scalar :meth:`acceptance_ratio` call per
        unique pair (bit-identical per element, since the same scalar
        function produces every value) instead of one per task.
        """
        grids = np.asarray(grid_indices, dtype=np.int64)
        price_arr = np.asarray(prices, dtype=np.float64)
        if grids.shape != price_arr.shape or grids.ndim != 1:
            raise ValueError("grid_indices and prices must be 1-D and equal length")
        if not grids.size:
            return np.zeros(0, dtype=np.float64)
        pairs = np.stack([grids.astype(np.float64), price_arr], axis=1)
        unique_pairs, inverse = np.unique(pairs, axis=0, return_inverse=True)
        ratios = np.fromiter(
            (
                self.acceptance_ratio(int(pair[0]), float(pair[1]))
                for pair in unique_pairs
            ),
            dtype=np.float64,
            count=unique_pairs.shape[0],
        )
        return ratios[inverse.reshape(-1)]

    def set_model(self, grid_index: int, model: AcceptanceModel) -> None:
        self._models[grid_index] = model

    def grids(self) -> Sequence[int]:
        return tuple(self._models.keys())


__all__ = [
    "AcceptanceModel",
    "DistributionAcceptanceModel",
    "TabularAcceptanceModel",
    "PerGridAcceptance",
]
