"""Market substrate: tasks, workers, valuations and acceptance behaviour.

This subpackage models the economic side of the GDP problem:

* :mod:`repro.market.entities` — the :class:`Task` (spatial task issued by
  a requester, Definition 2) and :class:`Worker` (Definition 4) records
  used throughout the library;
* :mod:`repro.market.valuation` — demand (private-valuation) distributions
  with the monotone-hazard-rate property the paper assumes: truncated
  normal, exponential, uniform, plus empirical distributions; all expose
  the acceptance ratio ``S(p) = Pr[v > p]`` and the revenue curve
  ``p * S(p)`` together with the exact Myerson reserve price for testing;
* :mod:`repro.market.acceptance` — per-grid acceptance behaviour of
  requesters: draw private valuations, answer price offers, and a tabular
  acceptance model used for the paper's running example (Table 1);
* :mod:`repro.market.curves` — the demand and supply curves of Eq. (1)
  and the ``L^g(n, p)`` approximation of the per-grid expected revenue.
"""

from repro.market.entities import Task, Worker
from repro.market.valuation import (
    EmpiricalValuationDistribution,
    ExponentialValuation,
    TruncatedNormalValuation,
    UniformValuation,
    ValuationDistribution,
)
from repro.market.acceptance import (
    AcceptanceModel,
    DistributionAcceptanceModel,
    TabularAcceptanceModel,
)
from repro.market.curves import (
    GridMarket,
    demand_curve_value,
    revenue_approximation,
    supply_curve_value,
)

__all__ = [
    "Task",
    "Worker",
    "ValuationDistribution",
    "TruncatedNormalValuation",
    "ExponentialValuation",
    "UniformValuation",
    "EmpiricalValuationDistribution",
    "AcceptanceModel",
    "DistributionAcceptanceModel",
    "TabularAcceptanceModel",
    "GridMarket",
    "demand_curve_value",
    "supply_curve_value",
    "revenue_approximation",
]
