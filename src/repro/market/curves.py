"""Demand and supply curves and the per-grid revenue approximation (Eq. 1).

MAPS approximates the expected revenue of grid ``g`` in period ``t`` as

    L^g(n, p) = min(  sum_{r in R^{tg}} d_r * p * S^g(p) ,   # demand curve
                      sum_{i=1..n} d_{(i)} * p )             # supply curve

where ``d_{(1)} >= d_{(2)} >= ...`` are the task distances of the grid in
non-increasing order and ``n`` is the number of workers (supply) allocated
to the grid.  The demand curve is the expected revenue with unlimited
supply; the supply curve caps it by the revenue the allocated ``n``
workers could generate at most (serving the ``n`` longest tasks).

:class:`GridMarket` bundles the per-grid task distances with an acceptance
ratio callable and provides the marginal-gain computation ``delta`` used by
the MAPS heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

AcceptanceRatioFn = Callable[[float], float]


def demand_curve_value(distances: Sequence[float], price: float, acceptance_ratio: float) -> float:
    """Value of the demand curve ``sum_r d_r * p * S(p)`` at ``price``.

    Args:
        distances: Travel distances of the grid's tasks (any order).
        price: Unit price ``p``.
        acceptance_ratio: ``S(p)`` at that price.
    """
    if price < 0:
        raise ValueError("price must be non-negative")
    if not 0.0 <= acceptance_ratio <= 1.0 + 1e-9:
        raise ValueError("acceptance ratio must lie in [0, 1]")
    return float(sum(distances)) * price * acceptance_ratio


def supply_curve_value(sorted_distances: Sequence[float], supply: int, price: float) -> float:
    """Value of the supply curve ``sum_{i<=n} d_(i) * p`` at ``price``.

    Args:
        sorted_distances: Task distances sorted in non-increasing order.
        supply: Number of workers ``n`` allocated to the grid.
        price: Unit price ``p``.
    """
    if supply < 0:
        raise ValueError("supply must be non-negative")
    if price < 0:
        raise ValueError("price must be non-negative")
    top = sorted_distances[: min(supply, len(sorted_distances))]
    return float(sum(top)) * price


def revenue_approximation(
    distances: Sequence[float],
    supply: int,
    price: float,
    acceptance_ratio: float,
) -> float:
    """The paper's Eq. (1): ``L^g(n, p) = min(demand curve, supply curve)``."""
    sorted_distances = sorted((float(d) for d in distances), reverse=True)
    demand = demand_curve_value(sorted_distances, price, acceptance_ratio)
    supply_cap = supply_curve_value(sorted_distances, supply, price)
    return min(demand, supply_cap)


@dataclass
class GridMarket:
    """The local market of one grid cell in one time period.

    Attributes:
        grid_index: 1-based grid cell index.
        distances: Travel distances of the tasks whose origin is in the
            grid; stored sorted in non-increasing order.
        acceptance_ratio: Callable returning the (true or estimated)
            acceptance ratio ``S^g(p)`` for a price.
    """

    grid_index: int
    distances: List[float] = field(default_factory=list)
    acceptance_ratio: AcceptanceRatioFn = lambda price: 1.0

    def __post_init__(self) -> None:
        self.distances = sorted((float(d) for d in self.distances), reverse=True)
        if any(d < 0 for d in self.distances):
            raise ValueError("task distances must be non-negative")

    # ------------------------------------------------------------------
    # basic quantities
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """``|R^{tg}|`` — the demand of the local market."""
        return len(self.distances)

    @property
    def total_distance(self) -> float:
        """``C = sum_r d_r`` (the demand-curve coefficient of Alg. 3)."""
        return float(sum(self.distances))

    def top_distance_sum(self, supply: int) -> float:
        """``D = sum_{i<=n} d_(i)`` (the supply-curve coefficient of Alg. 3)."""
        if supply < 0:
            raise ValueError("supply must be non-negative")
        return float(sum(self.distances[: min(supply, len(self.distances))]))

    # ------------------------------------------------------------------
    # Eq. (1) and its optimisation
    # ------------------------------------------------------------------
    def expected_revenue(self, supply: int, price: float) -> float:
        """``L^g(n, p)`` with the market's own acceptance ratio."""
        ratio = max(0.0, min(1.0, self.acceptance_ratio(price)))
        return revenue_approximation(self.distances, supply, price, ratio)

    def best_price(self, supply: int, candidate_prices: Sequence[float]) -> Tuple[float, float]:
        """Maximise ``L^g(supply, p)`` over explicit candidate prices.

        Returns:
            ``(best_price, best_value)``.  Ties are broken towards the
            smaller price, as in the paper (a smaller price means a higher
            acceptance ratio, hence a more reliable revenue).
        """
        if not candidate_prices:
            raise ValueError("candidate_prices must be non-empty")
        best_price: Optional[float] = None
        best_value = -np.inf
        for price in sorted(candidate_prices):
            value = self.expected_revenue(supply, price)
            if value > best_value + 1e-12:
                best_value = value
                best_price = price
        assert best_price is not None
        return float(best_price), float(best_value)

    def marginal_gain(
        self, current_supply: int, candidate_prices: Sequence[float]
    ) -> Tuple[float, float]:
        """Gain in ``max_p L^g(n, p)`` from raising supply ``n`` by one.

        Returns:
            ``(new_best_price, delta)`` where ``delta`` is the increase of
            the optimised Eq. (1) when the supply grows from
            ``current_supply`` to ``current_supply + 1``.  The paper's
            Lemma 9 shows this sequence of deltas is non-increasing, which
            is what makes the greedy heap allocation near-optimal.
        """
        if current_supply < 0:
            raise ValueError("current_supply must be non-negative")
        _, old_value = (
            self.best_price(current_supply, candidate_prices)
            if current_supply > 0
            else (0.0, 0.0)
        )
        new_price, new_value = self.best_price(current_supply + 1, candidate_prices)
        return new_price, max(0.0, new_value - old_value)

    def saturated(self, supply: int) -> bool:
        """Whether additional supply can no longer increase Eq. (1)."""
        return supply >= self.num_tasks


__all__ = [
    "GridMarket",
    "demand_curve_value",
    "supply_curve_value",
    "revenue_approximation",
]
