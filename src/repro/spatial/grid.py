"""Grid partitioning of the region of interest (Definition 1 of the paper).

The platform quotes one unit price per grid cell per time period.  The
paper indexes cells "from the bottom-left" (Example 2: with a 8x8 region
and cell side 2, worker ``w3`` at ``(5, 3)`` is in grid 7 and requests at
``(1, 5)`` / ``(2, 6)`` fall into grid 9), i.e. row-major order starting
at 1 from the bottom-left corner.  :class:`Grid` reproduces exactly that
indexing (1-based) while also exposing 0-based ``(row, col)`` coordinates
for internal use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.spatial.geometry import BoundingBox, Point


@dataclass(frozen=True)
class GridCell:
    """A single rectangular cell of the partition.

    Attributes:
        index: 1-based index following the paper's bottom-left, row-major
            numbering.
        row: 0-based row (0 = bottom row).
        col: 0-based column (0 = leftmost column).
        box: The cell's bounding box in region coordinates.
    """

    index: int
    row: int
    col: int
    box: BoundingBox

    @property
    def center(self) -> Point:
        return self.box.center


class Grid:
    """A uniform rectangular grid over a bounding box.

    Args:
        region: The bounding box of the region of interest.
        rows: Number of rows (along the y axis).
        cols: Number of columns (along the x axis).

    The paper writes ``G = rows x cols`` for the total number of cells
    (e.g. ``G = 10 x 10`` in the synthetic default and ``G = 10 x 8 = 80``
    for the Beijing data).
    """

    def __init__(self, region: BoundingBox, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self._region = region
        self._rows = int(rows)
        self._cols = int(cols)
        self._cell_width = region.width / self._cols
        self._cell_height = region.height / self._rows
        if self._cell_width <= 0 or self._cell_height <= 0:
            raise ValueError("region must have positive extent")
        self._cells: List[GridCell] = []
        for row in range(self._rows):
            for col in range(self._cols):
                index = row * self._cols + col + 1
                box = BoundingBox(
                    region.min_x + col * self._cell_width,
                    region.min_y + row * self._cell_height,
                    region.min_x + (col + 1) * self._cell_width,
                    region.min_y + (row + 1) * self._cell_height,
                )
                self._cells.append(GridCell(index=index, row=row, col=col, box=box))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def square(cls, side: float, cells_per_side: int) -> "Grid":
        """A square region of side ``side`` split into ``n x n`` cells."""
        return cls(BoundingBox.square(side), cells_per_side, cells_per_side)

    @classmethod
    def from_cell_count(cls, region: BoundingBox, num_cells: int) -> "Grid":
        """Create an (approximately) square grid with ``num_cells`` cells.

        ``num_cells`` must be a perfect square (the paper sweeps
        G in {25, 100, 225, 400, 625}, all perfect squares).
        """
        side = int(round(num_cells ** 0.5))
        if side * side != num_cells:
            raise ValueError(f"num_cells={num_cells} is not a perfect square")
        return cls(region, side, side)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def region(self) -> BoundingBox:
        return self._region

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def num_cells(self) -> int:
        """The paper's ``G``."""
        return self._rows * self._cols

    @property
    def cell_width(self) -> float:
        return self._cell_width

    @property
    def cell_height(self) -> float:
        return self._cell_height

    def __len__(self) -> int:
        return self.num_cells

    def __iter__(self) -> Iterator[GridCell]:
        return iter(self._cells)

    def cells(self) -> Sequence[GridCell]:
        return tuple(self._cells)

    def cell(self, index: int) -> GridCell:
        """Return the cell with 1-based ``index``.

        Raises:
            IndexError: if ``index`` is outside ``[1, G]``.
        """
        if not 1 <= index <= self.num_cells:
            raise IndexError(f"grid index {index} outside [1, {self.num_cells}]")
        return self._cells[index - 1]

    # ------------------------------------------------------------------
    # point -> cell mapping
    # ------------------------------------------------------------------
    def locate(self, point: Point) -> int:
        """Return the 1-based index of the cell containing ``point``.

        Points on the shared edge of two cells belong to the cell with the
        larger coordinates (half-open cells), except on the region's outer
        maximum boundary which maps to the last row/column.  Points outside
        the region are clamped onto it, which mirrors how real platforms
        bucket slightly out-of-range GPS fixes.
        """
        clamped = self._region.clamp(point)
        col = int((clamped.x - self._region.min_x) / self._cell_width)
        row = int((clamped.y - self._region.min_y) / self._cell_height)
        col = min(col, self._cols - 1)
        row = min(row, self._rows - 1)
        return row * self._cols + col + 1

    def locate_many(self, xs: Sequence[float], ys: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`locate` for coordinate arrays.

        Args:
            xs: x coordinates of the points.
            ys: y coordinates of the points (same length).

        Returns:
            ``int64`` array of 1-based cell indices, elementwise equal to
            calling :meth:`locate` on each point (clamping onto the region
            and half-open cell assignment included).
        """
        x = np.clip(np.asarray(xs, dtype=float), self._region.min_x, self._region.max_x)
        y = np.clip(np.asarray(ys, dtype=float), self._region.min_y, self._region.max_y)
        if x.shape != y.shape:
            raise ValueError("xs and ys must have the same length")
        # After clamping the offsets are non-negative, so truncation towards
        # zero (what ``locate`` does with int()) equals floor.
        col = ((x - self._region.min_x) / self._cell_width).astype(np.int64)
        row = ((y - self._region.min_y) / self._cell_height).astype(np.int64)
        np.minimum(col, self._cols - 1, out=col)
        np.minimum(row, self._rows - 1, out=row)
        return row * self._cols + col + 1

    def locate_cell(self, point: Point) -> GridCell:
        """Return the :class:`GridCell` containing ``point``."""
        return self.cell(self.locate(point))

    def contains(self, point: Point) -> bool:
        return self._region.contains(point)

    # ------------------------------------------------------------------
    # neighbourhood queries
    # ------------------------------------------------------------------
    def neighbors(self, index: int, diagonal: bool = True) -> List[int]:
        """Return the indices of cells adjacent to ``index``.

        Args:
            index: 1-based cell index.
            diagonal: Include the 4 diagonal neighbours (8-neighbourhood)
                when True, otherwise only the 4-neighbourhood.
        """
        cell = self.cell(index)
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        result = []
        for dr, dc in offsets:
            row, col = cell.row + dr, cell.col + dc
            if 0 <= row < self._rows and 0 <= col < self._cols:
                result.append(row * self._cols + col + 1)
        return result

    def cells_intersecting_circle(self, center: Point, radius: float) -> List[int]:
        """Indices of cells whose rectangle intersects the given disc.

        Used by the spatial index to restrict candidate cells when building
        the task–worker bipartite graph under the range constraint.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        min_col = int((center.x - radius - self._region.min_x) / self._cell_width)
        max_col = int((center.x + radius - self._region.min_x) / self._cell_width)
        min_row = int((center.y - radius - self._region.min_y) / self._cell_height)
        max_row = int((center.y + radius - self._region.min_y) / self._cell_height)
        min_col = max(0, min_col)
        min_row = max(0, min_row)
        max_col = min(self._cols - 1, max_col)
        max_row = min(self._rows - 1, max_row)
        result = []
        for row in range(min_row, max_row + 1):
            for col in range(min_col, max_col + 1):
                index = row * self._cols + col + 1
                if self._cells[index - 1].box.intersects_circle(center, radius):
                    result.append(index)
        return result

    # ------------------------------------------------------------------
    # aggregation helpers
    # ------------------------------------------------------------------
    def group_by_cell(self, points: Iterable[Tuple[object, Point]]) -> Dict[int, List[object]]:
        """Group labelled points by the cell containing them.

        Args:
            points: Iterable of ``(label, point)`` pairs.

        Returns:
            Mapping from 1-based cell index to the list of labels whose
            point falls in that cell.  Cells without points are omitted.
        """
        buckets: Dict[int, List[object]] = {}
        for label, point in points:
            buckets.setdefault(self.locate(point), []).append(label)
        return buckets


class GridTiling:
    """A rectangular tiling of a grid's cells into ``num_shards`` shards.

    The sharded engine partitions the city into contiguous rectangular
    regions so most task–worker edges stay shard-local: ``num_shards`` is
    factored into ``shard_rows x shard_cols`` bands (the feasible pair
    whose shards are closest to square in cell units), and every grid cell
    belongs to exactly one shard.  Shards are numbered row-major from the
    bottom-left, mirroring the paper's cell numbering.

    Args:
        grid: The grid whose cells are tiled.
        num_shards: Number of shards (``>= 1``).  Must admit a
            factorisation ``a x b = num_shards`` with ``a <= grid.rows``
            and ``b <= grid.cols`` so every shard owns at least one full
            row band and column band of cells.

    Raises:
        ValueError: if no such factorisation exists.
    """

    def __init__(self, grid: Grid, num_shards: int) -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._grid = grid
        self._num_shards = num_shards
        self._shard_rows, self._shard_cols = self._choose_bands(
            grid.rows, grid.cols, num_shards
        )
        # 0-based shard id per 0-based cell position (index - 1), row-major.
        row_band = np.arange(grid.rows, dtype=np.int64) * self._shard_rows // grid.rows
        col_band = np.arange(grid.cols, dtype=np.int64) * self._shard_cols // grid.cols
        self._cell_shards = (
            row_band[:, None] * self._shard_cols + col_band[None, :]
        ).reshape(-1)

    @staticmethod
    def _choose_bands(rows: int, cols: int, num_shards: int) -> Tuple[int, int]:
        """Pick the feasible ``(shard_rows, shard_cols)`` factor pair.

        Among all factorisations that fit the grid, prefer the one whose
        shards are closest to square in cell units (ties go to the fewer
        row bands, keeping the choice deterministic).
        """
        best: Optional[Tuple[float, int, int]] = None
        for a in range(1, num_shards + 1):
            if num_shards % a:
                continue
            b = num_shards // a
            if a > rows or b > cols:
                continue
            squareness = abs(rows / a - cols / b)
            if best is None or (squareness, a) < (best[0], best[1]):
                best = (squareness, a, b)
        if best is None:
            raise ValueError(
                f"cannot tile a {rows}x{cols} grid into {num_shards} "
                "rectangular shards; pick a shard count with a factor pair "
                f"(a, b) where a <= {rows} and b <= {cols}"
            )
        return best[1], best[2]

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def shard_rows(self) -> int:
        """Number of horizontal shard bands."""
        return self._shard_rows

    @property
    def shard_cols(self) -> int:
        """Number of vertical shard bands."""
        return self._shard_cols

    # ------------------------------------------------------------------
    # cell -> shard mapping
    # ------------------------------------------------------------------
    def shard_of_cell(self, index: int) -> int:
        """0-based shard id of the cell with 1-based ``index``."""
        if not 1 <= index <= self._grid.num_cells:
            raise IndexError(
                f"grid index {index} outside [1, {self._grid.num_cells}]"
            )
        return int(self._cell_shards[index - 1])

    def shards_of_cells(self, indices: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`shard_of_cell` for 1-based cell index arrays."""
        cells = np.asarray(indices, dtype=np.int64)
        if cells.size and (cells.min() < 1 or cells.max() > self._grid.num_cells):
            raise IndexError("grid index outside the grid")
        return self._cell_shards[cells - 1]

    def cells_of_shard(self, shard: int) -> List[int]:
        """1-based cell indices owned by ``shard``, ascending."""
        if not 0 <= shard < self._num_shards:
            raise IndexError(f"shard {shard} outside [0, {self._num_shards})")
        return (np.flatnonzero(self._cell_shards == shard) + 1).tolist()

    # ------------------------------------------------------------------
    # boundary / halo queries
    # ------------------------------------------------------------------
    def boundary_cells(self, halo: int = 1) -> np.ndarray:
        """Boolean mask (by 0-based cell position) of halo-boundary cells.

        A cell is a boundary cell when some cell within Chebyshev distance
        ``halo`` (in cell units) belongs to a *different* shard — exactly
        the cells whose tasks and workers take part in the sharded
        engine's halo-exchange reconciliation.  ``halo=0`` (or a single
        shard) marks nothing.
        """
        if halo < 0:
            raise ValueError("halo must be non-negative")
        rows, cols = self._grid.rows, self._grid.cols
        shards = self._cell_shards.reshape(rows, cols)
        boundary = np.zeros((rows, cols), dtype=bool)
        if halo == 0 or self._num_shards == 1:
            return boundary.reshape(-1)
        for dr in range(-halo, halo + 1):
            for dc in range(-halo, halo + 1):
                if dr == 0 and dc == 0:
                    continue
                src_r = slice(max(0, -dr), rows - max(0, dr))
                src_c = slice(max(0, -dc), cols - max(0, dc))
                dst_r = slice(max(0, dr), rows - max(0, -dr))
                dst_c = slice(max(0, dc), cols - max(0, -dc))
                boundary[dst_r, dst_c] |= shards[dst_r, dst_c] != shards[src_r, src_c]
        return boundary.reshape(-1)


__all__ = ["Grid", "GridCell", "GridTiling"]
