"""Spatial substrate: geometry, grid partitioning and range queries.

The paper (Definition 1) partitions the region of interest into grid cells
and sets one unit price per cell per time period.  Workers impose a range
constraint (Definition 4): a worker located at ``l_w`` with radius ``a_w``
can only serve tasks whose origin falls inside the disc of radius ``a_w``
around ``l_w``.

This subpackage provides:

* :mod:`repro.spatial.geometry` — points, distance metrics (Euclidean,
  Manhattan, haversine for latitude/longitude data) and bounding boxes;
* :mod:`repro.spatial.grid` — the rectangular grid partitioning with the
  bottom-left-to-top-right indexing used in the paper's running example;
* :mod:`repro.spatial.index` — a grid-bucketed spatial index that answers
  the circular range queries needed to build the task–worker bipartite
  graph without an all-pairs scan.
"""

from repro.spatial.geometry import (
    BoundingBox,
    Point,
    euclidean_distance,
    haversine_distance,
    manhattan_distance,
    resolve_metric,
)
from repro.spatial.grid import Grid, GridCell
from repro.spatial.index import GridBuckets, GridSpatialIndex

__all__ = [
    "Point",
    "BoundingBox",
    "euclidean_distance",
    "manhattan_distance",
    "haversine_distance",
    "resolve_metric",
    "Grid",
    "GridCell",
    "GridBuckets",
    "GridSpatialIndex",
]
