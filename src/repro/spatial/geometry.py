"""Planar geometry primitives and distance metrics.

Tasks and workers live in a two-dimensional coordinate space.  The
synthetic experiments of the paper use a 100x100 Euclidean square; the
Beijing experiments use a longitude/latitude rectangle with distances in
kilometres, for which we provide the haversine metric.  All metrics share
the signature ``metric(a: Point, b: Point) -> float`` so they can be
plugged into the grid index and the bipartite graph builder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple, Union

import numpy as np

DistanceMetric = Callable[["Point", "Point"], float]
#: Vectorised metric over coordinate arrays: ``metric(ax, ay, bx, by)``
#: returns the elementwise distances as a ``float64`` array.
BatchDistanceMetric = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray
]

#: Mean Earth radius in kilometres, used by the haversine metric.
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class Point:
    """A point in the plane (or a lon/lat pair for geographic data).

    Attributes:
        x: First coordinate (or longitude in degrees).
        y: Second coordinate (or latitude in degrees).
    """

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point", metric: Union[str, DistanceMetric] = "euclidean") -> float:
        """Distance to ``other`` under the given metric (name or callable)."""
        return resolve_metric(metric)(self, other)


def as_point(value: Union[Point, Tuple[float, float], Iterable[float]]) -> Point:
    """Coerce a ``Point`` or 2-sequence into a :class:`Point`."""
    if isinstance(value, Point):
        return value
    x, y = value  # type: ignore[misc]
    return Point(float(x), float(y))


def euclidean_distance(a: Point, b: Point) -> float:
    """Straight-line distance, the metric used by the synthetic experiments."""
    return math.hypot(a.x - b.x, a.y - b.y)


def manhattan_distance(a: Point, b: Point) -> float:
    """L1 distance; a cheap proxy for grid-like road networks."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def haversine_distance(a: Point, b: Point) -> float:
    """Great-circle distance in kilometres between two lon/lat points.

    Points are interpreted as ``(longitude, latitude)`` in degrees, which
    matches how the Beijing bounding box is specified in the paper
    (bottom-left ``(116.30, 39.84)``, top-right ``(116.50, 40.0)``).
    """
    lon1, lat1 = math.radians(a.x), math.radians(a.y)
    lon2, lat2 = math.radians(b.x), math.radians(b.y)
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def euclidean_distances_batch(
    ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
) -> np.ndarray:
    """Elementwise :func:`euclidean_distance` over coordinate arrays.

    ``np.hypot`` and ``math.hypot`` both defer to the platform's C
    ``hypot``, so each element is bit-identical to the scalar metric —
    which is what lets the vectorised graph builder reproduce the
    loop-based builder's edge set exactly at the radius boundary.
    """
    return np.hypot(ax - bx, ay - by)


def manhattan_distances_batch(
    ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
) -> np.ndarray:
    """Elementwise :func:`manhattan_distance` over coordinate arrays."""
    return np.abs(ax - bx) + np.abs(ay - by)


def haversine_distances_batch(
    ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
) -> np.ndarray:
    """Elementwise :func:`haversine_distance` over lon/lat arrays.

    Mirrors the scalar formula operation-for-operation (including the
    ``min(1, sqrt(h))`` clamp).  Unlike the euclidean pair, exact
    boundary agreement with the scalar metric is platform-dependent:
    numpy's float64 ``sin``/``cos`` may come from a vector math library
    that differs from libm by a few ulps, so a point whose distance is
    within ulps of the radius can flip between the scalar and batched
    evaluations there.  Randomly placed points land on that knife edge
    with probability ~0, but bit-exactness should not be *relied on*
    for this metric the way it can be for euclidean/manhattan.
    """
    lon1, lat1 = np.radians(ax), np.radians(ay)
    lon2, lat2 = np.radians(bx), np.radians(by)
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))


_METRICS: dict = {
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
    "haversine": haversine_distance,
}

_BATCH_METRICS: dict = {
    "euclidean": euclidean_distances_batch,
    "manhattan": manhattan_distances_batch,
    "haversine": haversine_distances_batch,
}


def resolve_metric(metric: Union[str, DistanceMetric]) -> DistanceMetric:
    """Resolve a metric name or callable into a callable.

    Raises:
        KeyError: if a string name is not one of ``euclidean``,
            ``manhattan`` or ``haversine``.
    """
    if callable(metric):
        return metric
    return _METRICS[metric]


def resolve_batch_metric(
    metric: Union[str, DistanceMetric],
) -> Optional[BatchDistanceMetric]:
    """Resolve the vectorised counterpart of a named metric, if one exists.

    Returns ``None`` for caller-supplied metric callables (which have no
    array form); consumers fall back to the scalar path in that case.
    """
    if callable(metric):
        return None
    return _BATCH_METRICS.get(metric)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError("bounding box must have non-negative extent")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (boundary inclusive)."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (nearest point inside)."""
        return Point(
            min(self.max_x, max(self.min_x, point.x)),
            min(self.max_y, max(self.min_y, point.y)),
        )

    def intersects_circle(self, center: Point, radius: float) -> bool:
        """Whether the disc of ``radius`` around ``center`` intersects the box."""
        nearest = self.clamp(center)
        return euclidean_distance(nearest, center) <= radius

    @classmethod
    def square(cls, side: float, origin: Point = Point(0.0, 0.0)) -> "BoundingBox":
        """A square box of side ``side`` with bottom-left corner at ``origin``."""
        if side <= 0:
            raise ValueError("side must be positive")
        return cls(origin.x, origin.y, origin.x + side, origin.y + side)


__all__ = [
    "Point",
    "as_point",
    "BoundingBox",
    "DistanceMetric",
    "BatchDistanceMetric",
    "euclidean_distance",
    "manhattan_distance",
    "haversine_distance",
    "euclidean_distances_batch",
    "manhattan_distances_batch",
    "haversine_distances_batch",
    "resolve_metric",
    "resolve_batch_metric",
    "EARTH_RADIUS_KM",
]
