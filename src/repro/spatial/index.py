"""Grid-bucketed spatial indexes for circular range queries.

Building the task–worker bipartite graph requires, for every worker ``w``,
the set of tasks whose origin lies within the worker's service radius
``a_w`` (Definition 4).  A naive all-pairs scan costs ``O(|R| x |W|)``
distance evaluations per time period; the scalability experiment of the
paper runs up to 500k tasks and workers, where that becomes the dominant
cost.

Two implementations share the grid-bucketing idea:

* :class:`GridSpatialIndex` — a mutable, label-keyed index answering one
  circular query at a time (inserts, moves, nearest-neighbour search).
* :class:`GridBuckets` — a read-only, array-native bucketing of a point
  set that answers *batches* of circular queries with numpy broadcasting
  (candidate cells → ragged gather → one vectorised distance filter).
  This is what the vectorised bipartite-graph builder runs on: it emits
  flat candidate arrays instead of per-query Python lists, and reuses
  grow-only scratch buffers across periods so the hot loop allocates a
  near-constant amount per period.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from repro.spatial.geometry import (
    DistanceMetric,
    Point,
    resolve_batch_metric,
    resolve_metric,
)
from repro.spatial.grid import Grid

T = TypeVar("T", bound=Hashable)


class _BuilderScratch:
    """Grow-only buffers reused across batched queries (and periods).

    The ragged gathers of :meth:`GridBuckets.query_circles` repeatedly
    need ``0..n-1`` ramps whose length varies per period; re-allocating
    them dominates small-period overhead.  The scratch keeps one
    monotonically grown ``arange`` and hands out read-only views.  Not
    thread-safe — the simulation's concurrency unit is the process
    (sharded / parallel runners), which each get their own copy.
    """

    def __init__(self) -> None:
        self._iota = np.zeros(0, dtype=np.int64)

    def iota(self, n: int) -> np.ndarray:
        """A read-only ``[0, 1, ..., n-1]`` view backed by a reused buffer."""
        if self._iota.shape[0] < n:
            self._iota = np.arange(max(n, 2 * self._iota.shape[0]), dtype=np.int64)
            self._iota.setflags(write=False)
        return self._iota[:n]


#: Module-level scratch shared by every GridBuckets instance of a process.
_SCRATCH = _BuilderScratch()

#: Chunk bounds for the batched query's two ragged expansions.  Peak
#: transient memory is proportional to these (a few numpy rows per
#: candidate), independent of how many candidate pairs the whole batch
#: would generate — which matters for metrics whose candidate rectangles
#: are loose (haversine radii are kilometres against degree coordinates,
#: so its rectangles can span the whole grid).
_CELL_CHUNK = 1 << 20
_POINT_CHUNK = 4 << 20


class GridBuckets:
    """Array-native cell bucketing of a fixed point set.

    Args:
        grid: The grid used for bucketing (and for candidate-cell
            enumeration).
        xs: x coordinates of the points.
        ys: y coordinates of the points (same length).

    The constructor sorts point positions by their (0-based) grid cell
    once; :meth:`query_circles` then answers a whole batch of circular
    range queries — one per (center, radius) pair — with a handful of
    numpy passes and **no Python per-point work**.
    """

    def __init__(self, grid: Grid, xs: Sequence[float], ys: Sequence[float]) -> None:
        self._grid = grid
        self._xs = np.ascontiguousarray(xs, dtype=np.float64)
        self._ys = np.ascontiguousarray(ys, dtype=np.float64)
        if self._xs.shape != self._ys.shape or self._xs.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        cells = grid.locate_many(self._xs, self._ys) - 1
        # Stable sort keeps same-cell points in insertion order, mirroring
        # how GridSpatialIndex buckets preserve insertion order.
        self._order = np.argsort(cells, kind="stable")
        self._cell_counts = np.bincount(cells, minlength=grid.num_cells)
        self._cell_ptr = np.zeros(grid.num_cells + 1, dtype=np.int64)
        np.cumsum(self._cell_counts, out=self._cell_ptr[1:])

    def __len__(self) -> int:
        return int(self._xs.shape[0])

    @property
    def grid(self) -> Grid:
        return self._grid

    def query_circles(
        self,
        centers_x: Sequence[float],
        centers_y: Sequence[float],
        radii: Sequence[float],
        metric: Union[str, DistanceMetric] = "euclidean",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched inclusive circular range queries.

        Args:
            centers_x: Query center x coordinates.
            centers_y: Query center y coordinates (same length).
            radii: Query radius per center (same length, non-negative).
            metric: Metric *name* (``euclidean`` / ``manhattan`` /
                ``haversine``); callables have no vectorised form.

        Returns:
            ``(center_idx, point_idx, distance)`` flat arrays: one entry
            per (query, point) pair with ``distance <= radius``.  Pairs
            are ordered by center, then by the point's cell, then by
            point insertion order — callers needing a canonical edge
            order sort once afterwards.

        Raises:
            ValueError: for negative radii or a metric without a batch
                implementation.
        """
        batch_metric = resolve_batch_metric(metric)
        if batch_metric is None:
            raise ValueError(
                f"metric {metric!r} has no vectorised implementation; "
                "use GridSpatialIndex.query_circle instead"
            )
        cx = np.ascontiguousarray(centers_x, dtype=np.float64)
        cy = np.ascontiguousarray(centers_y, dtype=np.float64)
        rr = np.ascontiguousarray(radii, dtype=np.float64)
        if not (cx.shape == cy.shape == rr.shape) or cx.ndim != 1:
            raise ValueError("centers_x, centers_y and radii must have equal length")
        if rr.size and float(rr.min()) < 0:
            raise ValueError("radius must be non-negative")
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        if not cx.size or not self._xs.size:
            return empty

        grid = self._grid
        region = grid.region
        # Candidate cells: the axis-aligned cell rectangle covering the
        # query disc (a superset of Grid.cells_intersecting_circle; the
        # exact metric filter below makes the result identical).
        min_col = np.clip(
            np.floor((cx - rr - region.min_x) / grid.cell_width), 0, grid.cols - 1
        ).astype(np.int64)
        max_col = np.clip(
            np.floor((cx + rr - region.min_x) / grid.cell_width), 0, grid.cols - 1
        ).astype(np.int64)
        min_row = np.clip(
            np.floor((cy - rr - region.min_y) / grid.cell_height), 0, grid.rows - 1
        ).astype(np.int64)
        max_row = np.clip(
            np.floor((cy + rr - region.min_y) / grid.cell_height), 0, grid.rows - 1
        ).astype(np.int64)
        col_span = max_col - min_col + 1
        ncells = (max_row - min_row + 1) * col_span
        if not int(ncells.sum()):
            return empty

        # Both ragged expansions run in bounded chunks (see _CELL_CHUNK /
        # _POINT_CHUNK): peak transient memory stays proportional to the
        # chunk size however loose the candidate rectangles are, and the
        # chunks are processed in order so the output ordering is the
        # same as one monolithic expansion.
        out_centers: list = []
        out_points: list = []
        out_distances: list = []
        cell_cum = np.cumsum(ncells)
        center_start = 0
        while center_start < cx.size:
            base = int(cell_cum[center_start - 1]) if center_start else 0
            center_end = max(
                int(np.searchsorted(cell_cum, base + _CELL_CHUNK, side="right")),
                center_start + 1,
            )
            chunk_ncells = ncells[center_start:center_end]
            chunk_total = int(chunk_ncells.sum())
            center_start_next = center_end
            if not chunk_total:
                center_start = center_start_next
                continue

            # Ragged expansion: one row per (query, candidate cell).
            center_rep = np.repeat(
                np.arange(center_start, center_end, dtype=np.int64), chunk_ncells
            )
            local = _SCRATCH.iota(chunk_total) - np.repeat(
                np.cumsum(chunk_ncells) - chunk_ncells, chunk_ncells
            )
            span = col_span[center_rep]
            cell = (min_row[center_rep] + local // span) * grid.cols + (
                min_col[center_rep] + local % span
            )
            counts = self._cell_counts[cell]
            nonempty = counts > 0
            center_rep, cell, counts = (
                center_rep[nonempty],
                cell[nonempty],
                counts[nonempty],
            )
            if not counts.size:
                center_start = center_start_next
                continue

            # Second ragged expansion: one row per (query, candidate
            # point), again in bounded chunks of (query, cell) pairs.
            point_cum = np.cumsum(counts)
            pair_start = 0
            while pair_start < counts.size:
                pair_base = int(point_cum[pair_start - 1]) if pair_start else 0
                pair_end = max(
                    int(
                        np.searchsorted(
                            point_cum, pair_base + _POINT_CHUNK, side="right"
                        )
                    ),
                    pair_start + 1,
                )
                sub_counts = counts[pair_start:pair_end]
                sub_total = int(sub_counts.sum())
                ends = np.cumsum(sub_counts)
                offsets = _SCRATCH.iota(sub_total) - np.repeat(
                    ends - sub_counts, sub_counts
                )
                point_idx = self._order[
                    np.repeat(self._cell_ptr[cell[pair_start:pair_end]], sub_counts)
                    + offsets
                ]
                center_idx = np.repeat(center_rep[pair_start:pair_end], sub_counts)

                distances = batch_metric(
                    cx[center_idx],
                    cy[center_idx],
                    self._xs[point_idx],
                    self._ys[point_idx],
                )
                within = distances <= rr[center_idx]
                out_centers.append(center_idx[within])
                out_points.append(point_idx[within])
                out_distances.append(distances[within])
                pair_start = pair_end
            center_start = center_start_next

        if not out_centers:
            return empty
        return (
            np.concatenate(out_centers),
            np.concatenate(out_points),
            np.concatenate(out_distances),
        )


class GridSpatialIndex(Generic[T]):
    """A spatial index over labelled points, bucketed by grid cell.

    Args:
        grid: The grid used for bucketing.  It does not need to match the
            pricing grid, but re-using it is convenient and cache-friendly.
        metric: Distance metric name or callable (default Euclidean).

    Example:
        >>> from repro.spatial import Grid, Point
        >>> grid = Grid.square(100.0, 10)
        >>> index = GridSpatialIndex(grid)
        >>> index.insert("a", Point(10.0, 10.0))
        >>> index.insert("b", Point(90.0, 90.0))
        >>> sorted(label for label, _ in index.query_circle(Point(12, 12), 5.0))
        ['a']
    """

    def __init__(self, grid: Grid, metric: Union[str, DistanceMetric] = "euclidean") -> None:
        self._grid = grid
        self._metric = resolve_metric(metric)
        self._buckets: Dict[int, Dict[T, Point]] = {}
        self._locations: Dict[T, Point] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, label: T, point: Point) -> None:
        """Insert a labelled point.

        Raises:
            KeyError: if ``label`` is already present (use :meth:`move`).
        """
        if label in self._locations:
            raise KeyError(f"label {label!r} already indexed; use move()")
        cell = self._grid.locate(point)
        self._buckets.setdefault(cell, {})[label] = point
        self._locations[label] = point

    def bulk_insert(self, items: Iterable[Tuple[T, Point]]) -> None:
        """Insert many labelled points at once."""
        for label, point in items:
            self.insert(label, point)

    def remove(self, label: T) -> Point:
        """Remove a labelled point and return its last location."""
        point = self._locations.pop(label)
        cell = self._grid.locate(point)
        bucket = self._buckets.get(cell)
        if bucket is not None:
            bucket.pop(label, None)
            if not bucket:
                del self._buckets[cell]
        return point

    def move(self, label: T, new_point: Point) -> None:
        """Relocate an existing labelled point (e.g. a moving worker)."""
        self.remove(label)
        self.insert(label, new_point)

    def clear(self) -> None:
        self._buckets.clear()
        self._locations.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, label: T) -> bool:
        return label in self._locations

    def location_of(self, label: T) -> Point:
        return self._locations[label]

    def labels(self) -> List[T]:
        return list(self._locations)

    def query_circle(self, center: Point, radius: float) -> List[Tuple[T, float]]:
        """Return ``(label, distance)`` pairs within ``radius`` of ``center``.

        The boundary is inclusive, matching the paper's range constraint
        "located within the circle centered at ``l_w`` with radius ``a_w``".
        Results are sorted by distance, then by label for determinism.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        result: List[Tuple[T, float]] = []
        for cell in self._grid.cells_intersecting_circle(center, radius):
            bucket = self._buckets.get(cell)
            if not bucket:
                continue
            for label, point in bucket.items():
                distance = self._metric(center, point)
                if distance <= radius:
                    result.append((label, distance))
        result.sort(key=lambda pair: (pair[1], str(pair[0])))
        return result

    def query_cell(self, cell_index: int) -> List[T]:
        """Return the labels bucketed in the given grid cell."""
        bucket = self._buckets.get(cell_index, {})
        return list(bucket.keys())

    def nearest(self, center: Point, max_radius: Optional[float] = None) -> Optional[Tuple[T, float]]:
        """Return the closest labelled point (expanding ring search).

        Args:
            center: Query location.
            max_radius: Optional cap on the search radius; ``None`` searches
                the full region.

        Returns:
            ``(label, distance)`` or ``None`` when the index is empty or no
            point lies within ``max_radius``.
        """
        if not self._locations:
            return None
        region = self._grid.region
        limit = max_radius if max_radius is not None else (region.width + region.height)
        radius = min(self._grid.cell_width, self._grid.cell_height)
        while radius <= limit * 2:
            hits = self.query_circle(center, min(radius, limit))
            if hits:
                return hits[0]
            if radius >= limit:
                break
            radius *= 2
        hits = self.query_circle(center, limit)
        return hits[0] if hits else None

    def counts_per_cell(self) -> Dict[int, int]:
        """Number of indexed points in each non-empty cell."""
        return {cell: len(bucket) for cell, bucket in self._buckets.items() if bucket}


__all__ = ["GridBuckets", "GridSpatialIndex"]
