"""Grid-bucketed spatial indexes for circular range queries.

Building the task–worker bipartite graph requires, for every worker ``w``,
the set of tasks whose origin lies within the worker's service radius
``a_w`` (Definition 4).  A naive all-pairs scan costs ``O(|R| x |W|)``
distance evaluations per time period; the scalability experiment of the
paper runs up to 500k tasks and workers, where that becomes the dominant
cost.

Three implementations share the grid-bucketing idea:

* :class:`GridSpatialIndex` — a mutable, label-keyed index answering one
  circular query at a time (inserts, moves, nearest-neighbour search).
* :class:`GridBuckets` — a read-only, array-native bucketing of a point
  set that answers *batches* of circular queries with numpy broadcasting
  (candidate cells → ragged gather → one vectorised distance filter).
  This is what the vectorised bipartite-graph builder runs on: it emits
  flat candidate arrays instead of per-query Python lists, and reuses
  grow-only scratch buffers across periods so the hot loop allocates a
  near-constant amount per period.
* :class:`DynamicGridBuckets` — the *mutable* counterpart of
  :class:`GridBuckets`: slot-addressed points under insert/remove, kept
  in grow-only per-cell storage segments so the same batched query runs
  against the live population without rebucketing.  It backs
  :class:`IncrementalAdjacencyIndex`, which answers "which live workers
  can serve this arriving task" in ``O(neighbourhood)`` — the update-cost
  (not epoch-cost) adjacency plane of the warm matching paths.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from repro.spatial.geometry import (
    DistanceMetric,
    Point,
    resolve_batch_metric,
    resolve_metric,
)
from repro.spatial.grid import Grid

T = TypeVar("T", bound=Hashable)


class _BuilderScratch:
    """Grow-only buffers reused across batched queries (and periods).

    The ragged gathers of :meth:`GridBuckets.query_circles` repeatedly
    need ``0..n-1`` ramps whose length varies per period; re-allocating
    them dominates small-period overhead.  The scratch keeps one
    monotonically grown ``arange`` and hands out read-only views.  Not
    thread-safe — the simulation's concurrency unit is the process
    (sharded / parallel runners), which each get their own copy.
    """

    def __init__(self) -> None:
        self._iota = np.zeros(0, dtype=np.int64)

    def iota(self, n: int) -> np.ndarray:
        """A read-only ``[0, 1, ..., n-1]`` view backed by a reused buffer."""
        if self._iota.shape[0] < n:
            self._iota = np.arange(max(n, 2 * self._iota.shape[0]), dtype=np.int64)
            self._iota.setflags(write=False)
        return self._iota[:n]


#: Module-level scratch shared by every GridBuckets instance of a process.
_SCRATCH = _BuilderScratch()

#: Chunk bounds for the batched query's two ragged expansions.  Peak
#: transient memory is proportional to these (a few numpy rows per
#: candidate), independent of how many candidate pairs the whole batch
#: would generate — which matters for metrics whose candidate rectangles
#: are loose (haversine radii are kilometres against degree coordinates,
#: so its rectangles can span the whole grid).
_CELL_CHUNK = 1 << 20
_POINT_CHUNK = 4 << 20


def _batched_circle_query(
    grid: Grid,
    xs: np.ndarray,
    ys: np.ndarray,
    cell_starts: np.ndarray,
    cell_counts: np.ndarray,
    slot_order: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    rr: np.ndarray,
    metric: Union[str, DistanceMetric],
    point_radii: Optional[np.ndarray] = None,
    points_first: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared chunked candidate expansion behind the batched circle queries.

    Gathers, for every query center, the points bucketed in the cell
    rectangle covering the disc of radius ``rr`` around it, computes the
    exact metric distance per (center, point) candidate and keeps the
    pairs within range.  ``cell_starts[cell]`` / ``cell_counts[cell]``
    describe each cell's segment inside ``slot_order`` — the contiguous
    cumsum layout of :class:`GridBuckets` and the grow-only segmented
    layout of :class:`DynamicGridBuckets` both fit this shape.

    Args:
        point_radii: When given, the inclusive filter is
            ``distance <= point_radii[point]`` (each *point* carries the
            radius, e.g. a worker's service range) while ``rr`` only
            sizes the candidate rectangles — callers pass a per-query
            upper bound such as the plane's maximum live radius.
            When ``None``, the filter is ``distance <= rr[center]``.
        points_first: Pass the point coordinates as the metric's first
            argument pair.  Distances of the supported metrics are
            symmetric bit-for-bit, but keeping the argument roles of
            :func:`repro.matching.bipartite.build_graph_from_arrays`
            (workers first) makes the bitwise contract self-evident.

    Returns:
        ``(center_idx, point_idx, distance)`` flat arrays ordered by
        center, then candidate cell, then within-cell storage order.
    """
    batch_metric = resolve_batch_metric(metric)
    if batch_metric is None:
        raise ValueError(
            f"metric {metric!r} has no vectorised implementation; "
            "use GridSpatialIndex.query_circle instead"
        )
    empty = (
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.float64),
    )
    if not cx.size or not slot_order.size:
        return empty

    region = grid.region
    # Candidate cells: the axis-aligned cell rectangle covering the
    # query disc (a superset of Grid.cells_intersecting_circle; the
    # exact metric filter below makes the result identical).
    min_col = np.clip(
        np.floor((cx - rr - region.min_x) / grid.cell_width), 0, grid.cols - 1
    ).astype(np.int64)
    max_col = np.clip(
        np.floor((cx + rr - region.min_x) / grid.cell_width), 0, grid.cols - 1
    ).astype(np.int64)
    min_row = np.clip(
        np.floor((cy - rr - region.min_y) / grid.cell_height), 0, grid.rows - 1
    ).astype(np.int64)
    max_row = np.clip(
        np.floor((cy + rr - region.min_y) / grid.cell_height), 0, grid.rows - 1
    ).astype(np.int64)
    col_span = max_col - min_col + 1
    ncells = (max_row - min_row + 1) * col_span
    if not int(ncells.sum()):
        return empty

    # Both ragged expansions run in bounded chunks (see _CELL_CHUNK /
    # _POINT_CHUNK): peak transient memory stays proportional to the
    # chunk size however loose the candidate rectangles are, and the
    # chunks are processed in order so the output ordering is the
    # same as one monolithic expansion.
    out_centers: list = []
    out_points: list = []
    out_distances: list = []
    cell_cum = np.cumsum(ncells)
    center_start = 0
    while center_start < cx.size:
        base = int(cell_cum[center_start - 1]) if center_start else 0
        center_end = max(
            int(np.searchsorted(cell_cum, base + _CELL_CHUNK, side="right")),
            center_start + 1,
        )
        chunk_ncells = ncells[center_start:center_end]
        chunk_total = int(chunk_ncells.sum())
        center_start_next = center_end
        if not chunk_total:
            center_start = center_start_next
            continue

        # Ragged expansion: one row per (query, candidate cell).
        center_rep = np.repeat(
            np.arange(center_start, center_end, dtype=np.int64), chunk_ncells
        )
        local = _SCRATCH.iota(chunk_total) - np.repeat(
            np.cumsum(chunk_ncells) - chunk_ncells, chunk_ncells
        )
        span = col_span[center_rep]
        cell = (min_row[center_rep] + local // span) * grid.cols + (
            min_col[center_rep] + local % span
        )
        counts = cell_counts[cell]
        nonempty = counts > 0
        center_rep, cell, counts = (
            center_rep[nonempty],
            cell[nonempty],
            counts[nonempty],
        )
        if not counts.size:
            center_start = center_start_next
            continue

        # Second ragged expansion: one row per (query, candidate
        # point), again in bounded chunks of (query, cell) pairs.
        point_cum = np.cumsum(counts)
        pair_start = 0
        while pair_start < counts.size:
            pair_base = int(point_cum[pair_start - 1]) if pair_start else 0
            pair_end = max(
                int(
                    np.searchsorted(
                        point_cum, pair_base + _POINT_CHUNK, side="right"
                    )
                ),
                pair_start + 1,
            )
            sub_counts = counts[pair_start:pair_end]
            sub_total = int(sub_counts.sum())
            ends = np.cumsum(sub_counts)
            offsets = _SCRATCH.iota(sub_total) - np.repeat(
                ends - sub_counts, sub_counts
            )
            point_idx = slot_order[
                np.repeat(cell_starts[cell[pair_start:pair_end]], sub_counts)
                + offsets
            ]
            center_idx = np.repeat(center_rep[pair_start:pair_end], sub_counts)

            if points_first:
                distances = batch_metric(
                    xs[point_idx],
                    ys[point_idx],
                    cx[center_idx],
                    cy[center_idx],
                )
            else:
                distances = batch_metric(
                    cx[center_idx],
                    cy[center_idx],
                    xs[point_idx],
                    ys[point_idx],
                )
            if point_radii is not None:
                within = distances <= point_radii[point_idx]
            else:
                within = distances <= rr[center_idx]
            out_centers.append(center_idx[within])
            out_points.append(point_idx[within])
            out_distances.append(distances[within])
            pair_start = pair_end
        center_start = center_start_next

    if not out_centers:
        return empty
    return (
        np.concatenate(out_centers),
        np.concatenate(out_points),
        np.concatenate(out_distances),
    )


def cap_edges_per_center(
    center_idx: np.ndarray,
    point_idx: np.ndarray,
    distances: np.ndarray,
    num_centers: int,
    max_degree: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep the ``max_degree`` nearest points per center (vectorised).

    Ties on distance break by ascending point index, so the kept set is
    deterministic and identical to the scalar capping rule.  Inputs may
    arrive in any order (the selection keys order them fully); outputs
    are in canonical ascending ``(center, point)`` order.  Doing the
    ranking sort on the raw arrays and the canonical sort on the *capped*
    set keeps the expensive three-key lexsort to one pass over the full
    edge list.

    This is the degree-cap rule of the batch graph builder
    (:func:`repro.matching.bipartite.build_graph_from_arrays` delegates
    here) and of :class:`IncrementalAdjacencyIndex` — one implementation,
    so capped rows agree bit-for-bit wherever the same keys are used.
    """
    order = np.lexsort((point_idx, distances, center_idx))
    sorted_centers = center_idx[order]
    counts = np.bincount(sorted_centers, minlength=num_centers)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    rank = np.arange(sorted_centers.size, dtype=np.int64) - starts
    keep = order[rank < max_degree]
    kept_centers = center_idx[keep]
    kept_points = point_idx[keep]
    canonical = np.lexsort((kept_points, kept_centers))
    return kept_centers[canonical], kept_points[canonical]


class GridBuckets:
    """Array-native cell bucketing of a fixed point set.

    Args:
        grid: The grid used for bucketing (and for candidate-cell
            enumeration).
        xs: x coordinates of the points.
        ys: y coordinates of the points (same length).

    The constructor sorts point positions by their (0-based) grid cell
    once; :meth:`query_circles` then answers a whole batch of circular
    range queries — one per (center, radius) pair — with a handful of
    numpy passes and **no Python per-point work**.
    """

    def __init__(self, grid: Grid, xs: Sequence[float], ys: Sequence[float]) -> None:
        self._grid = grid
        self._xs = np.ascontiguousarray(xs, dtype=np.float64)
        self._ys = np.ascontiguousarray(ys, dtype=np.float64)
        if self._xs.shape != self._ys.shape or self._xs.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        cells = grid.locate_many(self._xs, self._ys) - 1
        # Stable sort keeps same-cell points in insertion order, mirroring
        # how GridSpatialIndex buckets preserve insertion order.
        self._order = np.argsort(cells, kind="stable")
        self._cell_counts = np.bincount(cells, minlength=grid.num_cells)
        self._cell_ptr = np.zeros(grid.num_cells + 1, dtype=np.int64)
        np.cumsum(self._cell_counts, out=self._cell_ptr[1:])

    def __len__(self) -> int:
        return int(self._xs.shape[0])

    @property
    def grid(self) -> Grid:
        return self._grid

    def query_circles(
        self,
        centers_x: Sequence[float],
        centers_y: Sequence[float],
        radii: Sequence[float],
        metric: Union[str, DistanceMetric] = "euclidean",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched inclusive circular range queries.

        Args:
            centers_x: Query center x coordinates.
            centers_y: Query center y coordinates (same length).
            radii: Query radius per center (same length, non-negative).
            metric: Metric *name* (``euclidean`` / ``manhattan`` /
                ``haversine``); callables have no vectorised form.

        Returns:
            ``(center_idx, point_idx, distance)`` flat arrays: one entry
            per (query, point) pair with ``distance <= radius``.  Pairs
            are ordered by center, then by the point's cell, then by
            point insertion order — callers needing a canonical edge
            order sort once afterwards.

        Raises:
            ValueError: for negative radii or a metric without a batch
                implementation.
        """
        cx = np.ascontiguousarray(centers_x, dtype=np.float64)
        cy = np.ascontiguousarray(centers_y, dtype=np.float64)
        rr = np.ascontiguousarray(radii, dtype=np.float64)
        if not (cx.shape == cy.shape == rr.shape) or cx.ndim != 1:
            raise ValueError("centers_x, centers_y and radii must have equal length")
        if rr.size and float(rr.min()) < 0:
            raise ValueError("radius must be non-negative")
        return _batched_circle_query(
            self._grid,
            self._xs,
            self._ys,
            self._cell_ptr,
            self._cell_counts,
            self._order,
            cx,
            cy,
            rr,
            metric,
        )


class DynamicGridBuckets:
    """Mutable, array-native cell bucketing of a slot-addressed point set.

    The incremental counterpart of :class:`GridBuckets`: points are
    inserted and removed one batch at a time, each receiving a
    monotonically increasing *slot* (slots are never recycled, so slot
    order is arrival order — the property the warm matchers' traversal
    contracts lean on).  Per-cell membership lives in grow-only storage
    segments: each cell owns a contiguous ``[start, start + count)``
    window of one flat array, doubled by relocation when it fills, with
    abandoned windows kept in per-capacity free lists for reuse.  Inserts
    and removes are ``O(1)`` amortised, and the batched circle query runs
    the exact same chunked numpy expansion as :class:`GridBuckets` over
    the live population — no per-update rebucketing, no Python per-point
    work at query time.

    Args:
        grid: The grid used for bucketing and candidate-cell enumeration.
        track_radii: Store a service radius per point (worker planes);
            enables :meth:`query_own_radius`.
    """

    #: Initial capacity handed to a cell on its first insertion.
    _SEGMENT_SEED = 4

    def __init__(self, grid: Grid, track_radii: bool = False) -> None:
        self._grid = grid
        self._track_radii = track_radii
        capacity = 16
        self._xs = np.zeros(capacity, dtype=np.float64)
        self._ys = np.zeros(capacity, dtype=np.float64)
        self._radii = np.zeros(capacity, dtype=np.float64) if track_radii else None
        self._slot_cell = np.full(capacity, -1, dtype=np.int64)
        self._slot_offset = np.zeros(capacity, dtype=np.int64)
        self._next_slot = 0
        self._live = 0
        self._cell_start = np.zeros(grid.num_cells, dtype=np.int64)
        self._cell_cap = np.zeros(grid.num_cells, dtype=np.int64)
        self._cell_count = np.zeros(grid.num_cells, dtype=np.int64)
        self._storage = np.zeros(64, dtype=np.int64)
        self._storage_used = 0
        self._free_segments: Dict[int, List[int]] = {}
        # Grow-only maximum over every radius ever inserted: an upper
        # bound on live radii that sizes candidate rectangles without
        # having to maintain an exact max under removals.
        self._max_radius = 0.0

    def __len__(self) -> int:
        return self._live

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def max_radius(self) -> float:
        """Grow-only upper bound on the radius of any live point."""
        return self._max_radius

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < self._next_slot and self._slot_cell[slot] >= 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _grow_slots(self, need: int) -> None:
        capacity = self._xs.shape[0]
        if need <= capacity:
            return
        new_cap = max(need, 2 * capacity)
        for name in ("_xs", "_ys", "_radii", "_slot_cell", "_slot_offset"):
            old = getattr(self, name)
            if old is None:
                continue
            grown = np.full(new_cap, -1, dtype=old.dtype) if name == "_slot_cell" \
                else np.zeros(new_cap, dtype=old.dtype)
            grown[:capacity] = old
            setattr(self, name, grown)

    def _cell_append(self, cell: int, slot: int) -> None:
        count = int(self._cell_count[cell])
        if count == int(self._cell_cap[cell]):
            new_cap = max(self._SEGMENT_SEED, 2 * count)
            free = self._free_segments.get(new_cap)
            if free:
                start = free.pop()
            else:
                start = self._storage_used
                need = start + new_cap
                if need > self._storage.shape[0]:
                    grown = np.zeros(
                        max(need, 2 * self._storage.shape[0]), dtype=np.int64
                    )
                    grown[: self._storage_used] = self._storage[: self._storage_used]
                    self._storage = grown
                self._storage_used = need
            old_start = int(self._cell_start[cell])
            old_cap = int(self._cell_cap[cell])
            if count:
                self._storage[start : start + count] = self._storage[
                    old_start : old_start + count
                ]
            if old_cap:
                self._free_segments.setdefault(old_cap, []).append(old_start)
            self._cell_start[cell] = start
            self._cell_cap[cell] = new_cap
        self._storage[int(self._cell_start[cell]) + count] = slot
        self._slot_cell[slot] = cell
        self._slot_offset[slot] = count
        self._cell_count[cell] = count + 1

    def insert(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        radii: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Insert a batch of points; returns their (new, ascending) slots."""
        px = np.ascontiguousarray(xs, dtype=np.float64)
        py = np.ascontiguousarray(ys, dtype=np.float64)
        if px.shape != py.shape or px.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        if self._track_radii:
            if radii is None:
                raise ValueError("this plane tracks radii; pass them on insert")
            pr = np.ascontiguousarray(radii, dtype=np.float64)
            if pr.shape != px.shape:
                raise ValueError("radii must match xs/ys length")
            if pr.size and float(pr.min()) < 0:
                raise ValueError("radius must be non-negative")
        elif radii is not None:
            raise ValueError("this plane does not track radii")
        count = px.shape[0]
        first = self._next_slot
        self._grow_slots(first + count)
        self._xs[first : first + count] = px
        self._ys[first : first + count] = py
        if self._track_radii:
            self._radii[first : first + count] = pr
            if count:
                self._max_radius = max(self._max_radius, float(pr.max()))
        cells = (self._grid.locate_many(px, py) - 1) if count else px.astype(np.int64)
        for offset in range(count):
            self._cell_append(int(cells[offset]), first + offset)
        self._next_slot = first + count
        self._live += count
        return np.arange(first, first + count, dtype=np.int64)

    def remove(self, slot: int) -> None:
        """Remove a live slot (its storage entry is swap-popped in place)."""
        cell = int(self._slot_cell[slot])
        if cell < 0:
            raise ValueError(f"slot {slot} is not live")
        start = int(self._cell_start[cell])
        count = int(self._cell_count[cell])
        offset = int(self._slot_offset[slot])
        last = count - 1
        if offset != last:
            moved = int(self._storage[start + last])
            self._storage[start + offset] = moved
            self._slot_offset[moved] = offset
        self._cell_count[cell] = last
        self._slot_cell[slot] = -1
        self._live -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_circles(
        self,
        centers_x: Sequence[float],
        centers_y: Sequence[float],
        radii: Sequence[float],
        metric: Union[str, DistanceMetric] = "euclidean",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched inclusive circular range queries over the live points.

        Same contract as :meth:`GridBuckets.query_circles`; point indices
        in the result are slots.  Within a cell, storage order is
        insertion order disturbed only by removal swap-pops.
        """
        cx = np.ascontiguousarray(centers_x, dtype=np.float64)
        cy = np.ascontiguousarray(centers_y, dtype=np.float64)
        rr = np.ascontiguousarray(radii, dtype=np.float64)
        if not (cx.shape == cy.shape == rr.shape) or cx.ndim != 1:
            raise ValueError("centers_x, centers_y and radii must have equal length")
        if rr.size and float(rr.min()) < 0:
            raise ValueError("radius must be non-negative")
        if not self._live:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
        if cx.shape[0] == 1:
            return self._single_circle_query(
                float(cx[0]), float(cy[0]), float(rr[0]), metric, own_radius=False
            )
        return _batched_circle_query(
            self._grid,
            self._xs,
            self._ys,
            self._cell_start,
            self._cell_count,
            self._storage,
            cx,
            cy,
            rr,
            metric,
        )

    def query_own_radius(
        self,
        centers_x: Sequence[float],
        centers_y: Sequence[float],
        metric: Union[str, DistanceMetric] = "euclidean",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live points whose *own* radius covers each query center.

        The range-constraint query of the adjacency plane: a worker
        (point) serves a task (center) when the task lies within the
        worker's service radius.  Candidate rectangles are sized by the
        plane's grow-only :attr:`max_radius`; the exact per-point filter
        makes the result independent of that bound.  Distances are
        computed with the point (worker) coordinates as the metric's
        first argument pair — the same roles as the batch graph builder,
        so shared edges carry bit-identical distances.
        """
        if not self._track_radii:
            raise ValueError("this plane does not track radii")
        cx = np.ascontiguousarray(centers_x, dtype=np.float64)
        cy = np.ascontiguousarray(centers_y, dtype=np.float64)
        if cx.shape != cy.shape or cx.ndim != 1:
            raise ValueError("centers_x and centers_y must have equal length")
        if not self._live:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
        if cx.shape[0] == 1:
            return self._single_circle_query(
                float(cx[0]), float(cy[0]), self._max_radius, metric, own_radius=True
            )
        rr = np.full(cx.shape[0], self._max_radius, dtype=np.float64)
        return _batched_circle_query(
            self._grid,
            self._xs,
            self._ys,
            self._cell_start,
            self._cell_count,
            self._storage,
            cx,
            cy,
            rr,
            metric,
            point_radii=self._radii,
            points_first=True,
        )

    def _single_circle_query(
        self,
        x: float,
        y: float,
        r: float,
        metric: Union[str, DistanceMetric],
        own_radius: bool,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scalar fast path for one query center.

        The event-at-a-time hot loop (one task arrival, one worker
        arrival) pays the batched expansion's fixed numpy ceremony for a
        single row; gathering the candidate slots with a plain cell-
        rectangle walk is an order of magnitude cheaper at service
        densities.  Distances still come from the *same* vectorised
        metric over the gathered candidates — elementwise float64 ops do
        not depend on batch shape, so results are bit-identical to
        :func:`_batched_circle_query`, in the identical (cell-rectangle,
        then within-cell storage) order.
        """
        batch_metric = resolve_batch_metric(metric)
        if batch_metric is None:
            raise ValueError(
                f"metric {metric!r} has no vectorised implementation; "
                "use GridSpatialIndex.query_circle instead"
            )
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        grid = self._grid
        region = grid.region
        # Same float expressions as the batched rectangle (bit-identical
        # cell bounds), clipped to the grid.
        min_col = int(min(max(math.floor((x - r - region.min_x) / grid.cell_width), 0), grid.cols - 1))
        max_col = int(min(max(math.floor((x + r - region.min_x) / grid.cell_width), 0), grid.cols - 1))
        min_row = int(min(max(math.floor((y - r - region.min_y) / grid.cell_height), 0), grid.rows - 1))
        max_row = int(min(max(math.floor((y + r - region.min_y) / grid.cell_height), 0), grid.rows - 1))
        candidates: List[int] = []
        storage = self._storage
        starts = self._cell_start
        counts = self._cell_count
        for row in range(min_row, max_row + 1):
            base = row * grid.cols
            for col in range(min_col, max_col + 1):
                cell = base + col
                count = counts[cell]
                if count:
                    start = starts[cell]
                    candidates.extend(storage[start : start + count].tolist())
        if not candidates:
            return empty
        point_idx = np.asarray(candidates, dtype=np.int64)
        px = self._xs[point_idx]
        py = self._ys[point_idx]
        qx = np.full(point_idx.shape[0], x, dtype=np.float64)
        qy = np.full(point_idx.shape[0], y, dtype=np.float64)
        if own_radius:
            distances = batch_metric(px, py, qx, qy)
            within = distances <= self._radii[point_idx]
        else:
            distances = batch_metric(qx, qy, px, py)
            within = distances <= r
        point_idx = point_idx[within]
        return (
            np.zeros(point_idx.shape[0], dtype=np.int64),
            point_idx,
            distances[within],
        )


class IncrementalAdjacencyIndex:
    """Live task/worker planes answering per-arrival candidate-edge queries.

    The adjacency side of the warm matching paths: instead of one
    epoch-wide graph build, arrivals and departures update two
    :class:`DynamicGridBuckets` planes and each new task's candidate row
    is computed on demand against the *currently live* workers — cost
    proportional to the arrival's spatial neighbourhood.  The edge rule
    is exactly the batch builder's (inclusive radius, same metric
    argument roles, same degree-cap selection via
    :func:`cap_edges_per_center`), so at any instant the index's edges
    over the live population equal
    :func:`repro.matching.bipartite.build_graph_from_arrays` on that
    population — the fuzzed contract of
    ``tests/spatial/test_incremental_index.py``.

    Slots are arrival-ordered and never recycled, on both sides; callers
    that allocate their own ids in arrival order (the lazy matcher) can
    therefore use index slots verbatim.

    Args:
        grid: Bucketing grid.
        metric: Distance metric name (must have a vectorised form).
        max_degree: Optional per-task cap — each task keeps its
            ``max_degree`` nearest live workers *at query time* (ties by
            worker key).  Note this is the realised-population cap, not
            the batch builder's whole-universe cap: capping does not
            commute with arrival order.
        track_tasks: Maintain the task plane (needed by
            :meth:`worker_row`; warm-shard callers that only ever query
            task rows can skip it).
    """

    def __init__(
        self,
        grid: Grid,
        metric: Union[str, DistanceMetric] = "euclidean",
        max_degree: Optional[int] = None,
        track_tasks: bool = True,
    ) -> None:
        self._metric = metric
        self._max_degree = None if max_degree is None else int(max_degree)
        self._workers = DynamicGridBuckets(grid, track_radii=True)
        self._tasks = DynamicGridBuckets(grid) if track_tasks else None

    @property
    def grid(self) -> Grid:
        return self._workers.grid

    @property
    def max_degree(self) -> Optional[int]:
        return self._max_degree

    @property
    def num_live_workers(self) -> int:
        return len(self._workers)

    @property
    def num_live_tasks(self) -> int:
        return 0 if self._tasks is None else len(self._tasks)

    # ------------------------------------------------------------------
    # population updates
    # ------------------------------------------------------------------
    def insert_workers(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        radii: Sequence[float],
    ) -> np.ndarray:
        """Bring a batch of workers live; returns their slots (ascending)."""
        return self._workers.insert(xs, ys, radii)

    def insert_tasks(self, xs: Sequence[float], ys: Sequence[float]) -> np.ndarray:
        """Bring a batch of tasks live; returns their slots (ascending)."""
        if self._tasks is None:
            raise ValueError("index built with track_tasks=False")
        return self._tasks.insert(xs, ys)

    def remove_worker(self, slot: int) -> None:
        self._workers.remove(slot)

    def remove_task(self, slot: int) -> None:
        if self._tasks is None:
            raise ValueError("index built with track_tasks=False")
        self._tasks.remove(slot)

    # ------------------------------------------------------------------
    # candidate-edge queries
    # ------------------------------------------------------------------
    def candidate_edges(
        self,
        task_x: Sequence[float],
        task_y: Sequence[float],
        worker_keys: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Capped candidate edges from query tasks to the live workers.

        Args:
            task_x / task_y: Query task coordinates (the tasks need not
                be inserted in the task plane — warm shards query each
                period's tasks directly).
            worker_keys: Optional ``int64`` array mapping worker slot →
                caller id (e.g. a period-local position); the cap's
                distance-tie rule and the canonical output order both use
                the caller id, mirroring the batch builder capping over
                period-local worker positions.  Defaults to the identity
                (slots are the ids).

        Returns:
            ``(task_idx, worker_ids)`` in canonical ascending
            ``(task, id)`` order, one entry per surviving edge.
        """
        cx = np.ascontiguousarray(task_x, dtype=np.float64)
        cy = np.ascontiguousarray(task_y, dtype=np.float64)
        task_idx, worker_slots, distances = self._workers.query_own_radius(
            cx, cy, self._metric
        )
        ids = worker_slots if worker_keys is None else worker_keys[worker_slots]
        if self._max_degree is not None and task_idx.size:
            return cap_edges_per_center(
                task_idx, ids, distances, cx.shape[0], self._max_degree
            )
        order = np.lexsort((ids, task_idx))
        return task_idx[order], ids[order]

    def task_rows(
        self,
        task_x: Sequence[float],
        task_y: Sequence[float],
        worker_keys: Optional[np.ndarray] = None,
    ) -> List[List[int]]:
        """Per-task candidate rows (ascending worker ids), as plain lists."""
        cx = np.ascontiguousarray(task_x, dtype=np.float64)
        task_idx, worker_ids = self.candidate_edges(cx, task_y, worker_keys)
        rows: List[List[int]] = [[] for _ in range(cx.shape[0])]
        ids = worker_ids.tolist()
        for at, task in enumerate(task_idx.tolist()):
            rows[task].append(ids[at])
        return rows

    def worker_row(self, worker_slot: int) -> List[int]:
        """Live task slots within the worker's radius (ascending).

        The edge set a worker *arrival* contributes against the live
        tasks; the lazy matcher appends these edges so rows stay the
        arrival-ordered subsequence of the batch universe rows.
        """
        return self.worker_rows([worker_slot])[0]

    def worker_rows(self, worker_slots: Sequence[int]) -> List[List[int]]:
        """Batched :meth:`worker_row` — one plane query for the whole batch.

        The hot loop of a worker-arrival burst: each arriving worker
        needs its live-task row before entering the matcher, and the
        rows are independent of each other (worker arrivals do not
        change the task plane), so a burst can share one chunked query.
        """
        if self._tasks is None:
            raise ValueError("index built with track_tasks=False")
        slots = np.ascontiguousarray(worker_slots, dtype=np.int64)
        workers = self._workers
        if slots.size and not bool(np.all(workers._slot_cell[slots] >= 0)):
            dead = slots[workers._slot_cell[slots] < 0]
            raise ValueError(f"worker slot {int(dead[0])} is not live")
        worker_idx, task_slots, _ = self._tasks.query_circles(
            workers._xs[slots], workers._ys[slots], workers._radii[slots], self._metric
        )
        order = np.lexsort((task_slots, worker_idx))
        rows: List[List[int]] = [[] for _ in range(slots.shape[0])]
        ordered_tasks = task_slots[order].tolist()
        for at, worker in enumerate(worker_idx[order].tolist()):
            rows[worker].append(ordered_tasks[at])
        return rows


class GridSpatialIndex(Generic[T]):
    """A spatial index over labelled points, bucketed by grid cell.

    Args:
        grid: The grid used for bucketing.  It does not need to match the
            pricing grid, but re-using it is convenient and cache-friendly.
        metric: Distance metric name or callable (default Euclidean).

    Example:
        >>> from repro.spatial import Grid, Point
        >>> grid = Grid.square(100.0, 10)
        >>> index = GridSpatialIndex(grid)
        >>> index.insert("a", Point(10.0, 10.0))
        >>> index.insert("b", Point(90.0, 90.0))
        >>> sorted(label for label, _ in index.query_circle(Point(12, 12), 5.0))
        ['a']
    """

    def __init__(self, grid: Grid, metric: Union[str, DistanceMetric] = "euclidean") -> None:
        self._grid = grid
        self._metric = resolve_metric(metric)
        self._buckets: Dict[int, Dict[T, Point]] = {}
        self._locations: Dict[T, Point] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, label: T, point: Point) -> None:
        """Insert a labelled point.

        Raises:
            KeyError: if ``label`` is already present (use :meth:`move`).
        """
        if label in self._locations:
            raise KeyError(f"label {label!r} already indexed; use move()")
        cell = self._grid.locate(point)
        self._buckets.setdefault(cell, {})[label] = point
        self._locations[label] = point

    def bulk_insert(self, items: Iterable[Tuple[T, Point]]) -> None:
        """Insert many labelled points at once."""
        for label, point in items:
            self.insert(label, point)

    def remove(self, label: T) -> Point:
        """Remove a labelled point and return its last location."""
        point = self._locations.pop(label)
        cell = self._grid.locate(point)
        bucket = self._buckets.get(cell)
        if bucket is not None:
            bucket.pop(label, None)
            if not bucket:
                del self._buckets[cell]
        return point

    def move(self, label: T, new_point: Point) -> None:
        """Relocate an existing labelled point (e.g. a moving worker)."""
        self.remove(label)
        self.insert(label, new_point)

    def clear(self) -> None:
        self._buckets.clear()
        self._locations.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, label: T) -> bool:
        return label in self._locations

    def location_of(self, label: T) -> Point:
        return self._locations[label]

    def labels(self) -> List[T]:
        return list(self._locations)

    def query_circle(self, center: Point, radius: float) -> List[Tuple[T, float]]:
        """Return ``(label, distance)`` pairs within ``radius`` of ``center``.

        The boundary is inclusive, matching the paper's range constraint
        "located within the circle centered at ``l_w`` with radius ``a_w``".
        Results are sorted by distance, then by label for determinism.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        result: List[Tuple[T, float]] = []
        for cell in self._grid.cells_intersecting_circle(center, radius):
            bucket = self._buckets.get(cell)
            if not bucket:
                continue
            for label, point in bucket.items():
                distance = self._metric(center, point)
                if distance <= radius:
                    result.append((label, distance))
        result.sort(key=lambda pair: (pair[1], str(pair[0])))
        return result

    def query_cell(self, cell_index: int) -> List[T]:
        """Return the labels bucketed in the given grid cell."""
        bucket = self._buckets.get(cell_index, {})
        return list(bucket.keys())

    def nearest(self, center: Point, max_radius: Optional[float] = None) -> Optional[Tuple[T, float]]:
        """Return the closest labelled point (expanding ring search).

        Args:
            center: Query location.
            max_radius: Optional cap on the search radius; ``None`` searches
                the full region.

        Returns:
            ``(label, distance)`` or ``None`` when the index is empty or no
            point lies within ``max_radius``.
        """
        if not self._locations:
            return None
        region = self._grid.region
        limit = max_radius if max_radius is not None else (region.width + region.height)
        radius = min(self._grid.cell_width, self._grid.cell_height)
        while radius <= limit * 2:
            hits = self.query_circle(center, min(radius, limit))
            if hits:
                return hits[0]
            if radius >= limit:
                break
            radius *= 2
        hits = self.query_circle(center, limit)
        return hits[0] if hits else None

    def counts_per_cell(self) -> Dict[int, int]:
        """Number of indexed points in each non-empty cell."""
        return {cell: len(bucket) for cell, bucket in self._buckets.items() if bucket}


__all__ = [
    "DynamicGridBuckets",
    "GridBuckets",
    "GridSpatialIndex",
    "IncrementalAdjacencyIndex",
    "cap_edges_per_center",
]
