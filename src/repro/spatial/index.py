"""Grid-bucketed spatial index for circular range queries.

Building the task–worker bipartite graph requires, for every worker ``w``,
the set of tasks whose origin lies within the worker's service radius
``a_w`` (Definition 4).  A naive all-pairs scan costs ``O(|R| x |W|)``
distance evaluations per time period; the scalability experiment of the
paper runs up to 500k tasks and workers, where that becomes the dominant
cost.  :class:`GridSpatialIndex` buckets points by grid cell so a range
query only inspects the cells intersecting the query disc.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.spatial.geometry import DistanceMetric, Point, resolve_metric
from repro.spatial.grid import Grid

T = TypeVar("T", bound=Hashable)


class GridSpatialIndex(Generic[T]):
    """A spatial index over labelled points, bucketed by grid cell.

    Args:
        grid: The grid used for bucketing.  It does not need to match the
            pricing grid, but re-using it is convenient and cache-friendly.
        metric: Distance metric name or callable (default Euclidean).

    Example:
        >>> from repro.spatial import Grid, Point
        >>> grid = Grid.square(100.0, 10)
        >>> index = GridSpatialIndex(grid)
        >>> index.insert("a", Point(10.0, 10.0))
        >>> index.insert("b", Point(90.0, 90.0))
        >>> sorted(label for label, _ in index.query_circle(Point(12, 12), 5.0))
        ['a']
    """

    def __init__(self, grid: Grid, metric: Union[str, DistanceMetric] = "euclidean") -> None:
        self._grid = grid
        self._metric = resolve_metric(metric)
        self._buckets: Dict[int, Dict[T, Point]] = {}
        self._locations: Dict[T, Point] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, label: T, point: Point) -> None:
        """Insert a labelled point.

        Raises:
            KeyError: if ``label`` is already present (use :meth:`move`).
        """
        if label in self._locations:
            raise KeyError(f"label {label!r} already indexed; use move()")
        cell = self._grid.locate(point)
        self._buckets.setdefault(cell, {})[label] = point
        self._locations[label] = point

    def bulk_insert(self, items: Iterable[Tuple[T, Point]]) -> None:
        """Insert many labelled points at once."""
        for label, point in items:
            self.insert(label, point)

    def remove(self, label: T) -> Point:
        """Remove a labelled point and return its last location."""
        point = self._locations.pop(label)
        cell = self._grid.locate(point)
        bucket = self._buckets.get(cell)
        if bucket is not None:
            bucket.pop(label, None)
            if not bucket:
                del self._buckets[cell]
        return point

    def move(self, label: T, new_point: Point) -> None:
        """Relocate an existing labelled point (e.g. a moving worker)."""
        self.remove(label)
        self.insert(label, new_point)

    def clear(self) -> None:
        self._buckets.clear()
        self._locations.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, label: T) -> bool:
        return label in self._locations

    def location_of(self, label: T) -> Point:
        return self._locations[label]

    def labels(self) -> List[T]:
        return list(self._locations)

    def query_circle(self, center: Point, radius: float) -> List[Tuple[T, float]]:
        """Return ``(label, distance)`` pairs within ``radius`` of ``center``.

        The boundary is inclusive, matching the paper's range constraint
        "located within the circle centered at ``l_w`` with radius ``a_w``".
        Results are sorted by distance, then by label for determinism.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        result: List[Tuple[T, float]] = []
        for cell in self._grid.cells_intersecting_circle(center, radius):
            bucket = self._buckets.get(cell)
            if not bucket:
                continue
            for label, point in bucket.items():
                distance = self._metric(center, point)
                if distance <= radius:
                    result.append((label, distance))
        result.sort(key=lambda pair: (pair[1], str(pair[0])))
        return result

    def query_cell(self, cell_index: int) -> List[T]:
        """Return the labels bucketed in the given grid cell."""
        bucket = self._buckets.get(cell_index, {})
        return list(bucket.keys())

    def nearest(self, center: Point, max_radius: Optional[float] = None) -> Optional[Tuple[T, float]]:
        """Return the closest labelled point (expanding ring search).

        Args:
            center: Query location.
            max_radius: Optional cap on the search radius; ``None`` searches
                the full region.

        Returns:
            ``(label, distance)`` or ``None`` when the index is empty or no
            point lies within ``max_radius``.
        """
        if not self._locations:
            return None
        region = self._grid.region
        limit = max_radius if max_radius is not None else (region.width + region.height)
        radius = min(self._grid.cell_width, self._grid.cell_height)
        while radius <= limit * 2:
            hits = self.query_circle(center, min(radius, limit))
            if hits:
                return hits[0]
            if radius >= limit:
                break
            radius *= 2
        hits = self.query_circle(center, limit)
        return hits[0] if hits else None

    def counts_per_cell(self) -> Dict[int, int]:
        """Number of indexed points in each non-empty cell."""
        return {cell: len(bucket) for cell, bucket in self._buckets.items() if bucket}


__all__ = ["GridSpatialIndex"]
