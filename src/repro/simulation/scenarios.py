"""Unified scenario registry: every workload family behind one name.

The repository grew three workload families wired up ad hoc — the
synthetic Table-3 generator, the Beijing-style taxi generator and the
hand-assembled food-delivery example.  This module puts them (plus a
natively streaming flash-crowd scenario) behind one decorator-based
registry, mirroring :mod:`repro.matching.registry` and
:mod:`repro.pricing.registry`: the CLI, :class:`ParallelRunner` and the
docs all enumerate the same single source of truth.

Every scenario produces **both** execution modes:

* :meth:`Scenario.bundle` — a pre-materialised :class:`WorkloadBundle`
  for the batch :class:`~repro.simulation.engine.SimulationEngine`;
* :meth:`Scenario.stream` — a timestamped
  :class:`~repro.simulation.streaming.ArrivalStream` for the
  :class:`~repro.simulation.streaming.StreamingEngine`.

Batch-first scenarios derive their stream by unrolling the bundle
(:func:`~repro.simulation.streaming.workload_to_stream`); stream-first
scenarios derive their bundle by binning the stream
(:func:`~repro.simulation.streaming.stream_to_workload`).

Registering a new scenario takes one class::

    @register_scenario
    class MyScenario(Scenario):
        name = "my_scenario"
        description = "what it models"
        paper_ref = "none (original)"

        def bundle(self, scale=1.0, seed=None, **params):
            ...build and return a WorkloadBundle...

Keep ``docs/scenarios.md`` in sync — ``tests/docs`` fails if a registered
name is missing from the doc.

Runnable doctest (the registry itself, no workload generation):

>>> from repro.simulation.scenarios import available_scenarios, get_scenario
>>> available_scenarios()
['beijing_night', 'beijing_rush', 'churn_city', 'city_scale', 'food_delivery', 'hotspot_burst', 'synthetic']
>>> get_scenario("synthetic").paper_ref
'Table 3'
>>> get_scenario("hotspot_burst").native_stream
True
>>> get_scenario("no_such_scenario")
Traceback (most recent call last):
    ...
ValueError: unknown scenario 'no_such_scenario'; registered scenarios: \
beijing_night, beijing_rush, churn_city, city_scale, food_delivery, hotspot_burst, synthetic
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Dict, Iterator, List, Optional, Type

import numpy as np

from repro.market.acceptance import DistributionAcceptanceModel, PerGridAcceptance
from repro.market.entities import Task, Worker
from repro.market.valuation import TruncatedNormalValuation
from repro.simulation.arena import TaskColumns, WorkerColumns
from repro.simulation.config import (
    BeijingConfig,
    ChunkedWorkload,
    SyntheticConfig,
    WorkloadBundle,
)
from repro.simulation.generator import SyntheticWorkloadGenerator
from repro.simulation.streaming import (
    ArrivalEvent,
    ArrivalStream,
    TaskArrival,
    WorkerArrival,
    stream_to_workload,
    workload_to_stream,
)
from repro.simulation.taxi import BeijingTaxiGenerator
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import Grid
from repro.utils.rng import derive_seed


class Scenario:
    """Base class for registered scenarios.

    Subclasses set the class attributes and implement :meth:`bundle`
    and/or :meth:`stream`; whichever mode is not implemented natively is
    derived from the other, so every scenario supports both.

    Attributes:
        name: Registry key (``--scenario`` value).
        description: One-line summary for ``--help`` and the docs.
        paper_ref: Paper provenance (table/figure/section, or
            ``"none (original)"`` for scenarios beyond the paper).
        native_stream: Whether the scenario generates arrivals as a true
            event stream (as opposed to unrolling a batch workload).
        default_scale: Scale used when the caller does not pick one; the
            paper-sized families default small so CLI runs stay tractable.
        parameters: Extra keyword parameters accepted by
            :meth:`bundle`/:meth:`stream`, documented name -> meaning.
    """

    name: str = ""
    description: str = ""
    paper_ref: str = ""
    native_stream: bool = False
    default_scale: float = 1.0
    parameters: Dict[str, str] = {}

    def bundle(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> WorkloadBundle:
        """Pre-materialised workload (bin the native stream by default)."""
        if type(self).stream is Scenario.stream:
            raise NotImplementedError(
                f"scenario {self.name!r} must implement bundle() or stream()"
            )
        return stream_to_workload(self.stream(scale=scale, seed=seed, **params))

    def stream(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> ArrivalStream:
        """Arrival stream (unroll the batch workload by default)."""
        if type(self).bundle is Scenario.bundle:
            raise NotImplementedError(
                f"scenario {self.name!r} must implement bundle() or stream()"
            )
        return workload_to_stream(self.bundle(scale=scale, seed=seed, **params))


_SCENARIOS: Dict[str, Type[Scenario]] = {}


def register_scenario(cls: Type[Scenario]) -> Type[Scenario]:
    """Class decorator registering a :class:`Scenario` under ``cls.name``.

    Re-registering a name overwrites the previous scenario, which lets
    tests swap in instrumented variants.
    """
    key = cls.name.strip().lower()
    if not key:
        raise ValueError("scenario name must be non-empty")
    _SCENARIOS[key] = cls
    return cls


def get_scenario(name: str) -> Scenario:
    """Instantiate a registered scenario by (case-insensitive) name.

    Raises:
        ValueError: for unknown names; the message lists the registered
            scenarios so callers can self-correct.
    """
    key = str(name).strip().lower()
    if key not in _SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; "
            f"registered scenarios: {', '.join(available_scenarios())}"
        )
    return _SCENARIOS[key]()


def available_scenarios() -> List[str]:
    """Names of all registered scenarios, sorted alphabetically."""
    return sorted(_SCENARIOS)


# ---------------------------------------------------------------------------
# paper workload families
# ---------------------------------------------------------------------------
@register_scenario
class SyntheticScenario(Scenario):
    """The paper's synthetic setup (bold entries of Table 3)."""

    name = "synthetic"
    description = "Table-3 synthetic market (Gaussian spatiotemporal demand)"
    paper_ref = "Table 3"
    default_scale = 0.01
    parameters = {
        "temporal_mu": "mean of the tasks' start-time distribution (fraction of horizon)",
        "demand_distribution": "'normal' (default) or 'exponential' (Appendix D)",
    }

    def bundle(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> WorkloadBundle:
        base = SyntheticConfig.paper_default()
        overrides = dict(
            num_workers=max(10, int(round(base.num_workers * scale))),
            num_tasks=max(20, int(round(base.num_tasks * scale))),
            num_periods=max(5, int(round(base.num_periods * scale))),
        )
        if seed is not None:
            overrides["seed"] = int(seed)
        overrides.update(params)
        return SyntheticWorkloadGenerator(replace(base, **overrides)).generate()


class _BeijingScenario(Scenario):
    """Shared machinery of the two Table-4 taxi variants."""

    variant_dataset: int = 1
    default_scale = 0.01
    parameters = {
        "worker_duration": "delta_w, periods a driver stays available (Fig. 8c-8d sweep)",
    }

    def bundle(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> WorkloadBundle:
        base = (
            BeijingConfig.dataset_1() if self.variant_dataset == 1 else BeijingConfig.dataset_2()
        )
        config = base.scaled(scale)
        overrides = dict(
            num_periods=max(10, int(round(base.num_periods * min(1.0, max(4 * scale, 0.25)))))
        )
        if seed is not None:
            overrides["seed"] = int(seed)
        overrides.update(params)
        return BeijingTaxiGenerator(replace(config, **overrides)).generate()


@register_scenario
class BeijingRushScenario(_BeijingScenario):
    name = "beijing_rush"
    description = "Beijing taxi rush hour, heavy hotspot demand (Table 4 #1)"
    paper_ref = "Table 4, dataset #1 (5-7 pm)"
    variant_dataset = 1


@register_scenario
class BeijingNightScenario(_BeijingScenario):
    name = "beijing_night"
    description = "Beijing taxi late night, sparse scattered demand (Table 4 #2)"
    paper_ref = "Table 4, dataset #2 (0-2 am)"
    variant_dataset = 2


# ---------------------------------------------------------------------------
# beyond-the-paper scenarios
# ---------------------------------------------------------------------------
@register_scenario
class FoodDeliveryScenario(Scenario):
    """A food-delivery lunch rush (the paper's Section 1 motivation).

    Demand concentrates around office districts mid-window and is highly
    price-sensitive; couriers start near restaurant clusters with a short
    service radius.  A library-level port of
    ``examples/food_delivery_campaign.py``.
    """

    name = "food_delivery"
    description = "lunch-rush food delivery: office-district demand, courier supply"
    paper_ref = "Section 1 motivation (Seamless-style platform); none (original workload)"
    parameters = {
        "num_periods": "delivery batches in the 90-minute rush (default 24)",
    }

    CITY_SIDE_KM = 12.0
    NUM_ORDERS = 1800
    NUM_COURIERS = 260
    OFFICE_DISTRICTS = (Point(3.0, 9.0), Point(8.5, 8.0), Point(6.0, 4.0))
    RESTAURANT_CLUSTERS = (
        Point(3.5, 8.0),
        Point(8.0, 7.0),
        Point(6.5, 5.0),
        Point(2.0, 3.0),
    )

    def bundle(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> WorkloadBundle:
        num_periods = int(params.pop("num_periods", 24))
        if params:
            raise TypeError(f"unexpected scenario parameters: {sorted(params)}")
        if num_periods <= 0 or scale <= 0:
            raise ValueError("num_periods and scale must be positive")
        side = self.CITY_SIDE_KM
        num_orders = max(40, int(round(self.NUM_ORDERS * scale)))
        num_couriers = max(8, int(round(self.NUM_COURIERS * scale)))
        rng = np.random.default_rng(derive_seed(23 if seed is None else int(seed), "food"))
        grid = Grid(BoundingBox.square(side), 6, 6)

        models = {}
        for cell in grid.cells():
            distance_to_center = cell.center.distance_to(Point(side / 2, side / 2))
            mean = 2.4 - 0.08 * distance_to_center + float(rng.normal(0.0, 0.05))
            models[cell.index] = DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=float(np.clip(mean, 1.2, 3.5)), std=0.8)
            )
        acceptance = PerGridAcceptance(
            models=models,
            default=DistributionAcceptanceModel(TruncatedNormalValuation(mean=2.0, std=0.8)),
        )

        tasks_by_period: List[List[Task]] = [[] for _ in range(num_periods)]
        order_periods = np.clip(
            rng.normal(num_periods * 0.55, num_periods * 0.2, size=num_orders),
            0,
            num_periods - 1,
        ).astype(int)
        for order_id in range(num_orders):
            district = self.OFFICE_DISTRICTS[int(rng.integers(len(self.OFFICE_DISTRICTS)))]
            origin = Point(
                float(np.clip(district.x + rng.normal(0, 0.8), 0, side)),
                float(np.clip(district.y + rng.normal(0, 0.8), 0, side)),
            )
            hop = rng.uniform(0.5, 3.0)
            angle = rng.uniform(0, 2 * np.pi)
            destination = Point(
                float(np.clip(origin.x + hop * np.cos(angle), 0, side)),
                float(np.clip(origin.y + hop * np.sin(angle), 0, side)),
            )
            grid_index = grid.locate(origin)
            period = int(order_periods[order_id])
            tasks_by_period[period].append(
                Task(
                    task_id=order_id,
                    period=period,
                    origin=origin,
                    destination=destination,
                    valuation=acceptance.model_for(grid_index).sample_valuation(rng),
                    grid_index=grid_index,
                )
            )

        workers_by_period: List[List[Worker]] = [[] for _ in range(num_periods)]
        courier_periods = np.clip(
            rng.normal(num_periods * 0.3, num_periods * 0.25, size=num_couriers),
            0,
            num_periods - 1,
        ).astype(int)
        for courier_id in range(num_couriers):
            cluster = self.RESTAURANT_CLUSTERS[int(rng.integers(len(self.RESTAURANT_CLUSTERS)))]
            location = Point(
                float(np.clip(cluster.x + rng.normal(0, 1.0), 0, side)),
                float(np.clip(cluster.y + rng.normal(0, 1.0), 0, side)),
            )
            period = int(courier_periods[courier_id])
            workers_by_period[period].append(
                Worker(
                    worker_id=courier_id,
                    period=period,
                    location=location,
                    radius=2.0,
                    duration=10,
                )
            )

        return WorkloadBundle(
            grid=grid,
            tasks_by_period=tasks_by_period,
            workers_by_period=workers_by_period,
            acceptance=acceptance,
            metric="euclidean",
            price_bounds=(1.0, 4.0),
            description=f"food-delivery(|orders|={num_orders}, |couriers|={num_couriers})",
        )


@register_scenario
class HotspotBurstScenario(Scenario):
    """A flash crowd: quiet baseline arrivals, then a demand burst.

    A concert lets out / a storm hits: task arrivals multiply around one
    hotspot cell for a contiguous stretch of the horizon while worker
    supply reacts with a lag.  Natively streaming — events are generated
    on the fly with per-event timestamps — and exposed in batch mode by
    binning the stream at the period length.
    """

    name = "hotspot_burst"
    description = "flash-crowd stream: baseline arrivals with a hotspot demand burst"
    paper_ref = "none (original; stresses the heavy-traffic north star)"
    native_stream = True
    parameters = {
        "num_periods": "horizon length in periods (default 60)",
        "burst_factor": "task-rate multiplier during the burst (default 6.0)",
    }

    REGION_SIDE = 100.0
    GRID_SIDE = 8
    BASE_TASK_RATE = 60.0  # per period at scale 1.0
    BASE_WORKER_RATE = 18.0
    WORKER_RADIUS = 12.0
    WORKER_DURATION = 15

    def stream(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> ArrivalStream:
        num_periods = int(params.pop("num_periods", 60))
        burst_factor = float(params.pop("burst_factor", 6.0))
        if params:
            raise TypeError(f"unexpected scenario parameters: {sorted(params)}")
        if num_periods <= 0 or burst_factor <= 0 or scale <= 0:
            raise ValueError("num_periods, burst_factor and scale must be positive")
        root_seed = 31 if seed is None else int(seed)
        side = self.REGION_SIDE
        grid = Grid(BoundingBox.square(side), self.GRID_SIDE, self.GRID_SIDE)

        setup_rng = np.random.default_rng(derive_seed(root_seed, "burst-setup"))
        hotspot = Point(
            float(setup_rng.uniform(0.25 * side, 0.75 * side)),
            float(setup_rng.uniform(0.25 * side, 0.75 * side)),
        )
        models = {}
        for cell in grid.cells():
            distance = cell.center.distance_to(hotspot)
            # Captive demand near the hotspot tolerates higher prices.
            mean = 2.0 + 1.2 * np.exp(-distance / (0.3 * side))
            mean = float(np.clip(mean + setup_rng.normal(0.0, 0.1), 1.0, 5.0))
            models[cell.index] = DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=mean, std=1.0, lower=1.0, upper=5.0)
            )
        acceptance = PerGridAcceptance(
            models=models,
            default=DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=2.0, std=1.0, lower=1.0, upper=5.0)
            ),
        )

        burst_start = int(num_periods * 0.4)
        burst_end = int(num_periods * 0.6)
        task_rate = self.BASE_TASK_RATE * scale
        worker_rate = self.BASE_WORKER_RATE * scale

        def _events() -> Iterator[ArrivalEvent]:
            rng = np.random.default_rng(derive_seed(root_seed, "burst-events"))
            task_id = 0
            worker_id = 0
            for period in range(num_periods):
                bursting = burst_start <= period < burst_end
                lagged_burst = burst_start + 2 <= period < burst_end + 4
                num_tasks = int(rng.poisson(task_rate * (burst_factor if bursting else 1.0)))
                num_workers = int(
                    rng.poisson(worker_rate * (1.0 + 0.5 * burst_factor if lagged_burst else 1.0))
                )
                stamped: List[ArrivalEvent] = []
                for _ in range(num_workers):
                    location = Point(
                        float(rng.uniform(0.0, side)), float(rng.uniform(0.0, side))
                    )
                    stamped.append(
                        WorkerArrival(
                            time=period + float(rng.uniform(0.0, 1.0)),
                            worker=Worker(
                                worker_id=worker_id,
                                period=period,
                                location=location,
                                radius=self.WORKER_RADIUS,
                                duration=self.WORKER_DURATION,
                            ),
                        )
                    )
                    worker_id += 1
                for _ in range(num_tasks):
                    # During the burst, 80% of demand erupts near the hotspot.
                    if bursting and rng.random() < 0.8:
                        origin = Point(
                            float(np.clip(hotspot.x + rng.normal(0.0, 0.05 * side), 0.0, side)),
                            float(np.clip(hotspot.y + rng.normal(0.0, 0.05 * side), 0.0, side)),
                        )
                    else:
                        origin = Point(
                            float(rng.uniform(0.0, side)), float(rng.uniform(0.0, side))
                        )
                    destination = Point(
                        float(rng.uniform(0.0, side)), float(rng.uniform(0.0, side))
                    )
                    grid_index = grid.locate(origin)
                    stamped.append(
                        TaskArrival(
                            time=period + float(rng.uniform(0.0, 1.0)),
                            task=Task(
                                task_id=task_id,
                                period=period,
                                origin=origin,
                                destination=destination,
                                valuation=acceptance.model_for(grid_index).sample_valuation(rng),
                                grid_index=grid_index,
                            ),
                        )
                    )
                    task_id += 1
                stamped.sort(key=lambda event: event.time)
                for event in stamped:
                    yield event

        def _demand_grids() -> List[int]:
            # One deterministic pass over the event factory: the same
            # demand-cell set a batch pre-scan would find, computed only
            # when calibration asks for it.
            return sorted(
                {
                    event.task.grid_index
                    for event in _events()
                    if isinstance(event, TaskArrival)
                    and event.task.grid_index is not None
                }
            )

        return ArrivalStream(
            grid=grid,
            acceptance=acceptance,
            events=_events,
            metric="euclidean",
            price_bounds=(1.0, 5.0),
            description=(
                f"hotspot-burst(T={num_periods}, rate={task_rate:.1f}/period, "
                f"burst x{burst_factor:g})"
            ),
            horizon=float(num_periods),
            demand_grids=_demand_grids,
        )


@register_scenario
class ChurnCityScenario(Scenario):
    """A high-churn market: long-lived requests, short-lived workers.

    The stress workload for the dynamic (delta-repair) dispatch engine:
    tasks stay open for several dispatch windows (each carries an
    explicit ``Task.duration``), workers come online for short shifts and
    depart again, so every window the standing population both gains and
    loses members — the churn delta the
    :class:`~repro.simulation.streaming.DynamicStreamingEngine` repairs
    around.  With the defaults roughly ``2 / task_lifetime`` (~20%) of
    the standing task population turns over per unit window.  Natively
    streaming; the batch view bins arrivals like any other stream-first
    scenario (batch engines ignore task durations).
    """

    name = "churn_city"
    description = "high-churn stream: multi-window task lifetimes, short worker shifts"
    paper_ref = "none (original; stresses dynamic delta-repair dispatch)"
    native_stream = True
    parameters = {
        "num_periods": "horizon length in periods (default 50)",
        "task_lifetime": "mean periods a request stays open (default 8.0)",
        "worker_lifetime": "mean periods a worker shift lasts (default 6.0)",
    }

    REGION_SIDE = 80.0
    GRID_SIDE = 8
    BASE_TASK_RATE = 40.0  # per period at scale 1.0
    BASE_WORKER_RATE = 30.0
    WORKER_RADIUS = 14.0
    NUM_DISTRICTS = 6

    def stream(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> ArrivalStream:
        num_periods = int(params.pop("num_periods", 50))
        task_lifetime = float(params.pop("task_lifetime", 8.0))
        worker_lifetime = float(params.pop("worker_lifetime", 6.0))
        if params:
            raise TypeError(f"unexpected scenario parameters: {sorted(params)}")
        if min(num_periods, task_lifetime, worker_lifetime, scale) <= 0:
            raise ValueError(
                "num_periods, task_lifetime, worker_lifetime and scale "
                "must be positive"
            )
        root_seed = 53 if seed is None else int(seed)
        side = self.REGION_SIDE
        grid = Grid(BoundingBox.square(side), self.GRID_SIDE, self.GRID_SIDE)

        setup_rng = np.random.default_rng(derive_seed(root_seed, "churn-setup"))
        districts = [
            Point(
                float(setup_rng.uniform(0.2 * side, 0.8 * side)),
                float(setup_rng.uniform(0.2 * side, 0.8 * side)),
            )
            for _ in range(self.NUM_DISTRICTS)
        ]
        models = {}
        for cell in grid.cells():
            distance = min(cell.center.distance_to(spot) for spot in districts)
            mean = 2.0 + 1.0 * np.exp(-distance / (0.25 * side))
            mean = float(np.clip(mean + setup_rng.normal(0.0, 0.08), 1.2, 4.5))
            models[cell.index] = DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=mean, std=1.0, lower=1.0, upper=5.0)
            )
        acceptance = PerGridAcceptance(
            models=models,
            default=DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=2.0, std=1.0, lower=1.0, upper=5.0)
            ),
        )

        task_rate = self.BASE_TASK_RATE * scale
        worker_rate = self.BASE_WORKER_RATE * scale

        def _events() -> Iterator[ArrivalEvent]:
            rng = np.random.default_rng(derive_seed(root_seed, "churn-events"))
            task_id = 0
            worker_id = 0
            for period in range(num_periods):
                stamped: List[ArrivalEvent] = []
                num_workers = int(rng.poisson(worker_rate))
                for _ in range(num_workers):
                    # Shifts jitter around the mean but always span at
                    # least one period, so departures spread over the
                    # horizon instead of synchronising.
                    shift = max(
                        1, int(round(worker_lifetime * rng.uniform(0.5, 1.5)))
                    )
                    stamped.append(
                        WorkerArrival(
                            time=period + float(rng.uniform(0.0, 1.0)),
                            worker=Worker(
                                worker_id=worker_id,
                                period=period,
                                location=Point(
                                    float(rng.uniform(0.0, side)),
                                    float(rng.uniform(0.0, side)),
                                ),
                                radius=self.WORKER_RADIUS,
                                duration=shift,
                            ),
                        )
                    )
                    worker_id += 1
                num_tasks = int(rng.poisson(task_rate))
                for _ in range(num_tasks):
                    district = districts[int(rng.integers(len(districts)))]
                    origin = Point(
                        float(np.clip(district.x + rng.normal(0.0, 0.1 * side), 0.0, side)),
                        float(np.clip(district.y + rng.normal(0.0, 0.1 * side), 0.0, side)),
                    )
                    destination = Point(
                        float(rng.uniform(0.0, side)), float(rng.uniform(0.0, side))
                    )
                    grid_index = grid.locate(origin)
                    stamped.append(
                        TaskArrival(
                            time=period + float(rng.uniform(0.0, 1.0)),
                            task=Task(
                                task_id=task_id,
                                period=period,
                                origin=origin,
                                destination=destination,
                                valuation=acceptance.model_for(grid_index).sample_valuation(rng),
                                grid_index=grid_index,
                                duration=float(task_lifetime * rng.uniform(0.5, 1.5)),
                            ),
                        )
                    )
                    task_id += 1
                stamped.sort(key=lambda event: event.time)
                for event in stamped:
                    yield event

        def _demand_grids() -> List[int]:
            return sorted(
                {
                    event.task.grid_index
                    for event in _events()
                    if isinstance(event, TaskArrival)
                    and event.task.grid_index is not None
                }
            )

        return ArrivalStream(
            grid=grid,
            acceptance=acceptance,
            events=_events,
            metric="euclidean",
            price_bounds=(1.0, 5.0),
            description=(
                f"churn-city(T={num_periods}, rate={task_rate:.1f}/period, "
                f"lifetime~{task_lifetime:g}, shift~{worker_lifetime:g})"
            ),
            horizon=float(num_periods),
            demand_grids=_demand_grids,
        )


@register_scenario
class CityScaleScenario(Scenario):
    """A city-scale horizon: one million tasks at scale 1.0.

    The ROADMAP's "heavy traffic" north star made concrete: a dense city
    where every period carries thousands of tasks whose demand mixes a
    uniform background with a handful of hotspot districts (captive
    demand near hotspots tolerates higher prices).  Per-period *density*
    is a property of the city, so ``scale`` stretches or shrinks the
    **horizon length** instead of thinning the traffic — benchmarks at
    any scale exercise the same per-period market the sharded engine is
    built for.

    The workload is generated **lazily in period chunks**
    (:meth:`chunked` returns a
    :class:`~repro.simulation.config.ChunkedWorkload`): each period
    derives its own RNG stream from ``(seed, "city-period", period)``,
    so a full 1M-task pass holds only one chunk plus the worker pool in
    memory and any chunk can be regenerated independently.
    :meth:`bundle` materialises the chunks (small scales only) and
    :meth:`stream` unrolls them into timestamped arrivals without ever
    materialising the horizon.
    """

    name = "city_scale"
    description = "city-scale dense market, ~1M tasks at scale 1.0 (sharding stress)"
    paper_ref = "none (original; the ROADMAP 'heavy traffic' north star)"
    default_scale = 0.01
    parameters = {
        "num_periods": "horizon override in periods (default round(400 * scale))",
        "tasks_per_period": "mean task arrivals per period (default 2500)",
        "workers_per_period": "mean worker arrivals per period (default 1200)",
    }

    REGION_SIDE = 100.0
    GRID_SIDE = 16
    NUM_PERIODS = 400
    TASKS_PER_PERIOD = 2500
    WORKERS_PER_PERIOD = 1200
    WORKER_RADIUS = 15.0
    WORKER_DURATION = 8
    NUM_HOTSPOTS = 12

    def chunked(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> ChunkedWorkload:
        """The lazily generated workload (the sharded engine's native input)."""
        tasks_per_period = int(params.pop("tasks_per_period", self.TASKS_PER_PERIOD))
        workers_per_period = int(
            params.pop("workers_per_period", self.WORKERS_PER_PERIOD)
        )
        num_periods = params.pop("num_periods", None)
        if params:
            raise TypeError(f"unexpected scenario parameters: {sorted(params)}")
        if scale <= 0:
            raise ValueError("scale must be positive")
        if num_periods is None:
            num_periods = max(2, int(round(self.NUM_PERIODS * scale)))
        num_periods = int(num_periods)
        if num_periods <= 0 or tasks_per_period <= 0 or workers_per_period <= 0:
            raise ValueError(
                "num_periods, tasks_per_period and workers_per_period must be positive"
            )
        root_seed = 47 if seed is None else int(seed)
        side = self.REGION_SIDE
        grid = Grid(BoundingBox.square(side), self.GRID_SIDE, self.GRID_SIDE)

        setup_rng = np.random.default_rng(derive_seed(root_seed, "city-setup"))
        hotspots = [
            Point(
                float(setup_rng.uniform(0.15 * side, 0.85 * side)),
                float(setup_rng.uniform(0.15 * side, 0.85 * side)),
            )
            for _ in range(self.NUM_HOTSPOTS)
        ]
        models = {}
        for cell in grid.cells():
            distance = min(cell.center.distance_to(spot) for spot in hotspots)
            mean = 2.0 + 1.0 * np.exp(-distance / (0.25 * side))
            mean = float(np.clip(mean + setup_rng.normal(0.0, 0.08), 1.2, 4.5))
            models[cell.index] = DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=mean, std=1.0, lower=1.0, upper=5.0)
            )
        acceptance = PerGridAcceptance(
            models=models,
            default=DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=2.0, std=1.0, lower=1.0, upper=5.0)
            ),
        )
        hotspot_xs = np.array([spot.x for spot in hotspots])
        hotspot_ys = np.array([spot.y for spot in hotspots])
        radius = self.WORKER_RADIUS
        duration = self.WORKER_DURATION
        # Per-cell truncnorm parameters (std is 1 everywhere), 0-based by
        # cell position, for the batched inverse-CDF sampling below.
        cell_means = np.fromiter(
            (models[cell.index].distribution.mean for cell in grid.cells()),
            dtype=np.float64,
            count=grid.num_cells,
        )

        def _column_chunks() -> Iterator[tuple]:
            from scipy import stats

            for period in range(num_periods):
                rng = np.random.default_rng(
                    derive_seed(root_seed, "city-period", period)
                )
                num_tasks = int(rng.poisson(tasks_per_period))
                num_workers = int(rng.poisson(workers_per_period))
                # Half the demand erupts around the hotspot districts,
                # the rest is uniform background traffic: dense everywhere
                # (the whole city is busy), denser near the districts.
                spot_choice = rng.integers(len(hotspots), size=num_tasks)
                near_spot = rng.random(num_tasks) < 0.5
                xs = np.where(
                    near_spot,
                    hotspot_xs[spot_choice] + rng.normal(0.0, 0.12 * side, num_tasks),
                    rng.uniform(0.0, side, num_tasks),
                )
                ys = np.where(
                    near_spot,
                    hotspot_ys[spot_choice] + rng.normal(0.0, 0.12 * side, num_tasks),
                    rng.uniform(0.0, side, num_tasks),
                )
                xs = np.clip(xs, 0.0, side)
                ys = np.clip(ys, 0.0, side)
                hops = rng.uniform(0.5, 8.0, num_tasks)
                angles = rng.uniform(0.0, 2.0 * np.pi, num_tasks)
                dest_xs = np.clip(xs + hops * np.cos(angles), 0.0, side)
                dest_ys = np.clip(ys + hops * np.sin(angles), 0.0, side)
                cells = grid.locate_many(xs, ys)
                # Valuations by batched inverse-transform sampling: the
                # scalar path drew `uniform(size=n)` per demanded cell in
                # ascending cell order and mapped through that cell's
                # truncnorm ppf, so one uniform draw in cell-sorted task
                # order plus one array-parameter ppf call consumes the
                # same stream and yields bit-identical valuations (the
                # per-cell loop cost one scipy dispatch per cell, which
                # dominated 1M-task generation).
                valuations = np.empty(num_tasks, dtype=np.float64)
                if num_tasks:
                    order = np.argsort(cells, kind="stable")
                    means = cell_means[cells[order] - 1]
                    uniforms = rng.uniform(size=num_tasks)
                    valuations[order] = stats.truncnorm.ppf(
                        uniforms, 1.0 - means, 5.0 - means, loc=means, scale=1.0
                    )
                task_base = period * 10_000_000
                task_cols = TaskColumns(
                    period=period,
                    task_ids=np.arange(task_base, task_base + num_tasks, dtype=np.int64),
                    xs=xs,
                    ys=ys,
                    dest_xs=dest_xs,
                    dest_ys=dest_ys,
                    # Scalar math.hypot per task: np.hypot drifts by 1 ulp
                    # from the libm hypot Task.__post_init__ would call,
                    # and the distances feed matching weights that must be
                    # bit-identical to the object path.
                    distances=np.fromiter(
                        (
                            math.hypot(xs[pos] - dest_xs[pos], ys[pos] - dest_ys[pos])
                            for pos in range(num_tasks)
                        ),
                        dtype=np.float64,
                        count=num_tasks,
                    ),
                    valuations=valuations,
                    has_valuation=np.ones(num_tasks, dtype=bool),
                    cells=cells,
                )
                worker_cols = WorkerColumns(
                    worker_ids=np.arange(
                        task_base, task_base + num_workers, dtype=np.int64
                    ),
                    periods=np.full(num_workers, period, dtype=np.int64),
                    xs=rng.uniform(0.0, side, num_workers),
                    ys=rng.uniform(0.0, side, num_workers),
                    radii=np.full(num_workers, radius, dtype=np.float64),
                    durations=np.full(num_workers, duration, dtype=np.int64),
                )
                yield task_cols, worker_cols

        def _chunks() -> Iterator[tuple]:
            for task_cols, worker_cols in _column_chunks():
                yield task_cols.to_tasks(), worker_cols.to_workers()

        return ChunkedWorkload(
            grid=grid,
            periods=_chunks,
            column_periods=_column_chunks,
            num_periods=num_periods,
            acceptance=acceptance,
            metric="euclidean",
            price_bounds=(1.0, 5.0),
            description=(
                f"city-scale(T={num_periods}, ~{tasks_per_period}/period, "
                f"~{num_periods * tasks_per_period} tasks)"
            ),
            total_tasks_hint=num_periods * tasks_per_period,
        )

    def bundle(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> WorkloadBundle:
        """Materialised chunks — small scales only (1M tasks won't fit)."""
        return self.chunked(scale=scale, seed=seed, **params).materialize()

    def stream(
        self, scale: float = 1.0, seed: Optional[int] = None, **params: object
    ) -> ArrivalStream:
        """Unroll the chunks into timestamped arrivals, staying lazy."""
        chunked = self.chunked(scale=scale, seed=seed, **params)

        def _events() -> Iterator[ArrivalEvent]:
            for period, (tasks, workers) in enumerate(chunked.iter_periods()):
                count = len(workers) + len(tasks)
                if not count:
                    continue
                step = 1.0 / count
                offset = 0
                for worker in workers:
                    yield WorkerArrival(time=period + offset * step, worker=worker)
                    offset += 1
                for task in tasks:
                    yield TaskArrival(time=period + offset * step, task=task)
                    offset += 1

        def _demand_grids() -> List[int]:
            # Columnar pass: cells come straight off the generated
            # arrays, so the scan never materialises task objects.
            seen: set = set()
            for task_cols, _ in chunked.column_periods():
                seen.update(int(cell) for cell in np.unique(task_cols.cells))
            return sorted(seen)

        return ArrivalStream(
            grid=chunked.grid,
            acceptance=chunked.acceptance,
            events=_events,
            metric=chunked.metric,
            price_bounds=chunked.price_bounds,
            description=chunked.description,
            horizon=float(chunked.num_periods),
            demand_grids=_demand_grids,
        )


__all__ = [
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "BeijingNightScenario",
    "BeijingRushScenario",
    "ChurnCityScenario",
    "CityScaleScenario",
    "FoodDeliveryScenario",
    "HotspotBurstScenario",
    "SyntheticScenario",
]
