"""Simulation substrate: workload generation and the discrete-time engine.

The paper's evaluation is simulation-based: tasks and workers are generated
from configurable spatiotemporal distributions (Table 3), pricing
strategies quote per-grid prices every period, requesters accept or reject
according to their private valuations, and accepted tasks are served via a
maximum-weight matching (Definition 5).  This subpackage implements that
pipeline:

* :mod:`repro.simulation.config` — dataclasses mirroring Table 3 (synthetic)
  and Table 4 (Beijing-style) parameters, with the paper's defaults;
* :mod:`repro.simulation.generator` — the synthetic workload generator;
* :mod:`repro.simulation.taxi` — the synthetic Beijing taxi-trace generator
  substituting the proprietary DiDi data (see DESIGN.md);
* :mod:`repro.simulation.oracle` — the probe oracle backing Algorithm 1's
  calibration against the ground-truth acceptance models;
* :mod:`repro.simulation.pipeline` — the vectorised per-period stages
  (quote → decide → match → feedback) over the struct-of-arrays view;
* :mod:`repro.simulation.engine` — the period-by-period driver over the
  pipeline (worker-pool dynamics, metrics);
* :mod:`repro.simulation.streaming` — the event-driven streaming engine:
  timestamped arrival streams, configurable dispatch windows, and an
  incremental cross-window matching that reproduces the batch engine
  bit-identically when binned at the period length;
* :mod:`repro.simulation.sharded` — the spatially sharded engine: the grid
  tiled into rectangular regions matched independently per period, with a
  halo-exchange reconciliation pass at shard boundaries (bit-identical to
  the batch engine at one shard) and support for lazily chunked
  city-scale workloads;
* :mod:`repro.simulation.scenarios` — the scenario registry putting every
  workload family (synthetic, Beijing taxi, food delivery, hotspot burst,
  city scale) behind one name, each producing both a batch bundle and a
  stream;
* :mod:`repro.simulation.legacy` — the seed scalar loop, kept as the
  regression/benchmark reference;
* :mod:`repro.simulation.metrics` — revenue / runtime / memory bookkeeping.
"""

from repro.simulation.config import (
    BeijingConfig,
    ChunkedWorkload,
    SyntheticConfig,
    WorkloadBundle,
)
from repro.simulation.generator import SyntheticWorkloadGenerator
from repro.simulation.taxi import BeijingTaxiGenerator
from repro.simulation.oracle import SimulatedProbeOracle
from repro.simulation.engine import SimulationEngine, SimulationResult, PeriodOutcome
from repro.simulation.sharded import ShardedEngine
from repro.simulation.pipeline import DecideResult, PeriodPipeline, PeriodResult
from repro.simulation.metrics import MetricsCollector, StrategyMetrics
from repro.simulation.streaming import (
    ArrivalStream,
    StreamingEngine,
    TaskArrival,
    WorkerArrival,
    stream_to_workload,
    workload_to_stream,
)
from repro.simulation.scenarios import (
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)

__all__ = [
    "SyntheticConfig",
    "BeijingConfig",
    "WorkloadBundle",
    "ChunkedWorkload",
    "SyntheticWorkloadGenerator",
    "BeijingTaxiGenerator",
    "SimulatedProbeOracle",
    "SimulationEngine",
    "SimulationResult",
    "ShardedEngine",
    "PeriodOutcome",
    "PeriodPipeline",
    "PeriodResult",
    "DecideResult",
    "MetricsCollector",
    "StrategyMetrics",
    "ArrivalStream",
    "StreamingEngine",
    "TaskArrival",
    "WorkerArrival",
    "stream_to_workload",
    "workload_to_stream",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
]
