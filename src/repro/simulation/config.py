"""Simulation configuration mirroring Tables 3 and 4 of the paper.

Synthetic defaults (bold entries of Table 3): 5 000 workers, 20 000 tasks,
temporal mean 0.5, spatial mean 0.5, demand (valuation) distribution
``Normal(2.0, 1.0)`` truncated to ``[1, 5]``, ``T = 400`` periods,
``G = 10 x 10`` grids, worker radius ``a_w = 10`` on a 100 x 100 region.

The Beijing configuration (Table 4) covers a 10 x 8 grid over the
``(116.30, 39.84) – (116.50, 40.0)`` rectangle, 120 one-minute periods,
worker radius 3 km and worker duration swept over {5, 10, 15, 20, 25}
periods; the two dataset variants model the 5–7 pm rush hour (heavy
demand) and the 0–2 am window (light demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.market.acceptance import PerGridAcceptance
from repro.market.entities import Task, Worker
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import Grid


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic workload (Table 3).

    Attributes:
        num_workers: ``|W|`` — total workers over the whole horizon.
        num_tasks: ``|R|`` — total tasks over the whole horizon.
        temporal_mu: Mean of the tasks' start-time distribution as a
            fraction of the horizon (workers are centred at 0.5).
        temporal_sigma: Standard deviation of the start-time distribution,
            as a fraction of the horizon.
        spatial_mean: Mean of the tasks'/workers' origin distribution as a
            fraction of the region side (0.5 = region centre).
        spatial_sigma: Standard deviation of the origin distribution as a
            fraction of the region side.
        demand_mu: Mean of the valuation (demand) normal distribution.
        demand_sigma: Standard deviation of the valuation distribution.
        demand_distribution: ``"normal"`` (default) or ``"exponential"``
            (Appendix D); exponential uses ``demand_rate``.
        demand_rate: Rate parameter of the exponential demand distribution.
        num_periods: ``T`` — number of one-minute time periods.
        grid_side: Number of grid cells per side (``G = grid_side^2``).
        worker_radius: ``a_w`` — service radius of every worker.
        region_side: Side length of the square region (paper: 100).
        valuation_bounds: Truncation interval of the valuations (paper: [1, 5]).
        price_bounds: Quotable price interval ``[p_min, p_max]``.
        seed: Root seed of the workload.
    """

    num_workers: int = 5000
    num_tasks: int = 20000
    temporal_mu: float = 0.5
    temporal_sigma: float = 0.2
    spatial_mean: float = 0.5
    spatial_sigma: float = 0.2
    demand_mu: float = 2.0
    demand_sigma: float = 1.0
    demand_distribution: str = "normal"
    demand_rate: float = 1.0
    num_periods: int = 400
    grid_side: int = 10
    worker_radius: float = 10.0
    region_side: float = 100.0
    valuation_bounds: Tuple[float, float] = (1.0, 5.0)
    price_bounds: Tuple[float, float] = (1.0, 5.0)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.num_tasks <= 0:
            raise ValueError("num_workers and num_tasks must be positive")
        if not 0.0 <= self.temporal_mu <= 1.0:
            raise ValueError("temporal_mu must lie in [0, 1]")
        if not 0.0 <= self.spatial_mean <= 1.0:
            raise ValueError("spatial_mean must lie in [0, 1]")
        if self.temporal_sigma <= 0 or self.spatial_sigma <= 0:
            raise ValueError("temporal_sigma and spatial_sigma must be positive")
        if self.demand_sigma <= 0 or self.demand_rate <= 0:
            raise ValueError("demand_sigma and demand_rate must be positive")
        if self.demand_distribution not in ("normal", "exponential"):
            raise ValueError("demand_distribution must be 'normal' or 'exponential'")
        if self.num_periods <= 0 or self.grid_side <= 0:
            raise ValueError("num_periods and grid_side must be positive")
        if self.worker_radius <= 0 or self.region_side <= 0:
            raise ValueError("worker_radius and region_side must be positive")
        low, high = self.valuation_bounds
        if high <= low:
            raise ValueError("valuation_bounds must be increasing")
        p_min, p_max = self.price_bounds
        if p_min <= 0 or p_max < p_min:
            raise ValueError("price_bounds must satisfy 0 < p_min <= p_max")

    # ------------------------------------------------------------------
    # derived objects
    # ------------------------------------------------------------------
    @property
    def num_grids(self) -> int:
        return self.grid_side * self.grid_side

    def build_grid(self) -> Grid:
        return Grid(BoundingBox.square(self.region_side), self.grid_side, self.grid_side)

    def scaled(self, factor: float) -> "SyntheticConfig":
        """Scale task and worker counts (used by the scalability sweep)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            num_workers=max(1, int(round(self.num_workers * factor))),
            num_tasks=max(1, int(round(self.num_tasks * factor))),
        )

    @classmethod
    def paper_default(cls, **overrides) -> "SyntheticConfig":
        """The bold default setting of Table 3, with optional overrides."""
        return cls(**overrides)


@dataclass(frozen=True)
class BeijingConfig:
    """Parameters of the Beijing-style taxi workload (Table 4).

    The real DiDi data is proprietary; :class:`BeijingTaxiGenerator`
    synthesises a workload with the same published aggregate shape (see
    DESIGN.md for the substitution rationale).

    Attributes:
        variant: ``"rush_hour"`` (5–7 pm, dataset #1) or ``"late_night"``
            (0–2 am, dataset #2).
        num_workers: Total workers (paper: 28 210 / 19 006). Defaults are
            scaled down by ``scale`` to keep CI-sized runs tractable.
        num_tasks: Total tasks (paper: 113 372 / 55 659).
        num_periods: ``T = 120`` one-minute periods.
        worker_duration: ``delta_w`` — periods a worker stays available
            (the swept parameter of Fig. 8c–8d).
        worker_radius_km: ``a_w = 3`` km.
        grid_cols: 10 longitude cells of 0.02 degrees.
        grid_rows: 8 latitude cells of 0.02 degrees.
        bounding_box: The paper's lon/lat rectangle.
        price_bounds: Quotable price interval.
        num_hotspots: Number of demand hot spots (rush hour concentrates
            demand; late night scatters it).
        seed: Root seed.
    """

    variant: str = "rush_hour"
    num_workers: int = 28210
    num_tasks: int = 113372
    num_periods: int = 120
    worker_duration: int = 15
    worker_radius_km: float = 3.0
    grid_cols: int = 10
    grid_rows: int = 8
    bounding_box: Tuple[float, float, float, float] = (116.30, 39.84, 116.50, 40.0)
    price_bounds: Tuple[float, float] = (1.0, 5.0)
    num_hotspots: int = 6
    seed: int = 11

    def __post_init__(self) -> None:
        if self.variant not in ("rush_hour", "late_night"):
            raise ValueError("variant must be 'rush_hour' or 'late_night'")
        if self.num_workers <= 0 or self.num_tasks <= 0:
            raise ValueError("num_workers and num_tasks must be positive")
        if self.num_periods <= 0 or self.worker_duration <= 0:
            raise ValueError("num_periods and worker_duration must be positive")
        if self.worker_radius_km <= 0:
            raise ValueError("worker_radius_km must be positive")
        if self.grid_cols <= 0 or self.grid_rows <= 0:
            raise ValueError("grid dimensions must be positive")

    @classmethod
    def dataset_1(cls, **overrides) -> "BeijingConfig":
        """Dataset #1 of Table 4: 5 pm – 7 pm, heavy demand."""
        params = dict(variant="rush_hour", num_workers=28210, num_tasks=113372, seed=11)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def dataset_2(cls, **overrides) -> "BeijingConfig":
        """Dataset #2 of Table 4: 0 am – 2 am, light demand."""
        params = dict(variant="late_night", num_workers=19006, num_tasks=55659, seed=13)
        params.update(overrides)
        return cls(**params)

    def scaled(self, factor: float) -> "BeijingConfig":
        """Scale worker/task counts (benchmarks run scaled-down instances)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            num_workers=max(1, int(round(self.num_workers * factor))),
            num_tasks=max(1, int(round(self.num_tasks * factor))),
        )

    def build_grid(self) -> Grid:
        min_lon, min_lat, max_lon, max_lat = self.bounding_box
        region = BoundingBox(min_lon, min_lat, max_lon, max_lat)
        return Grid(region, self.grid_rows, self.grid_cols)


@dataclass
class WorkloadBundle:
    """A fully generated workload ready for the simulation engine.

    Attributes:
        grid: The pricing grid.
        tasks_by_period: Tasks issued in each period (index 0 .. T-1).
        workers_by_period: Workers *appearing* in each period (the engine
            keeps unmatched workers available in later periods).
        acceptance: Ground-truth per-grid acceptance models.
        metric: Distance metric name used by the workload (``euclidean`` or
            ``haversine``).
        price_bounds: The quotable price interval for this workload.
        description: Human-readable label for reports.
    """

    grid: Grid
    tasks_by_period: List[List[Task]]
    workers_by_period: List[List[Worker]]
    acceptance: PerGridAcceptance
    metric: str = "euclidean"
    price_bounds: Tuple[float, float] = (1.0, 5.0)
    description: str = "workload"

    @property
    def num_periods(self) -> int:
        return len(self.tasks_by_period)

    @property
    def total_tasks(self) -> int:
        return sum(len(tasks) for tasks in self.tasks_by_period)

    @property
    def total_workers(self) -> int:
        return sum(len(workers) for workers in self.workers_by_period)

    def validate(self) -> None:
        """Sanity checks used by tests and the engine."""
        if len(self.tasks_by_period) != len(self.workers_by_period):
            raise ValueError("tasks_by_period and workers_by_period lengths differ")
        for period, tasks in enumerate(self.tasks_by_period):
            for task in tasks:
                if task.period != period:
                    raise ValueError(
                        f"task {task.task_id} stored in period {period} but labelled {task.period}"
                    )

    def iter_periods(self) -> Iterator[Tuple[List[Task], List[Worker]]]:
        """Yield ``(tasks, workers)`` per period, in period order.

        The shared consumption protocol of pre-materialised and lazily
        generated workloads: the sharded engine drives either through
        this single method (see :class:`ChunkedWorkload`).
        """
        for tasks, workers in zip(self.tasks_by_period, self.workers_by_period):
            yield tasks, workers

    def iter_period_columns(self) -> Iterator[Tuple["TaskColumns", "WorkerColumns"]]:
        """Columnar view of the horizon, derived from the object chunks.

        Used when packing a bundle into a
        :class:`~repro.simulation.arena.WorkloadArena`; bundles have no
        native columns, so this converts period by period.
        """
        from repro.simulation.arena import TaskColumns, WorkerColumns

        for tasks, workers in self.iter_periods():
            yield (
                TaskColumns.from_tasks(tasks, self.grid),
                WorkerColumns.from_workers(workers),
            )


#: Factory returning a fresh per-period ``(tasks, workers)`` iterator.
PeriodChunkSource = Callable[[], Iterator[Tuple[List[Task], List[Worker]]]]


@dataclass
class ChunkedWorkload:
    """A workload generated lazily, one period chunk at a time.

    City-scale horizons (millions of tasks) cannot be pre-materialised the
    way :class:`WorkloadBundle` stores them without holding every task
    object in memory at once.  A chunked workload instead carries a
    *factory* of per-period ``(tasks, workers)`` chunks: each call to
    :meth:`iter_periods` re-generates the horizon deterministically, and
    only one period chunk (plus the engine's worker pool) is alive at any
    time.  It exposes the same market-context fields as
    :class:`WorkloadBundle`, so the sharded engine consumes both
    interchangeably.

    Attributes:
        grid: The pricing grid.
        periods: Zero-argument factory returning a fresh iterator of
            ``(tasks, workers)`` chunks, one per period, in period order.
            Must be deterministic for reproducible runs.
        num_periods: Horizon length (the factory must yield exactly this
            many chunks).
        acceptance: Ground-truth per-grid acceptance models.
        metric: Distance metric name.
        price_bounds: The quotable price interval.
        description: Human-readable label for reports.
        total_tasks_hint: Optional advertised total task count (used by
            throughput reports; the true count is only known after a full
            pass).
        column_periods: Optional zero-argument factory yielding the same
            horizon as columnar ``(TaskColumns, WorkerColumns)`` chunks
            (see :mod:`repro.simulation.arena`).  Generators that build
            arrays natively set this so the engines can skip per-task
            object churn; the object chunks stay available (and must stay
            value-identical) through ``periods``.
    """

    grid: Grid
    periods: PeriodChunkSource
    num_periods: int
    acceptance: PerGridAcceptance
    metric: str = "euclidean"
    price_bounds: Tuple[float, float] = (1.0, 5.0)
    description: str = "chunked workload"
    total_tasks_hint: Optional[int] = None
    column_periods: Optional[Callable[[], Iterator[Tuple["TaskColumns", "WorkerColumns"]]]] = None

    @property
    def has_columns(self) -> bool:
        """Whether the workload generates columnar chunks natively."""
        return self.column_periods is not None

    def validate(self) -> None:
        """Cheap structural checks (the chunks themselves stay lazy)."""
        if self.num_periods <= 0:
            raise ValueError("num_periods must be positive")
        if not callable(self.periods):
            raise ValueError("periods must be a zero-argument factory")

    def iter_periods(self) -> Iterator[Tuple[List[Task], List[Worker]]]:
        """Yield ``(tasks, workers)`` per period from a fresh generator pass.

        Raises:
            ValueError: if the factory yields a different number of chunks
                than ``num_periods`` advertises.
        """
        produced = 0
        for chunk in self.periods():
            tasks, workers = chunk
            produced += 1
            if produced > self.num_periods:
                raise ValueError(
                    f"chunk source yielded more than num_periods={self.num_periods} chunks"
                )
            yield tasks, workers
        if produced != self.num_periods:
            raise ValueError(
                f"chunk source yielded {produced} chunks, expected {self.num_periods}"
            )

    def iter_period_columns(self) -> Iterator[Tuple["TaskColumns", "WorkerColumns"]]:
        """Yield columnar ``(TaskColumns, WorkerColumns)`` chunks per period.

        Native columns when the generator provides them, otherwise a
        per-period conversion of the object chunks.  Either way the
        values are identical to :meth:`iter_periods`'s.

        Raises:
            ValueError: if a native column source yields a different
                number of chunks than ``num_periods`` advertises.
        """
        if self.column_periods is None:
            from repro.simulation.arena import TaskColumns, WorkerColumns

            for tasks, workers in self.iter_periods():
                yield (
                    TaskColumns.from_tasks(tasks, self.grid),
                    WorkerColumns.from_workers(workers),
                )
            return
        produced = 0
        for chunk in self.column_periods():
            produced += 1
            if produced > self.num_periods:
                raise ValueError(
                    f"column source yielded more than num_periods={self.num_periods} chunks"
                )
            yield chunk
        if produced != self.num_periods:
            raise ValueError(
                f"column source yielded {produced} chunks, expected {self.num_periods}"
            )

    def materialize(self) -> WorkloadBundle:
        """Expand into a pre-materialised :class:`WorkloadBundle`.

        Intended for small scales (tests, CLI batch runs); at city scale
        this holds the entire horizon in memory, which is exactly what
        chunked generation avoids.
        """
        tasks_by_period: List[List[Task]] = []
        workers_by_period: List[List[Worker]] = []
        for tasks, workers in self.iter_periods():
            tasks_by_period.append(list(tasks))
            workers_by_period.append(list(workers))
        bundle = WorkloadBundle(
            grid=self.grid,
            tasks_by_period=tasks_by_period,
            workers_by_period=workers_by_period,
            acceptance=self.acceptance,
            metric=self.metric,
            price_bounds=self.price_bounds,
            description=self.description,
        )
        bundle.validate()
        return bundle


__all__ = ["SyntheticConfig", "BeijingConfig", "WorkloadBundle", "ChunkedWorkload"]
