"""Event-driven streaming dispatch engine.

The paper's setting is inherently online: tasks and workers arrive
continuously and the platform quotes prices and dispatches in short
windows.  The batch :class:`~repro.simulation.engine.SimulationEngine`
approximates this by pre-materialising per-period task/worker lists; this
module removes that restriction.  :class:`StreamingEngine` consumes an
*arrival stream* — a generator yielding timestamped
:class:`TaskArrival` / :class:`WorkerArrival` events — buffers arrivals
into dispatch windows of configurable length, and dispatches each window
through the same quote → decide → match → feedback stages as the batch
engine.

Time is measured in *periods* (the paper's one-minute unit): an event at
time ``7.3`` happens during period 7, and a window of length ``1.0``
reproduces the paper's per-minute batching exactly.  Shorter windows
dispatch more eagerly (lower latency, less pooling); longer windows pool
more arrivals per matching.

**Incremental dispatch.**  Committed assignments are physical actions —
once a worker is dispatched to a task, the pair cannot be re-routed when
later arrivals would prefer a different plan.  The engine grows one
monotone matching over the whole stream instead of re-solving a global
(whole-horizon) problem: commitment is enforced by the worker pool
(dispatched workers leave it forever, freezing their pairs for every
later window), and each window *augments* the committed matching with
only its own accepted tasks over the free frontier.  The window
subproblem itself is solved by inserting tasks in non-increasing weight
order and searching augmenting paths with
:class:`~repro.matching.incremental.IncrementalMatcher` — re-routing is
possible among the window's tentative assignments, never across the
committed frontier.  Because the per-window weights depend only on the
task (``d_r * p_r``), this greedy-with-augmentation insertion is the
transversal-matroid greedy and yields exactly the matching the batch
engine's ``matroid`` backend computes for the window — which is what
makes the equivalence guarantee below possible (and is asserted directly
by the tests, so the two implementations cannot silently drift).

**Equivalence guarantee.**  For a stream binned at the batch period length
(``window=1.0`` with events ordered as the batch lists, e.g. via
:func:`workload_to_stream`), the engine reproduces the batch engine's
revenue / served / accepted metrics *bit-identically* for fixed seeds: the
RNG stream, the per-window instances, the worker-pool evolution and the
matching all coincide.  ``tests/simulation/test_streaming.py`` asserts
this across all five pricing strategies.
"""

from __future__ import annotations

import heapq
import math
from contextlib import contextmanager
from dataclasses import dataclass, replace
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.gdp import PeriodInstance
from repro.market.acceptance import PerGridAcceptance
from repro.market.entities import Task, Worker
from repro.matching.incremental import (
    DynamicMatcher,
    IncrementalMatcher,
    LazyDynamicMatcher,
)
from repro.matching.weighted import eligible_order
from repro.pricing.strategy import PricingStrategy
from repro.simulation.config import WorkloadBundle
from repro.simulation.engine import PeriodOutcome, SimulationResult
from repro.simulation.metrics import MetricsCollector
from repro.simulation.pipeline import (
    CrossPeriodWarmStart,
    DecideResult,
    PeriodPipeline,
)
from repro.spatial.grid import Grid
from repro.spatial.index import IncrementalAdjacencyIndex
from repro.utils.rng import derive_seed


# ---------------------------------------------------------------------------
# events and streams
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskArrival:
    """A task entering the platform at ``time`` (in period units)."""

    time: float
    task: Task


@dataclass(frozen=True)
class WorkerArrival:
    """A worker coming online at ``time`` (in period units)."""

    time: float
    worker: Worker


ArrivalEvent = Union[TaskArrival, WorkerArrival]
#: Either a re-iterable collection of events or a zero-argument factory
#: returning a fresh iterator (so one stream can back several runs).
EventSource = Union[Iterable[ArrivalEvent], Callable[[], Iterator[ArrivalEvent]]]


@dataclass
class ArrivalStream:
    """An arrival stream plus the market context needed to dispatch it.

    Attributes:
        grid: The pricing grid.
        acceptance: Ground-truth per-grid acceptance models (used for tasks
            without a private valuation and by base-price calibration).
        events: The arrival events, ordered by non-decreasing ``time``.
            Either a re-iterable collection or a zero-argument callable
            returning a fresh iterator; a plain one-shot generator supports
            a single run only.
        metric: Distance metric of the range constraint.
        price_bounds: Quotable ``(p_min, p_max)`` interval.
        description: Human-readable label for reports.
        horizon: Optional end of the stream in period units (used when
            binning the stream into a :class:`WorkloadBundle` so trailing
            empty periods are preserved).
        demand_grids: Optional registry metadata naming the grid cells
            that ever see task demand — either the cell-index collection
            itself or a zero-argument callable computing it (so scenarios
            can defer the scan until calibration actually asks).  Used by
            :meth:`StreamingEngine.calibrate_base_price` to avoid
            calibrating every cell of a city-scale grid; ``None`` keeps
            the calibrate-everything fallback.
    """

    grid: Grid
    acceptance: PerGridAcceptance
    events: EventSource
    metric: str = "euclidean"
    price_bounds: Tuple[float, float] = (1.0, 5.0)
    description: str = "stream"
    horizon: Optional[float] = None
    demand_grids: Optional[Union[Sequence[int], Callable[[], Sequence[int]]]] = None

    def iter_events(self) -> Iterator[ArrivalEvent]:
        """A fresh iterator over the events (calls the factory if given).

        Raises:
            ValueError: when the event source is a one-shot iterator (a
                plain generator) that an earlier pass already consumed.
                A second pass over an exhausted generator would silently
                yield nothing — a zero-revenue "result" that looks valid —
                so the reuse fails loudly instead.
        """
        if callable(self.events):
            return iter(self.events())
        iterator = iter(self.events)
        if iterator is self.events:
            if getattr(self, "_consumed", False):
                raise ValueError(
                    "arrival stream's one-shot event source was already "
                    "consumed; back the stream with a re-iterable collection "
                    "or a zero-argument factory to iterate it again"
                )
            self._consumed = True
        return iterator


def _validated_events(stream: ArrivalStream) -> Iterator[ArrivalEvent]:
    """Iterate a stream's events while enforcing the time contract.

    Shared by the engine's window formation and the batch binning so both
    consumers reject malformed streams identically: times must be
    non-negative and non-decreasing.
    """
    last_time = -math.inf
    for event in stream.iter_events():
        if event.time < last_time:
            raise ValueError(
                f"arrival stream is not time-ordered: {event.time} after {last_time}"
            )
        if event.time < 0:
            raise ValueError("arrival times must be non-negative")
        last_time = event.time
        yield event


def resolve_demand_grids(stream: ArrivalStream) -> Optional[List[int]]:
    """The stream's demand-cell metadata as a sorted unique index list.

    Resolves :attr:`ArrivalStream.demand_grids` (calling it when it is a
    factory) into the canonical form base-price calibration consumes —
    the same sorted-unique shape the batch engine derives by scanning its
    materialised workload — or ``None`` when the stream carries no
    metadata.  An *empty* metadata collection resolves to ``None`` too: a
    stream that claims zero demand cells is indistinguishable from one
    whose generator forgot to populate the field, and calibrating nothing
    would silently produce an unusable result.
    """
    source = stream.demand_grids
    if source is None:
        return None
    grids = source() if callable(source) else source
    resolved = sorted({int(index) for index in grids})
    return resolved or None


def window_index(time: float, length: float) -> int:
    """The index ``k`` with ``k * length <= time < (k + 1) * length``.

    Not the same as ``int(time // length)``: Python's float floor-division
    computes ``(time - time % length) / length``, whose rounding can land
    an arrival *exactly on* a window edge in the previous window.  The
    concrete failure: ``1.0 // 0.1 == 9.0`` even though ``10 * 0.1 == 1.0``
    exactly, so an event at ``t=1.0`` with ``window=0.1`` fell into window
    9 (``[0.9, 1.0)``) instead of window 10 — landing in a half-open
    interval that does not contain it.  The quotient is therefore nudged
    until the half-open contract holds under exact float comparison; each
    ``while`` moves at most one step in practice (the quotient is off by
    at most one ulp-rounding).
    """
    index = int(time // length)
    while (index + 1) * length <= time:
        index += 1
    while index > 0 and index * length > time:
        index -= 1
    return index


def workload_to_stream(workload: WorkloadBundle) -> ArrivalStream:
    """Unroll a pre-materialised workload into an arrival stream.

    Within each period the period's workers arrive first, then its tasks,
    at evenly spaced timestamps inside ``[p, p + 1)`` that preserve the
    batch lists' order — so binning the stream back at ``window=1.0``
    reproduces the batch engine's per-period lists exactly, while
    non-integer windows still see genuinely spread arrivals.
    """

    def _events() -> Iterator[ArrivalEvent]:
        for period in range(workload.num_periods):
            workers = workload.workers_by_period[period]
            tasks = workload.tasks_by_period[period]
            count = len(workers) + len(tasks)
            if not count:
                continue
            step = 1.0 / count
            offset = 0
            for worker in workers:
                yield WorkerArrival(time=period + offset * step, worker=worker)
                offset += 1
            for task in tasks:
                yield TaskArrival(time=period + offset * step, task=task)
                offset += 1

    def _demand_grids() -> List[int]:
        # Same scan the batch engine runs over its materialised lists, so
        # stream-side calibration sees the identical grid set.
        return sorted(
            {
                task.grid_index
                for tasks in workload.tasks_by_period
                for task in tasks
                if task.grid_index is not None
            }
        )

    return ArrivalStream(
        grid=workload.grid,
        acceptance=workload.acceptance,
        events=_events,
        metric=workload.metric,
        price_bounds=workload.price_bounds,
        description=workload.description,
        horizon=float(workload.num_periods),
        demand_grids=_demand_grids,
    )


def stream_to_workload(
    stream: ArrivalStream, period_length: float = 1.0
) -> WorkloadBundle:
    """Bin an arrival stream into a batch :class:`WorkloadBundle`.

    Events landing in ``[k * period_length, (k + 1) * period_length)`` form
    period ``k``; entities are re-labelled with their bin so the bundle
    validates.  Worker ``duration`` is carried in *stream* period units, so
    for ``period_length != 1`` it is rescaled to ``ceil(duration /
    period_length)`` bins — the availability wall-time is preserved up to
    one bin of rounding (exact at the default ``period_length=1.0``).
    This is how natively streaming scenarios (e.g. ``hotspot_burst``)
    expose a batch workload.
    """
    if period_length <= 0:
        raise ValueError("period_length must be positive")
    tasks_by_period: Dict[int, List[Task]] = {}
    workers_by_period: Dict[int, List[Worker]] = {}
    max_bin = -1
    for event in _validated_events(stream):
        bin_index = window_index(event.time, period_length)
        max_bin = max(max_bin, bin_index)
        if isinstance(event, TaskArrival):
            task = event.task
            if task.period != bin_index:
                task = replace(task, period=bin_index)
            tasks_by_period.setdefault(bin_index, []).append(task)
        else:
            worker = event.worker
            duration = worker.duration
            if duration is not None and period_length != 1.0:
                duration = max(1, int(math.ceil(duration / period_length)))
            if worker.period != bin_index or duration != worker.duration:
                worker = replace(worker, period=bin_index, duration=duration)
            workers_by_period.setdefault(bin_index, []).append(worker)
    num_periods = max_bin + 1
    if stream.horizon is not None:
        num_periods = max(num_periods, int(math.ceil(stream.horizon / period_length)))
    if num_periods <= 0:
        raise ValueError("stream yielded no events and has no horizon")
    bundle = WorkloadBundle(
        grid=stream.grid,
        tasks_by_period=[tasks_by_period.get(p, []) for p in range(num_periods)],
        workers_by_period=[workers_by_period.get(p, []) for p in range(num_periods)],
        acceptance=stream.acceptance,
        metric=stream.metric,
        price_bounds=stream.price_bounds,
        description=stream.description,
    )
    bundle.validate()
    return bundle


def build_universe(
    stream: ArrivalStream,
    max_degree: Optional[int] = None,
    build_graph: bool = True,
) -> Tuple[PeriodInstance, List[float], List[float]]:
    """Pre-scan a (re-iterable) stream into one all-time instance.

    Returns the universe :class:`PeriodInstance` over every task and
    worker the stream will ever yield (in stream order, so positions
    align with running arrival counters), plus the per-position task and
    worker arrival times.  The delta matcher
    (:class:`~repro.matching.incremental.DynamicMatcher`) works on this
    fixed adjacency; liveness is tracked per position.  Shared by
    :class:`DynamicStreamingEngine`, :class:`DispatchSession` and the
    ``repro.service`` front end so all three agree on positions.

    With ``build_graph=False`` the instance carries a lazy graph proxy
    (never materialised unless someone touches ``.graph``) — the right
    universe for an *incremental* :class:`DispatchSession`, which only
    needs the position-aligned entity lists and arrival times.
    """
    tasks: List[Task] = []
    workers: List[Worker] = []
    task_arrivals: List[float] = []
    worker_arrivals: List[float] = []
    for event in _validated_events(stream):
        if isinstance(event, TaskArrival):
            tasks.append(event.task)
            task_arrivals.append(float(event.time))
        else:
            workers.append(event.worker)
            worker_arrivals.append(float(event.time))
    instance = PeriodInstance.build(
        period=0,
        grid=stream.grid,
        tasks=tasks,
        workers=workers,
        metric=stream.metric,
        max_degree=None if max_degree is None else int(max_degree),
        build_graph=build_graph,
    )
    return instance, task_arrivals, worker_arrivals


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
class StreamingEngine:
    """Dispatches an arrival stream in fixed-length windows.

    Args:
        stream: The arrival stream (events plus market context).
        seed: Seed for accept/reject randomness of tasks without a private
            valuation; derived exactly as in the batch engine, so a stream
            binned at the batch period length consumes the identical RNG
            stream.
        window: Dispatch window length in period units.  ``1.0`` (default)
            reproduces the paper's one-minute batching.
        matching_backend: Realized-matching backend.  ``matroid`` (default)
            runs through the incremental cross-window matcher; any other
            registered backend re-solves each window via
            :func:`repro.matching.weighted.max_weight_matching`.
        track_memory: Enable peak-memory tracking in the metrics.
        keep_details: Store a :class:`PeriodOutcome` per dispatched window
            (``period`` holds the window index).  Unlike the batch engine,
            which emits an empty outcome for every period of its fixed
            horizon, the streaming engine cannot see event-less windows
            (there is no horizon, only events), so those are absent from
            ``outcomes`` — join batch and streaming outcome lists on their
            ``period`` field, not by position.  The *metrics* are
            unaffected: both engines record metric rows only for
            task-bearing periods/windows.
        max_degree: Optional per-task adjacency cap (nearest workers
            only) for the window instances; ``None`` keeps exact graphs.
        warm_start: Seed each window's augmenting insertions with hints
            from the previous window's matching restricted to workers
            still in the pool
            (:class:`~repro.simulation.pipeline.CrossPeriodWarmStart`);
            per-window weight-preserving (see the cache's docstring for
            the horizon caveat) and off by default.

    The result is the same :class:`SimulationResult` the batch engine
    returns, so reports, sweeps and tests consume both interchangeably.
    """

    def __init__(
        self,
        stream: ArrivalStream,
        seed: int = 0,
        window: float = 1.0,
        matching_backend: str = "matroid",
        track_memory: bool = False,
        keep_details: bool = False,
        max_degree: Optional[int] = None,
        warm_start: bool = False,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.stream = stream
        self.seed = int(seed)
        self.window = float(window)
        # Normalised like the registry lookup, so "MATROID" selects the
        # incremental window matcher exactly like "matroid" does.
        self.matching_backend = str(matching_backend).strip().lower()
        self.track_memory = bool(track_memory)
        self.keep_details = bool(keep_details)
        self.max_degree = None if max_degree is None else int(max_degree)
        self.warm_start = bool(warm_start)
        self._warm_cache: Optional[CrossPeriodWarmStart] = None

    # ------------------------------------------------------------------
    # window formation
    # ------------------------------------------------------------------
    def _windows(self) -> Iterator[Tuple[int, List[Task], List[Worker]]]:
        """Group the event stream into ``(window_index, tasks, workers)``.

        Windows without any event are skipped: worker-pool expiry is a
        monotone filter, so applying it lazily at the next dispatched
        window leaves the pool identical.
        """
        current_index: Optional[int] = None
        tasks: List[Task] = []
        workers: List[Worker] = []
        for event in _validated_events(self.stream):
            index = window_index(event.time, self.window)
            if current_index is not None and index != current_index:
                yield current_index, tasks, workers
                tasks, workers = [], []
            current_index = index
            if isinstance(event, TaskArrival):
                tasks.append(event.task)
            else:
                workers.append(event.worker)
        if current_index is not None:
            yield current_index, tasks, workers

    @staticmethod
    def _worker_active(worker: Worker, time: float) -> bool:
        """Whether the worker's availability covers period-time ``time``.

        Mirrors :meth:`repro.market.entities.Worker.available_in` on the
        continuous axis: a worker arriving at period ``p`` with duration
        ``d`` is active while ``time < p + d`` (forever when ``d`` is
        ``None``).  Evaluated at window *start*, which coincides with the
        batch engine's per-period check when ``window == 1.0``.

        **Pinned window-mode semantics.**  Because the check runs once
        per window at its start, a worker whose availability expires
        *mid-window* can still be committed to a task arriving later in
        the same window — the batch approximation treats the whole window
        as one instant.  This is deliberate (changing it would break the
        bit-identical batch equivalence at ``window == 1.0``) and is
        pinned by a regression test; the event-at-a-time path
        (:class:`DispatchSession` / :class:`EventStreamingEngine` and the
        ``repro.service`` front end) settles departures at *event* time
        instead, so there the same worker is gone before the quote.  See
        ``docs/service.md`` for the divergence write-up.
        """
        if worker.duration is None:
            return True
        return time < worker.period + worker.duration

    # ------------------------------------------------------------------
    # incremental window matching
    # ------------------------------------------------------------------
    def _match_window(
        self, instance: PeriodInstance, decision: "DecideResult"
    ) -> Tuple[Dict[int, int], float]:
        """Grow the committed matching with this window's accepted tasks.

        Inserts eligible tasks in non-increasing weight order and augments
        with :class:`IncrementalMatcher` — the transversal-matroid greedy,
        bit-identical to the batch ``matroid`` backend on the window
        subgraph.  Workers matched here are removed from the pool by the
        caller, freezing the assignment for all later windows.  Plugged
        into :meth:`PeriodPipeline.run_period` as its ``match_fn``.
        """
        arrays = instance.ensure_arrays()
        weights = arrays.distances * decision.prices
        weight_arr, order = eligible_order(
            instance.num_tasks, weights, decision.accepted_positions
        )
        matcher = IncrementalMatcher(
            instance.graph, grid_tasks=instance.tasks_by_grid
        )
        weight_list = weight_arr.tolist()
        hints: Dict[int, int] = {}
        if self._warm_cache is not None:
            hints = self._warm_cache.hints(instance)
        total = 0.0
        for task_pos in order:
            if matcher.augment_task(task_pos, preferred_worker=hints.get(task_pos)):
                total += weight_list[task_pos]
        matching = matcher.matching()
        if self._warm_cache is not None:
            self._warm_cache.update(instance, matching)
        return matching, total

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def calibrate_base_price(
        self,
        grids: Optional[Sequence[int]] = None,
        config=None,
        seed: Optional[int] = None,
    ):
        """Run Algorithm 1 against the stream's acceptance ground truth.

        Unlike the batch engine, the stream cannot be pre-scanned for
        grids with demand without consuming it, so by default calibration
        consults the stream's :attr:`~ArrivalStream.demand_grids` registry
        metadata (the demand-cell set the scenario generator already
        knows) and only falls back to *every* grid cell when the stream
        carries none — the old default, which on a ``city_scale`` grid
        probes hundreds of cells that never see a task.  With metadata
        present the grid list is identical to the batch engine's
        demand scan, so both calibrations return the same result
        bit-for-bit (asserted by ``tests/simulation/test_streaming.py``).
        """
        from repro.simulation.engine import calibrate_base_price_for_context

        if grids is None:
            grids = resolve_demand_grids(self.stream)
        if grids is None:
            grids = sorted(cell.index for cell in self.stream.grid.cells())
        return calibrate_base_price_for_context(
            acceptance=self.stream.acceptance,
            price_bounds=self.stream.price_bounds,
            seed=self.seed if seed is None else seed,
            grids=grids,
            config=config,
        )

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self, strategy: PricingStrategy) -> SimulationResult:
        """Dispatch the full stream with one pricing strategy.

        Window loop (same stage order and timing attribution as the batch
        engine): new workers join the pool, expired workers leave, the
        window's tasks and the free pool form a :class:`PeriodInstance`
        (``period`` = window index), the pipeline quotes and realises
        accept/reject decisions, the accepted tasks augment the committed
        matching, and matched workers leave the pool for good.
        """
        strategy.reset()
        collector = MetricsCollector(strategy.name, track_memory=self.track_memory)
        collector.start()
        self._warm_cache = CrossPeriodWarmStart() if self.warm_start else None
        rng = np.random.default_rng(derive_seed(self.seed, "acceptance", strategy.name))
        pipeline = PeriodPipeline(
            price_bounds=self.stream.price_bounds,
            acceptance=self.stream.acceptance,
            matching_backend=self.matching_backend,
        )

        outcomes: List[PeriodOutcome] = []
        pool: List[Worker] = []

        for window_index, tasks, arriving_workers in self._windows():
            window_start = window_index * self.window
            pool.extend(arriving_workers)
            pool = [worker for worker in pool if self._worker_active(worker, window_start)]
            if not tasks:
                if self.keep_details:
                    outcomes.append(
                        PeriodOutcome(
                            period=window_index,
                            num_tasks=0,
                            num_workers=len(pool),
                            prices={},
                            accepted_tasks=0,
                            served_tasks=0,
                            revenue=0.0,
                        )
                    )
                continue

            instance = PeriodInstance.build(
                period=window_index,
                grid=self.stream.grid,
                tasks=tasks,
                workers=pool,
                metric=self.stream.metric,
                max_degree=self.max_degree,
            )

            if self.matching_backend == "matroid":
                # The incremental window matcher consumes (and refreshes)
                # the warm-start cache itself.
                result = pipeline.run_period(
                    strategy, instance, rng, collector, match_fn=self._match_window
                )
            else:
                hints = (
                    self._warm_cache.hints(instance)
                    if self._warm_cache is not None
                    else None
                )
                result = pipeline.run_period(
                    strategy, instance, rng, collector, warm_start=hints
                )
                if self._warm_cache is not None:
                    self._warm_cache.update(instance, result.matching)

            # Dispatched workers leave the pool forever: the committed
            # matching only ever grows across windows.
            matched_worker_positions = set(result.matching.values())
            pool = [
                worker
                for worker_pos, worker in enumerate(instance.workers)
                if worker_pos not in matched_worker_positions
            ]

            collector.record_period(
                revenue=result.revenue,
                served_tasks=result.served_tasks,
                accepted_tasks=result.accepted_tasks,
                total_tasks=len(tasks),
            )
            if self.keep_details:
                outcomes.append(
                    PeriodOutcome(
                        period=window_index,
                        num_tasks=len(tasks),
                        num_workers=len(instance.workers),
                        prices=result.grid_prices,
                        accepted_tasks=result.accepted_tasks,
                        served_tasks=result.served_tasks,
                        revenue=result.revenue,
                    )
                )

        metrics = collector.finish()
        return SimulationResult(
            metrics=metrics, outcomes=outcomes, description=self.stream.description
        )

    def run_many(self, strategies: Sequence[PricingStrategy]) -> Dict[str, SimulationResult]:
        """Run several strategies over the same stream (same randomness).

        Requires a re-iterable event source (a collection or a factory
        callable); a one-shot generator is consumed by the first run and
        the second run raises :class:`ValueError` (see
        :meth:`ArrivalStream.iter_events`).
        """
        return {strategy.name: self.run(strategy) for strategy in strategies}


# ---------------------------------------------------------------------------
# dynamic (delta-repair) dispatch
# ---------------------------------------------------------------------------
class DynamicStreamingEngine(StreamingEngine):
    """Window dispatch that maintains *one* matching under churn.

    Where :class:`StreamingEngine` freezes a task's assignment in the
    window it arrives (match-or-lose-forever), this engine keeps accepted
    tasks *tentatively* matched across windows until their deadline, and
    applies every population change as a *delta* to a single maintained
    maximum-weight matching
    (:class:`~repro.matching.incremental.DynamicMatcher`):

    * an accepted task **inserts** (possibly evicting a lower-priority
      tentative task from its transversal-matroid circuit);
    * a departing worker **removes**, repairing only along the alternating
      paths the deletion touched;
    * at a task's deadline the tentative pair — if any — **commits**
      (revenue is realised, the worker retires), otherwise the task
      expires unserved.

    The maintained matching always equals the batch ``matroid`` re-solve
    over the *live* population (the tests assert this per window), so the
    engine is a per-window re-solve whose cost scales with the churn
    delta, not the standing population.

    Args:
        stream: The arrival stream.  **Must be re-iterable** (a collection
            or factory callable): the engine pre-scans the events once to
            build the universe adjacency, then streams them again.
        seed: Accept/reject RNG seed, derived as in the base engine.
        window: Dispatch window length in period units.
        task_lifetime: Default number of period units an accepted task
            stays open (from its arrival time) before its tentative
            assignment commits or the requester gives up.  Per-task
            ``Task.duration`` overrides it.
        resolve: ``"delta"`` (default) repairs the maintained matching
            incrementally; ``"rewindow"`` rebuilds it from scratch every
            dispatched window — the baseline the delta mode is benchmarked
            against.  Both modes settle deadlines/departures identically.
        max_degree: Optional per-task adjacency cap on the *universe*
            graph (nearest live-or-future workers).
        track_memory / keep_details: As in the base engine.

    Feedback semantics: the pricing strategy observes a task as "served"
    if it is *tentatively* matched at the end of its arrival window — the
    platform's best knowledge at quote time.  A later eviction or worker
    departure can still expire it unserved; metric rows record revenue
    and served counts at *commit* time, so ``total_revenue`` is exactly
    the committed revenue.
    """

    def __init__(
        self,
        stream: ArrivalStream,
        seed: int = 0,
        window: float = 1.0,
        task_lifetime: float = 4.0,
        resolve: str = "delta",
        max_degree: Optional[int] = None,
        track_memory: bool = False,
        keep_details: bool = False,
    ) -> None:
        super().__init__(
            stream,
            seed=seed,
            window=window,
            matching_backend="matroid",
            track_memory=track_memory,
            keep_details=keep_details,
            max_degree=max_degree,
            warm_start=False,
        )
        if task_lifetime <= 0:
            raise ValueError("task_lifetime must be positive")
        if resolve not in ("delta", "rewindow"):
            raise ValueError(
                f"unknown resolve mode {resolve!r}; choose 'delta' or 'rewindow'"
            )
        self.task_lifetime = float(task_lifetime)
        self.resolve = resolve

    # ------------------------------------------------------------------
    # universe graph
    # ------------------------------------------------------------------
    def _universe(self) -> Tuple[PeriodInstance, List[float], List[float]]:
        """Pre-scan the stream into one all-time instance.

        Delegates to the module-level :func:`build_universe` (shared with
        the event-at-a-time session and the service front end).
        """
        return build_universe(self.stream, max_degree=self.max_degree)

    # ------------------------------------------------------------------
    # settlement (deadlines + departures, one global time order)
    # ------------------------------------------------------------------
    @staticmethod
    def _settle(
        matcher: DynamicMatcher,
        deadlines: List[Tuple[float, int]],
        departures: List[Tuple[float, int]],
        live_weights: Dict[int, float],
        live_workers: set,
        bound: float,
    ) -> Tuple[float, int]:
        """Commit/expire everything due at or before ``bound``.

        Deadline and departure events are interleaved in global time
        order (ties: deadlines first, then position order — both heaps
        are keyed ``(time, position)``), so delta and rewindow mode see
        the identical settlement sequence.  Returns ``(revenue,
        commits)`` realised.
        """
        revenue = 0.0
        commits = 0
        while deadlines or departures:
            due_deadline = deadlines[0][0] if deadlines else math.inf
            due_departure = departures[0][0] if departures else math.inf
            if min(due_deadline, due_departure) > bound:
                break
            if due_deadline <= due_departure:
                _, task_pos = heapq.heappop(deadlines)
                if task_pos not in live_weights:
                    continue
                if matcher.is_task_matched(task_pos):
                    worker_pos = matcher.commit_task(task_pos)
                    revenue += live_weights.pop(task_pos)
                    commits += 1
                    live_workers.discard(worker_pos)
                else:
                    matcher.remove_task(task_pos)
                    live_weights.pop(task_pos)
            else:
                _, worker_pos = heapq.heappop(departures)
                if worker_pos not in live_workers:
                    continue  # retired by an earlier commit
                matcher.remove_worker(worker_pos)
                live_workers.discard(worker_pos)
        return revenue, commits

    @staticmethod
    def _rebuild(
        graph,
        num_tasks: int,
        live_weights: Dict[int, float],
        live_workers: set,
    ) -> DynamicMatcher:
        """Fresh batch re-solve over the live population (rewindow mode)."""
        matcher = DynamicMatcher(graph, [0.0] * num_tasks)
        for worker_pos in sorted(live_workers):
            matcher.insert_worker(worker_pos)
        for task_pos in sorted(
            live_weights, key=lambda pos: (-live_weights[pos], pos)
        ):
            matcher.insert_task(task_pos, live_weights[task_pos])
        return matcher

    def _post_window_hook(
        self,
        widx: int,
        matcher: DynamicMatcher,
        live_weights: Dict[int, float],
        live_workers: set,
        universe: PeriodInstance,
    ) -> None:
        """Test seam: called after each dispatched window's deltas apply."""

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self, strategy: PricingStrategy) -> SimulationResult:
        """Dispatch the full stream, maintaining one matching under churn.

        Per dispatched window, in order: settle due deadlines and worker
        departures; insert arriving workers (absorbing freed capacity);
        quote and realise accept/reject over the window's tasks against
        the free live workers; insert accepted tasks in non-increasing
        weight order; feed back tentative serve signals.  After the last
        event the remaining deadline/departure heap drains (tentative
        pairs commit unless their worker departs first).
        """
        strategy.reset()
        collector = MetricsCollector(strategy.name, track_memory=self.track_memory)
        collector.start()
        rng = np.random.default_rng(derive_seed(self.seed, "acceptance", strategy.name))
        pipeline = PeriodPipeline(
            price_bounds=self.stream.price_bounds,
            acceptance=self.stream.acceptance,
            matching_backend="matroid",
        )

        universe, _task_arrivals, _ = self._universe()
        num_tasks = len(universe.tasks)
        matcher = DynamicMatcher(universe.graph, [0.0] * num_tasks)

        live_weights: Dict[int, float] = {}
        live_workers: set = set()
        deadlines: List[Tuple[float, int]] = []
        departures: List[Tuple[float, int]] = []
        next_task = 0
        next_worker = 0
        outcomes: List[PeriodOutcome] = []

        for widx, tasks, arriving_workers in self._windows():
            window_start = widx * self.window
            revenue, commits = self._settle(
                matcher, deadlines, departures, live_weights, live_workers,
                window_start,
            )

            for worker in arriving_workers:
                worker_pos = next_worker
                next_worker += 1
                if worker.duration is not None:
                    departs = float(worker.period + worker.duration)
                    if departs <= window_start:
                        continue  # expired before its first dispatch
                    heapq.heappush(departures, (departs, worker_pos))
                matcher.insert_worker(worker_pos)
                live_workers.add(worker_pos)

            accepted = 0
            grid_prices: Dict[int, float] = {}
            num_free = 0
            if tasks:
                task_base = next_task
                next_task += len(tasks)
                free_positions = [
                    pos for pos in sorted(live_workers)
                    if matcher.task_of(pos) is None
                ]
                num_free = len(free_positions)
                instance = PeriodInstance.build(
                    period=widx,
                    grid=self.stream.grid,
                    tasks=tasks,
                    workers=[universe.workers[pos] for pos in free_positions],
                    metric=self.stream.metric,
                    max_degree=self.max_degree,
                )
                with collector.time_pricing():
                    grid_prices = pipeline.quote(strategy, instance)
                with collector.time_decide():
                    decision = pipeline.decide(instance, grid_prices, rng)
                accepted = int(decision.accepted.sum())
                with collector.time_matching():
                    arrays = instance.ensure_arrays()
                    weights = arrays.distances * decision.prices
                    weight_arr, order = eligible_order(
                        instance.num_tasks, weights, decision.accepted_positions
                    )
                    for local_pos in order:
                        task_pos = task_base + local_pos
                        weight = float(weight_arr[local_pos])
                        matcher.insert_task(task_pos, weight)
                        live_weights[task_pos] = weight
                        task = tasks[local_pos]
                        lifetime = (
                            task.duration
                            if task.duration is not None
                            else self.task_lifetime
                        )
                        heapq.heappush(
                            deadlines,
                            (_task_arrivals[task_pos] + lifetime, task_pos),
                        )
                # Tentative serve signals: what the platform believes at
                # quote time.  Worker values are unused by the feedback
                # stage (it reads the matched-task keys only).
                tentative = {
                    local_pos: -1
                    for local_pos in range(len(tasks))
                    if matcher.is_task_matched(task_base + local_pos)
                }
                with collector.time_decide():
                    batch = pipeline.feedback(instance, decision, tentative)
                with collector.time_pricing():
                    strategy.observe_feedback_batch(batch)

            if self.resolve == "rewindow":
                matcher = self._rebuild(
                    universe.graph, num_tasks, live_weights, live_workers
                )
            self._post_window_hook(
                widx, matcher, live_weights, live_workers, universe
            )

            if tasks or revenue or commits:
                collector.record_period(
                    revenue=revenue,
                    served_tasks=commits,
                    accepted_tasks=accepted,
                    total_tasks=len(tasks),
                )
            if self.keep_details:
                outcomes.append(
                    PeriodOutcome(
                        period=widx,
                        num_tasks=len(tasks),
                        num_workers=num_free,
                        prices=grid_prices,
                        accepted_tasks=accepted,
                        served_tasks=commits,
                        revenue=revenue,
                    )
                )

        # Drain everything still pending after the final event.
        revenue, commits = self._settle(
            matcher, deadlines, departures, live_weights, live_workers, math.inf
        )
        if revenue or commits:
            collector.record_period(
                revenue=revenue,
                served_tasks=commits,
                accepted_tasks=0,
                total_tasks=0,
            )

        metrics = collector.finish()
        return SimulationResult(
            metrics=metrics, outcomes=outcomes, description=self.stream.description
        )


# ---------------------------------------------------------------------------
# event-at-a-time dispatch
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class QuoteOutcome:
    """What happened to one task arrival at quote time.

    Attributes:
        task_pos: Universe position of the task.
        task_id: The task's id (wire-level identity for the service).
        grid_index: Cell the quote was priced for.
        price: The quoted (clamped) price.
        accepted: Whether the requester accepted the quote.
        matched: Whether the task is tentatively matched right after its
            insertion (commitment only happens at the deadline).
        degraded: Whether the degraded greedy insert path served the
            quote instead of the exact delta repair.
        weight: The task's matching weight (``distance * price``); zero
            for rejected quotes.
        deadline: When the tentative assignment settles (``None`` for
            rejected quotes, which never enter the matching).
    """

    task_pos: int
    task_id: int
    grid_index: Optional[int]
    price: float
    accepted: bool
    matched: bool
    degraded: bool
    weight: float
    deadline: Optional[float]


@dataclass(frozen=True)
class Settlement:
    """One settlement record: a commit, an expiry or a departure.

    ``kind`` is ``"commit"`` (tentative pair realised at the task's
    deadline; ``revenue`` is its weight), ``"expire"`` (deadline passed
    unmatched) or ``"depart"`` (worker left the market).  ``time`` is the
    simulation time the settlement was due, not the wall clock it was
    processed at.
    """

    kind: str
    time: float
    task_id: Optional[int] = None
    worker_id: Optional[int] = None
    revenue: float = 0.0


class _LiveSessionMatcher:
    """Positional :class:`DynamicMatcher` facade over the live planes.

    The incremental-session backend: a
    :class:`~repro.spatial.index.IncrementalAdjacencyIndex` (both planes)
    plus a :class:`~repro.matching.incremental.LazyDynamicMatcher` with
    the transpose maintained, driven in lockstep so index slots and
    matcher ids coincide.  Slots are allocated in *market-entry* order
    (accepted tasks / joined workers only), so they are private to this
    adapter; the session keeps talking in universe positions and the
    maps here translate.  Rows are computed against the live population
    only — per-arrival cost tracks the live neighbourhood, not the
    stream horizon, which is the whole point of the incremental session.

    Exposes exactly the methods :class:`DispatchSession` calls on the
    universe :class:`DynamicMatcher` (``insert_worker`` / ``insert_task``
    / ``insert_task_greedy`` / ``is_task_matched`` / ``commit_task`` /
    ``remove_task`` / ``remove_worker``), with identical positional
    semantics — the lazy matcher's repairs are bit-identical to the
    universe delta repairs over the same arrival sequence (the fuzzed
    contract of ``tests/matching/test_lazy_dynamic.py``), so a session
    on this backend reproduces the universe session's floats.
    """

    def __init__(
        self,
        grid: Grid,
        metric: str,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
    ) -> None:
        self.plane = IncrementalAdjacencyIndex(
            grid, metric=metric, max_degree=None, track_tasks=True
        )
        self.lazy = LazyDynamicMatcher(maintain_transpose=True)
        self._tasks = tasks
        self._workers = workers
        self._task_slot: Dict[int, int] = {}
        self._worker_slot: Dict[int, int] = {}
        self._worker_pos: Dict[int, int] = {}

    def _guard(self, slot: int, lazy_id: int, side: str) -> None:
        if slot != lazy_id:
            raise RuntimeError(
                f"incremental session {side} slots diverged: plane allocated "
                f"{slot}, matcher allocated {lazy_id}"
            )

    def insert_worker(self, worker_pos: int) -> None:
        worker = self._workers[worker_pos]
        location = worker.location
        slot = int(
            self.plane.insert_workers(
                [location.x], [location.y], [worker.radius]
            )[0]
        )
        row = self.plane.worker_row(slot)
        lazy_id, _ = self.lazy.new_worker(row)
        self._guard(slot, lazy_id, "worker")
        self._worker_slot[worker_pos] = slot
        self._worker_pos[slot] = worker_pos

    def remove_worker(self, worker_pos: int) -> None:
        slot = self._worker_slot.pop(worker_pos)
        del self._worker_pos[slot]
        self.lazy.remove_worker(slot)
        self.plane.remove_worker(slot)

    def _insert(self, task_pos: int, weight: float, greedy: bool) -> bool:
        origin = self._tasks[task_pos].origin
        row = self.plane.task_rows([origin.x], [origin.y])[0]
        slot = int(self.plane.insert_tasks([origin.x], [origin.y])[0])
        lazy_id, matched = self.lazy.new_task(row, weight, greedy=greedy)
        self._guard(slot, lazy_id, "task")
        self._task_slot[task_pos] = slot
        return matched

    def insert_task(self, task_pos: int, weight: float) -> bool:
        return self._insert(task_pos, weight, greedy=False)

    def insert_task_greedy(self, task_pos: int, weight: float) -> bool:
        return self._insert(task_pos, weight, greedy=True)

    def is_task_matched(self, task_pos: int) -> bool:
        return self.lazy.worker_of(self._task_slot[task_pos]) is not None

    def commit_task(self, task_pos: int) -> int:
        slot = self._task_slot.pop(task_pos)
        worker_slot = self.lazy.commit_task(slot)
        self.plane.remove_task(slot)
        self.plane.remove_worker(worker_slot)
        worker_pos = self._worker_pos.pop(worker_slot)
        del self._worker_slot[worker_pos]
        return worker_pos

    def remove_task(self, task_pos: int) -> None:
        slot = self._task_slot.pop(task_pos)
        self.lazy.remove_task(slot)
        self.plane.remove_task(slot)


class DispatchSession:
    """Event-at-a-time dispatch over one maintained matching.

    The no-window core of ROADMAP item 2(i): each arrival is processed
    the moment it happens — settle everything due strictly up to the
    event time, then quote → decide → insert (tasks) or join (workers) —
    with a single resident :class:`~repro.matching.incremental.DynamicMatcher`
    carrying the tentative assignment state across events.  Both the
    offline :class:`EventStreamingEngine` and the ``repro.service``
    socket front end drive this same object, which is what makes the
    service's differential gate against the offline engine exact: same
    ops in the same order on the same floats.

    Compared to the windowed :class:`DynamicStreamingEngine` the
    semantics differ in exactly two documented ways (``docs/service.md``):
    settlements happen at *event* time rather than window starts (so a
    worker expiring between two arrivals is gone for the second — the
    satellite-1 bugfix the windowed engines deliberately do not adopt),
    and each task is priced on a single-task instance rather than a
    window batch (identical prices for the grid-state strategies; the
    batch-supply-aware MAPS planner is rejected at construction).

    Args:
        stream: The arrival stream (market context; its events are only
            consumed here when ``universe`` is not supplied).
        strategy: The pricing strategy; it is ``reset()`` and then owned
            by the session (per-event feedback mutates its state).
        seed: Accept/reject RNG seed, derived exactly as the engines do.
        task_lifetime: Default task lifetime (``Task.duration`` overrides
            per task).
        max_degree: Optional universe adjacency cap (universe backend
            only; the incremental backend is always exact).
        universe: Pre-built ``(instance, task_arrivals, worker_arrivals)``
            triple from :func:`build_universe`, to skip the pre-scan.
        incremental: Backend selection.  ``True`` quotes off the live
            incremental adjacency plane
            (:class:`~repro.spatial.index.IncrementalAdjacencyIndex` +
            :class:`~repro.matching.incremental.LazyDynamicMatcher`):
            no universe graph is ever built, events are materialised
            lazily from the stream as positions are first touched, and
            each insert costs the *live* neighbourhood instead of a
            universe row that grows with the stream horizon.  ``False``
            forces the classic universe :class:`DynamicMatcher`.
            ``None`` (default) resolves to ``True`` exactly when it is
            float-free to do so: no universe supplied and no
            ``max_degree`` (the cap is a whole-universe rule the live
            plane cannot reproduce).  Both backends produce bit-identical
            quotes, matches and settlements for the same stream — the
            differential contract of
            ``tests/simulation/test_streaming_service.py``.
        collector: Optional :class:`MetricsCollector`; stage timings are
            attributed like the windowed engine (quote/observe → pricing,
            decide/feedback → decide, settle/insert → matching).
        stage_hook: Optional ``(stage, seconds)`` callback observing wall
            time per stage (``settle``/``quote``/``decide``/``match``/
            ``feedback``) — the service's latency histograms.
    """

    def __init__(
        self,
        stream: ArrivalStream,
        strategy: PricingStrategy,
        seed: int = 0,
        task_lifetime: float = 4.0,
        max_degree: Optional[int] = None,
        universe: Optional[Tuple[PeriodInstance, Sequence[float], Sequence[float]]] = None,
        collector: Optional[MetricsCollector] = None,
        stage_hook: Optional[Callable[[str, float], None]] = None,
        incremental: Optional[bool] = None,
    ) -> None:
        if task_lifetime <= 0:
            raise ValueError("task_lifetime must be positive")
        if getattr(strategy, "name", None) == "MAPS":
            raise ValueError(
                "MAPS prices a window batch against its worker supply and "
                "cannot quote single events; choose a grid-state strategy "
                "(BaseP, SDR, SDE, CappedUCB) for event-at-a-time dispatch"
            )
        if incremental is None:
            incremental = universe is None and max_degree is None
        elif incremental and max_degree is not None:
            raise ValueError(
                "the incremental session backend is exact (the universe "
                "max_degree cap does not commute with arrival order); drop "
                "max_degree or pass incremental=False"
            )
        self.incremental = bool(incremental)
        self.stream = stream
        self.strategy = strategy
        self.seed = int(seed)
        self.task_lifetime = float(task_lifetime)
        self._events: Optional[Iterator[ArrivalEvent]] = None
        if universe is not None:
            self.universe, self._task_arrivals, self._worker_arrivals = universe
            self._tasks: Sequence[Task] = self.universe.tasks
            self._workers: Sequence[Worker] = self.universe.workers
        elif self.incremental:
            # No pre-scan: entities and arrival times materialise lazily
            # from the stream, in order, as positions are first touched.
            self.universe = None
            self._events = _validated_events(stream)
            self._tasks = []
            self._workers = []
            self._task_arrivals = []
            self._worker_arrivals = []
        else:
            universe = build_universe(stream, max_degree=max_degree)
            self.universe, self._task_arrivals, self._worker_arrivals = universe
            self._tasks = self.universe.tasks
            self._workers = self.universe.workers
        self.collector = collector
        self.stage_hook = stage_hook

        strategy.reset()
        self.rng = np.random.default_rng(
            derive_seed(self.seed, "acceptance", strategy.name)
        )
        self.pipeline = PeriodPipeline(
            price_bounds=stream.price_bounds,
            acceptance=stream.acceptance,
            matching_backend="matroid",
        )
        if self.incremental:
            self.matcher: Union[DynamicMatcher, _LiveSessionMatcher] = (
                _LiveSessionMatcher(
                    stream.grid, stream.metric, self._tasks, self._workers
                )
            )
        else:
            num_tasks = len(self.universe.tasks)
            self.matcher = DynamicMatcher(self.universe.graph, [0.0] * num_tasks)
        self.live_weights: Dict[int, float] = {}
        self.live_workers: set = set()
        self._deadlines: List[Tuple[float, int]] = []
        self._departures: List[Tuple[float, int]] = []
        self.clock = 0.0

        # Outcome counters (the service's /stats surface reads these).
        self.revenue = 0.0
        self.quoted = 0
        self.accepted = 0
        self.degraded = 0
        self.committed = 0
        self.expired = 0
        self.departed = 0
        self.commit_log: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # lazy event materialisation (incremental backend without a universe)
    # ------------------------------------------------------------------
    def _materialise(self, kind: str, pos: int) -> None:
        """Advance the stream until position ``pos`` of ``kind`` exists.

        Arrival order is position order on each side, so a driver that
        walks the stream with running counters only ever asks for the
        next position — the pull below is O(events since the last call).
        Events of the *other* kind encountered on the way are stored too
        (their positions advance in lockstep with the driver's
        counters); they enter the market only when their own
        ``on_task``/``on_worker`` call arrives.
        """
        entities = self._tasks if kind == "task" else self._workers
        while pos >= len(entities):
            event = next(self._events, None)
            if event is None:
                raise IndexError(
                    f"{kind} position {pos} is beyond the end of the stream"
                )
            if isinstance(event, TaskArrival):
                self._tasks.append(event.task)
                self._task_arrivals.append(float(event.time))
            else:
                self._workers.append(event.worker)
                self._worker_arrivals.append(float(event.time))

    def _task_at(self, task_pos: int) -> Task:
        if self._events is not None:
            self._materialise("task", task_pos)
        return self._tasks[task_pos]

    def _worker_at(self, worker_pos: int) -> Worker:
        if self._events is not None:
            self._materialise("worker", worker_pos)
        return self._workers[worker_pos]

    # ------------------------------------------------------------------
    # stage timing
    # ------------------------------------------------------------------
    def _staged(self, stage: str, timer_name: Optional[str]):
        """Context manager stacking the collector timer and the hook."""

        @contextmanager
        def _cm() -> Iterator[None]:
            start = perf_counter() if self.stage_hook is not None else 0.0
            if self.collector is not None and timer_name is not None:
                with getattr(self.collector, timer_name)():
                    yield
            else:
                yield
            if self.stage_hook is not None:
                self.stage_hook(stage, perf_counter() - start)

        return _cm()

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def settle_until(self, bound: float) -> List[Settlement]:
        """Commit/expire/depart everything due at or before ``bound``.

        Same interleaving contract as the windowed engines' ``_settle``
        (global time order, ties deadline-first, heaps keyed
        ``(time, position)``) so windowed and event-at-a-time runs see
        the identical settlement sequence for the same heap contents.
        Returns the settlement records in processing order.
        """
        records: List[Settlement] = []
        matcher = self.matcher
        deadlines = self._deadlines
        departures = self._departures
        while deadlines or departures:
            due_deadline = deadlines[0][0] if deadlines else math.inf
            due_departure = departures[0][0] if departures else math.inf
            if min(due_deadline, due_departure) > bound:
                break
            if due_deadline <= due_departure:
                due, task_pos = heapq.heappop(deadlines)
                if task_pos not in self.live_weights:
                    continue
                task_id = self._tasks[task_pos].task_id
                if matcher.is_task_matched(task_pos):
                    worker_pos = matcher.commit_task(task_pos)
                    amount = self.live_weights.pop(task_pos)
                    self.revenue += amount
                    self.committed += 1
                    self.live_workers.discard(worker_pos)
                    worker_id = self._workers[worker_pos].worker_id
                    self.commit_log.append((task_id, worker_id))
                    records.append(
                        Settlement(
                            kind="commit",
                            time=due,
                            task_id=task_id,
                            worker_id=worker_id,
                            revenue=amount,
                        )
                    )
                else:
                    matcher.remove_task(task_pos)
                    self.live_weights.pop(task_pos)
                    self.expired += 1
                    records.append(
                        Settlement(kind="expire", time=due, task_id=task_id)
                    )
            else:
                due, worker_pos = heapq.heappop(departures)
                if worker_pos not in self.live_workers:
                    continue  # retired by an earlier commit
                matcher.remove_worker(worker_pos)
                self.live_workers.discard(worker_pos)
                self.departed += 1
                records.append(
                    Settlement(
                        kind="depart",
                        time=due,
                        worker_id=self._workers[worker_pos].worker_id,
                    )
                )
        return records

    def drain(self) -> List[Settlement]:
        """Settle everything still pending (end of stream)."""
        with self._staged("settle", "time_matching"):
            return self.settle_until(math.inf)

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def on_worker(
        self, worker_pos: int, time: Optional[float] = None
    ) -> Tuple[bool, List[Settlement]]:
        """A worker comes online: settle up to now, then join the market.

        Returns ``(joined, settlements)``; ``joined`` is ``False`` when
        the worker's availability already expired at its own arrival
        time (a zero-length shift).
        """
        worker = self._worker_at(worker_pos)
        at = float(self._worker_arrivals[worker_pos] if time is None else time)
        self.clock = max(self.clock, at)
        with self._staged("settle", "time_matching"):
            settlements = self.settle_until(at)
        departs: Optional[float] = None
        if worker.duration is not None:
            departs = float(worker.period + worker.duration)
            if departs <= at:
                return False, settlements
        with self._staged("match", "time_matching"):
            self.matcher.insert_worker(worker_pos)
        self.live_workers.add(worker_pos)
        if departs is not None:
            heapq.heappush(self._departures, (departs, worker_pos))
        return True, settlements

    def depart_worker(
        self, worker_pos: int, time: float
    ) -> Tuple[bool, List[Settlement]]:
        """Explicit worker departure (e.g. a service disconnect message).

        Returns ``(departed, settlements)``; ``departed`` is ``False``
        when the worker was not live (never joined, already committed or
        already departed).  Any duration-scheduled departure left in the
        heap is skipped when it comes up (liveness is re-checked there).
        """
        at = float(time)
        self.clock = max(self.clock, at)
        with self._staged("settle", "time_matching"):
            settlements = self.settle_until(at)
        if worker_pos not in self.live_workers:
            return False, settlements
        with self._staged("match", "time_matching"):
            self.matcher.remove_worker(worker_pos)
        self.live_workers.discard(worker_pos)
        self.departed += 1
        settlements = settlements + [
            Settlement(
                kind="depart",
                time=at,
                worker_id=self._workers[worker_pos].worker_id,
            )
        ]
        return True, settlements

    def on_task(
        self,
        task_pos: int,
        time: Optional[float] = None,
        degrade: bool = False,
    ) -> Tuple[QuoteOutcome, List[Settlement]]:
        """A task arrives: settle up to now, quote, decide, insert.

        The quote runs on a single-task instance (no worker batch — the
        grid-state strategies price from their per-cell state), the
        accept/reject decision consumes the RNG exactly like the batch
        decide stage, and an accepted task enters the maintained matching
        in the same ``eligible_order`` filter the engines use.  With
        ``degrade=True`` the insert takes the bounded greedy path
        (:meth:`~repro.matching.incremental.DynamicMatcher.insert_task_greedy`)
        instead of the exact delta repair — the service's SLO fallback.
        """
        task = self._task_at(task_pos)
        at = float(self._task_arrivals[task_pos] if time is None else time)
        self.clock = max(self.clock, at)
        with self._staged("settle", "time_matching"):
            settlements = self.settle_until(at)

        instance = PeriodInstance.build(
            period=window_index(at, 1.0),
            grid=self.stream.grid,
            tasks=[task],
            workers=[],
            metric=self.stream.metric,
        )
        with self._staged("quote", "time_pricing"):
            grid_prices = self.pipeline.quote(self.strategy, instance)
        with self._staged("decide", "time_decide"):
            decision = self.pipeline.decide(instance, grid_prices, self.rng)

        accepted = bool(decision.accepted[0])
        matched = False
        was_degraded = False
        weight = 0.0
        deadline: Optional[float] = None
        with self._staged("match", "time_matching"):
            arrays = instance.ensure_arrays()
            weights = arrays.distances * decision.prices
            weight_arr, order = eligible_order(
                instance.num_tasks, weights, decision.accepted_positions
            )
            for local_pos in order:  # zero or one iterations
                weight = float(weight_arr[local_pos])
                if degrade:
                    matched = self.matcher.insert_task_greedy(task_pos, weight)
                    was_degraded = True
                    self.degraded += 1
                else:
                    matched = self.matcher.insert_task(task_pos, weight)
                self.live_weights[task_pos] = weight
                lifetime = (
                    task.duration if task.duration is not None else self.task_lifetime
                )
                deadline = at + float(lifetime)
                heapq.heappush(self._deadlines, (deadline, task_pos))

        # Tentative serve signal, exactly as the windowed dynamic engine
        # reports it (the feedback stage reads matched-task keys only).
        tentative = {0: -1} if matched else {}
        with self._staged("feedback", "time_decide"):
            batch = self.pipeline.feedback(instance, decision, tentative)
        with self._staged("feedback", "time_pricing"):
            self.strategy.observe_feedback_batch(batch)

        self.quoted += 1
        self.accepted += int(accepted)
        outcome = QuoteOutcome(
            task_pos=task_pos,
            task_id=task.task_id,
            grid_index=task.grid_index,
            price=float(decision.prices[0]),
            accepted=accepted,
            matched=matched,
            degraded=was_degraded,
            weight=weight,
            deadline=deadline,
        )
        return outcome, settlements


class EventStreamingEngine(DynamicStreamingEngine):
    """Offline event-at-a-time replay: the service's reference run.

    Drives a :class:`DispatchSession` over the stream's events in order
    — no window loop at all — and aggregates metric rows per unit period
    so reports stay comparable with the other engines.  The service's
    differential gate replays the same stream over the socket and
    asserts the committed pairs and total revenue are bitwise equal to
    this engine's (``session.revenue`` accumulates per commit in
    settlement order on both sides).

    The ``window`` of the parent is fixed at ``1.0`` and only used for
    metric binning; ``resolve`` does not apply (there is nothing to
    re-window).  The stream must be re-iterable, as for the parent: the
    replay loop iterates it, and the session either pre-scans it
    (universe backend) or lazily walks its own second iterator
    (incremental backend — the default when ``max_degree`` is unset; the
    ``incremental`` argument forces either backend, see
    :class:`DispatchSession`).  After :meth:`run`, the session is kept
    on :attr:`last_session` for gates that need the commit log.
    """

    def __init__(
        self,
        stream: ArrivalStream,
        seed: int = 0,
        task_lifetime: float = 4.0,
        max_degree: Optional[int] = None,
        track_memory: bool = False,
        keep_details: bool = False,
        incremental: Optional[bool] = None,
    ) -> None:
        super().__init__(
            stream,
            seed=seed,
            window=1.0,
            task_lifetime=task_lifetime,
            resolve="delta",
            max_degree=max_degree,
            track_memory=track_memory,
            keep_details=keep_details,
        )
        self.incremental = incremental
        self.last_session: Optional[DispatchSession] = None

    def run(self, strategy: PricingStrategy) -> SimulationResult:
        """Replay every event through a fresh session, in stream order."""
        collector = MetricsCollector(strategy.name, track_memory=self.track_memory)
        collector.start()
        session = DispatchSession(
            self.stream,
            strategy,
            seed=self.seed,
            task_lifetime=self.task_lifetime,
            max_degree=self.max_degree,
            collector=collector,
            incremental=self.incremental,
        )
        self.last_session = session

        # Per-unit-period aggregation for the metric rows: settlements
        # are attributed to the period they were due in, quotes to their
        # arrival period.
        rows: Dict[int, Dict[str, float]] = {}
        prices: Dict[int, Dict[int, float]] = {}
        workers_by_period: Dict[int, int] = {}

        def _row(period: int) -> Dict[str, float]:
            return rows.setdefault(
                period, {"revenue": 0.0, "commits": 0, "accepted": 0, "tasks": 0}
            )

        def _absorb(settlements: List[Settlement]) -> None:
            for settlement in settlements:
                if settlement.kind != "commit":
                    continue
                row = _row(window_index(settlement.time, 1.0))
                row["revenue"] += settlement.revenue
                row["commits"] += 1

        next_task = 0
        next_worker = 0
        for event in _validated_events(self.stream):
            if isinstance(event, TaskArrival):
                task_pos = next_task
                next_task += 1
                outcome, settlements = session.on_task(task_pos, float(event.time))
                period = window_index(float(event.time), 1.0)
                row = _row(period)
                row["tasks"] += 1
                row["accepted"] += int(outcome.accepted)
                if outcome.grid_index is not None:
                    prices.setdefault(period, {})[outcome.grid_index] = outcome.price
            else:
                worker_pos = next_worker
                next_worker += 1
                period = window_index(float(event.time), 1.0)
                workers_by_period[period] = workers_by_period.get(period, 0) + 1
                _, settlements = session.on_worker(worker_pos, float(event.time))
            _absorb(settlements)
        _absorb(session.drain())

        outcomes: List[PeriodOutcome] = []
        for period in sorted(rows):
            row = rows[period]
            if not (row["tasks"] or row["revenue"] or row["commits"]):
                continue
            collector.record_period(
                revenue=row["revenue"],
                served_tasks=int(row["commits"]),
                accepted_tasks=int(row["accepted"]),
                total_tasks=int(row["tasks"]),
            )
            if self.keep_details:
                outcomes.append(
                    PeriodOutcome(
                        period=period,
                        num_tasks=int(row["tasks"]),
                        num_workers=workers_by_period.get(period, 0),
                        prices=prices.get(period, {}),
                        accepted_tasks=int(row["accepted"]),
                        served_tasks=int(row["commits"]),
                        revenue=row["revenue"],
                    )
                )

        metrics = collector.finish()
        return SimulationResult(
            metrics=metrics, outcomes=outcomes, description=self.stream.description
        )


__all__ = [
    "ArrivalEvent",
    "ArrivalStream",
    "DispatchSession",
    "DynamicStreamingEngine",
    "EventStreamingEngine",
    "QuoteOutcome",
    "Settlement",
    "StreamingEngine",
    "TaskArrival",
    "WorkerArrival",
    "build_universe",
    "resolve_demand_grids",
    "stream_to_workload",
    "window_index",
    "workload_to_stream",
]
