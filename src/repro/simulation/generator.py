"""Synthetic workload generation (Table 3 of the paper).

The generator reproduces the paper's synthetic setup:

* all locations live in a ``region_side x region_side`` square
  (paper: 100 x 100);
* start times of tasks and workers follow a normal distribution over the
  horizon — the *temporal distribution*; the experiments vary the tasks'
  mean while the workers' mean stays at the middle of the horizon;
* origins of tasks and workers follow a two-dimensional Gaussian — the
  *spatial distribution* — whose mean is ``spatial_mean * (side, side)``;
* task destinations are uniform over the region;
* private valuations follow the *demand distribution*: a normal
  distribution (mean 1.0–3.0, std 0.5–2.5) conditioned on ``[1, 5]``, or an
  exponential distribution for the Appendix D experiment; every grid uses
  a slightly perturbed mean so grids genuinely differ, matching the paper's
  statement that "the valuations v_r are drawn from each normal
  distribution w.r.t. the mean of g".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.market.acceptance import DistributionAcceptanceModel, PerGridAcceptance
from repro.market.entities import Task, Worker
from repro.market.valuation import (
    ExponentialValuation,
    TruncatedNormalValuation,
    ValuationDistribution,
)
from repro.simulation.config import SyntheticConfig, WorkloadBundle
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.utils.rng import derive_seed


class SyntheticWorkloadGenerator:
    """Generates :class:`WorkloadBundle` objects from a :class:`SyntheticConfig`."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> WorkloadBundle:
        """Generate the full workload (tasks, workers, acceptance models)."""
        config = self.config
        grid = config.build_grid()
        acceptance = self._build_acceptance(grid)

        task_rng = np.random.default_rng(derive_seed(config.seed, "tasks"))
        worker_rng = np.random.default_rng(derive_seed(config.seed, "workers"))
        valuation_rng = np.random.default_rng(derive_seed(config.seed, "valuations"))

        tasks_by_period: List[List[Task]] = [[] for _ in range(config.num_periods)]
        workers_by_period: List[List[Worker]] = [[] for _ in range(config.num_periods)]

        task_periods = self._sample_periods(task_rng, config.num_tasks, config.temporal_mu)
        task_origins = self._sample_locations(task_rng, config.num_tasks, config.spatial_mean)
        task_destinations = self._sample_uniform_locations(task_rng, config.num_tasks)

        for task_id in range(config.num_tasks):
            origin = task_origins[task_id]
            destination = task_destinations[task_id]
            period = task_periods[task_id]
            grid_index = grid.locate(origin)
            model = acceptance.model_for(grid_index)
            valuation = model.sample_valuation(valuation_rng)
            task = Task(
                task_id=task_id,
                period=period,
                origin=origin,
                destination=destination,
                valuation=valuation,
                grid_index=grid_index,
            )
            tasks_by_period[period].append(task)

        # Worker start times are centred at the middle of the horizon
        # (the experiments only shift the task distribution's mean).
        worker_periods = self._sample_periods(worker_rng, config.num_workers, 0.5)
        worker_locations = self._sample_locations(worker_rng, config.num_workers, 0.5)
        for worker_id in range(config.num_workers):
            worker = Worker(
                worker_id=worker_id,
                period=worker_periods[worker_id],
                location=worker_locations[worker_id],
                radius=config.worker_radius,
            )
            workers_by_period[worker_periods[worker_id]].append(worker)

        bundle = WorkloadBundle(
            grid=grid,
            tasks_by_period=tasks_by_period,
            workers_by_period=workers_by_period,
            acceptance=acceptance,
            metric="euclidean",
            price_bounds=config.price_bounds,
            description=self._describe(),
        )
        bundle.validate()
        return bundle

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def _sample_periods(self, rng: np.random.Generator, count: int, mu_fraction: float) -> np.ndarray:
        """Start periods from a normal distribution over the horizon."""
        config = self.config
        mean = mu_fraction * (config.num_periods - 1)
        std = max(1e-6, config.temporal_sigma * config.num_periods)
        raw = rng.normal(mean, std, size=count)
        periods = np.clip(np.rint(raw), 0, config.num_periods - 1).astype(int)
        return periods

    def _sample_locations(self, rng: np.random.Generator, count: int, mean_fraction: float) -> List[Point]:
        """Origins from a 2-D Gaussian clipped to the region."""
        config = self.config
        side = config.region_side
        mean = mean_fraction * side
        std = max(1e-6, config.spatial_sigma * side)
        xs = np.clip(rng.normal(mean, std, size=count), 0.0, side)
        ys = np.clip(rng.normal(mean, std, size=count), 0.0, side)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    def _sample_uniform_locations(self, rng: np.random.Generator, count: int) -> List[Point]:
        side = self.config.region_side
        xs = rng.uniform(0.0, side, size=count)
        ys = rng.uniform(0.0, side, size=count)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    def _build_acceptance(self, grid: Grid) -> PerGridAcceptance:
        """One valuation distribution per grid, perturbed around the config mean."""
        config = self.config
        low, high = config.valuation_bounds
        rng = np.random.default_rng(derive_seed(config.seed, "grid-demand"))
        models: Dict[int, DistributionAcceptanceModel] = {}
        for cell in grid.cells():
            distribution = self._grid_distribution(rng, low, high)
            models[cell.index] = DistributionAcceptanceModel(distribution)
        default = DistributionAcceptanceModel(self._grid_distribution(rng, low, high))
        return PerGridAcceptance(models=models, default=default)

    def _grid_distribution(
        self, rng: np.random.Generator, low: float, high: float
    ) -> ValuationDistribution:
        config = self.config
        if config.demand_distribution == "exponential":
            # Perturb the rate mildly so grids differ but stay comparable.
            rate = max(0.05, config.demand_rate * float(rng.uniform(0.9, 1.1)))
            return ExponentialValuation(rate=rate, shift=low, upper=high)
        mean = float(
            np.clip(config.demand_mu + rng.normal(0.0, 0.15 * config.demand_sigma), low, high)
        )
        return TruncatedNormalValuation(
            mean=mean, std=config.demand_sigma, lower=low, upper=high
        )

    def _describe(self) -> str:
        config = self.config
        return (
            f"synthetic(|W|={config.num_workers}, |R|={config.num_tasks}, "
            f"T={config.num_periods}, G={config.num_grids}, a_w={config.worker_radius}, "
            f"demand={config.demand_distribution})"
        )


__all__ = ["SyntheticWorkloadGenerator"]
