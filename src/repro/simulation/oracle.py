"""The probe oracle that backs Base Pricing calibration in simulations.

Algorithm 1 "uses the price p for h(p) times and observes the acceptance
ratio" — i.e. it interacts with (historical) requesters.  In the simulator
those interactions are answered by the ground-truth per-grid acceptance
models: offering a price to ``count`` requesters of a grid draws ``count``
Bernoulli samples with success probability ``S^g(p)``.

The oracle also keeps a ledger of how many probes were issued per grid,
which the experiment reports use to document the calibration budget.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.market.acceptance import PerGridAcceptance
from repro.utils.rng import RandomState, as_generator


class SimulatedProbeOracle:
    """Accept/reject probe oracle backed by ground-truth acceptance models.

    Args:
        acceptance: Ground-truth per-grid acceptance models.
        rng: Random generator (or seed) for the Bernoulli draws.
    """

    def __init__(self, acceptance: PerGridAcceptance, rng: Optional[RandomState] = None, seed: int = 0) -> None:
        self._acceptance = acceptance
        self._rng = rng if isinstance(rng, np.random.Generator) else as_generator(seed if rng is None else rng)
        self._probes: Dict[Tuple[int, float], int] = {}

    def offer(self, grid_index: int, price: float, count: int) -> int:
        """Offer ``price`` to ``count`` requesters of ``grid_index``.

        Returns:
            The number of acceptances (a Binomial(count, S^g(price)) draw).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        probability = self._acceptance.acceptance_ratio(grid_index, price)
        probability = min(1.0, max(0.0, probability))
        acceptances = int(self._rng.binomial(count, probability))
        key = (int(grid_index), float(price))
        self._probes[key] = self._probes.get(key, 0) + count
        return acceptances

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def total_probes(self) -> int:
        return sum(self._probes.values())

    def probes_for_grid(self, grid_index: int) -> int:
        return sum(
            count for (grid, _price), count in self._probes.items() if grid == grid_index
        )


__all__ = ["SimulatedProbeOracle"]
