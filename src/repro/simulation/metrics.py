"""Metrics collection: revenue, running time and memory.

The paper reports three metrics per strategy and parameter setting: total
revenue across the horizon, total running time of the pricing strategy
(excluding workload generation), and peak memory.  Python cannot reproduce
the absolute C++ numbers, but the *relative* ordering (MAPS slowest but
still cheap, CappedUCB most memory-hungry, heuristics constant-time) is
what :class:`MetricsCollector` captures: it accumulates per-period pricing
time with ``time.perf_counter`` and tracks peak memory with ``tracemalloc``
when enabled.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class StrategyMetrics:
    """Aggregated metrics of one strategy over one simulation run.

    Attributes:
        strategy: Strategy name.
        total_revenue: Sum of realized revenue over all periods.
        pricing_time_seconds: Time spent inside the strategy (pricing +
            learning updates), summed over periods.
        decide_time_seconds: Time spent realising the requesters'
            accept/reject decisions and packing the feedback batch (the
            platform-side vectorised decide/feedback stages).
        matching_time_seconds: Time spent computing the realized matching
            (the platform-side assignment; identical workload for every
            strategy).
        peak_memory_bytes: Peak traced allocation during the run (0 when
            memory tracking is disabled).
        served_tasks: Number of tasks actually served.
        accepted_tasks: Number of tasks whose requester accepted the price.
        total_tasks: Number of tasks offered a price.
        revenue_by_period: Realized revenue per period (for time series
            plots and tests).
    """

    strategy: str
    total_revenue: float = 0.0
    pricing_time_seconds: float = 0.0
    decide_time_seconds: float = 0.0
    matching_time_seconds: float = 0.0
    peak_memory_bytes: int = 0
    served_tasks: int = 0
    accepted_tasks: int = 0
    total_tasks: int = 0
    revenue_by_period: List[float] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        if self.total_tasks == 0:
            return 0.0
        return self.accepted_tasks / self.total_tasks

    @property
    def service_rate(self) -> float:
        if self.total_tasks == 0:
            return 0.0
        return self.served_tasks / self.total_tasks

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1024.0 * 1024.0)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the experiment report writers."""
        return {
            "strategy": self.strategy,
            "total_revenue": self.total_revenue,
            "pricing_time_seconds": self.pricing_time_seconds,
            "decide_time_seconds": self.decide_time_seconds,
            "matching_time_seconds": self.matching_time_seconds,
            "peak_memory_mb": self.peak_memory_mb,
            "served_tasks": float(self.served_tasks),
            "accepted_tasks": float(self.accepted_tasks),
            "total_tasks": float(self.total_tasks),
            "acceptance_rate": self.acceptance_rate,
            "service_rate": self.service_rate,
        }


class MetricsCollector:
    """Accumulates :class:`StrategyMetrics` during a simulation run.

    Args:
        strategy: Strategy name for labelling.
        track_memory: Enable ``tracemalloc`` peak tracking.  Off by default
            because tracing slows allocation-heavy code noticeably; the
            memory benchmarks switch it on explicitly.
    """

    def __init__(self, strategy: str, track_memory: bool = False) -> None:
        self.metrics = StrategyMetrics(strategy=strategy)
        self._track_memory = bool(track_memory)
        self._memory_started_here = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._memory_started_here = True

    def finish(self) -> StrategyMetrics:
        if self._track_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.metrics.peak_memory_bytes = max(self.metrics.peak_memory_bytes, int(peak))
            if self._memory_started_here:
                tracemalloc.stop()
        return self.metrics

    # ------------------------------------------------------------------
    # timed sections
    # ------------------------------------------------------------------
    @contextmanager
    def time_pricing(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.pricing_time_seconds += time.perf_counter() - start

    @contextmanager
    def time_decide(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.decide_time_seconds += time.perf_counter() - start

    @contextmanager
    def time_matching(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.matching_time_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # per-period accounting
    # ------------------------------------------------------------------
    def record_period(
        self,
        revenue: float,
        served_tasks: int,
        accepted_tasks: int,
        total_tasks: int,
    ) -> None:
        if revenue < 0:
            raise ValueError("revenue must be non-negative")
        self.metrics.total_revenue += revenue
        self.metrics.revenue_by_period.append(revenue)
        self.metrics.served_tasks += served_tasks
        self.metrics.accepted_tasks += accepted_tasks
        self.metrics.total_tasks += total_tasks
        if self._track_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.metrics.peak_memory_bytes = max(self.metrics.peak_memory_bytes, int(peak))


__all__ = ["MetricsCollector", "StrategyMetrics"]
