"""Columnar period data plane: structure-of-arrays chunks and views.

City-scale horizons move millions of tiny :class:`~repro.market.entities.Task`
/ :class:`~repro.market.entities.Worker` records through the engine; at
that volume the Python objects themselves — construction, attribute
reads, pickling across process boundaries — dominate the runtime.  This
module keeps each period **columnar**: one :class:`TaskColumns` /
:class:`WorkerColumns` pair of flat numpy arrays per chunk, produced
natively by the generators, partitioned by shard with array ops, handed
to the pipeline as :class:`~repro.core.gdp.PeriodArrays` without a
per-task detour through objects, and shareable across processes through
:class:`~repro.utils.shm.ShmArena` segments (see
:class:`WorkloadArena`).

Objects do not disappear — the halo-exchange pass and the public
``PeriodInstance.tasks`` API still speak ``Task`` — they become *lazy*:
:class:`LazyTasks` / :class:`LazyWorkers` materialise (and cache) a
record only when some consumer actually indexes it, and materialised
records are value-identical to the ones the object pipeline would have
built, which is what keeps columnar runs bit-identical to object runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.market.entities import Task, Worker
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.utils.shm import ArenaHandle, ShmArena

#: Sentinel in ``WorkerColumns.durations`` for "available until matched".
NO_DURATION = -1


@dataclass(frozen=True, eq=False)
class TaskColumns:
    """One period's tasks as flat arrays (struct-of-arrays).

    Attributes:
        period: The period every task of the chunk belongs to.
        task_ids: ``int64`` task identifiers.
        xs / ys: ``float64`` origin coordinates.
        dest_xs / dest_ys: ``float64`` destination coordinates.
        distances: ``float64`` travel distance per task (``d_r``).
        valuations: ``float64`` private valuations (``NaN`` where the
            task has none and acceptance is model-driven).
        has_valuation: Boolean mask mirroring ``Task.valuation is None``
            (an explicit ``NaN`` valuation keeps ``True``; see
            :class:`~repro.core.gdp.PeriodArrays`).
        cells: ``int64`` 1-based grid cell of each origin.
    """

    period: int
    task_ids: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    dest_xs: np.ndarray
    dest_ys: np.ndarray
    distances: np.ndarray
    valuations: np.ndarray
    has_valuation: np.ndarray
    cells: np.ndarray

    def __len__(self) -> int:
        return int(self.task_ids.shape[0])

    @classmethod
    def from_tasks(cls, tasks: Sequence[Task], grid: Optional[Grid] = None) -> "TaskColumns":
        """Extract columns from task objects (annotating cells if needed)."""
        count = len(tasks)
        period = tasks[0].period if count else 0
        cells = np.empty(count, dtype=np.int64)
        for pos, task in enumerate(tasks):
            if task.grid_index is not None:
                cells[pos] = task.grid_index
            elif grid is not None:
                cells[pos] = grid.locate(task.origin)
            else:
                raise ValueError(
                    f"task {task.task_id} has no grid index and no grid was given"
                )
        return cls(
            period=int(period),
            task_ids=np.fromiter((t.task_id for t in tasks), dtype=np.int64, count=count),
            xs=np.fromiter((t.origin.x for t in tasks), dtype=np.float64, count=count),
            ys=np.fromiter((t.origin.y for t in tasks), dtype=np.float64, count=count),
            dest_xs=np.fromiter(
                (t.destination.x for t in tasks), dtype=np.float64, count=count
            ),
            dest_ys=np.fromiter(
                (t.destination.y for t in tasks), dtype=np.float64, count=count
            ),
            distances=np.fromiter(
                (t.distance for t in tasks), dtype=np.float64, count=count
            ),
            valuations=np.fromiter(
                (np.nan if t.valuation is None else t.valuation for t in tasks),
                dtype=np.float64,
                count=count,
            ),
            has_valuation=np.fromiter(
                (t.valuation is not None for t in tasks), dtype=bool, count=count
            ),
            cells=cells,
        )

    def take(self, positions: np.ndarray) -> "TaskColumns":
        """Columns restricted to ``positions`` (fancy-indexed copy)."""
        return TaskColumns(
            period=self.period,
            task_ids=self.task_ids[positions],
            xs=self.xs[positions],
            ys=self.ys[positions],
            dest_xs=self.dest_xs[positions],
            dest_ys=self.dest_ys[positions],
            distances=self.distances[positions],
            valuations=self.valuations[positions],
            has_valuation=self.has_valuation[positions],
            cells=self.cells[positions],
        )

    def task_at(self, pos: int) -> Task:
        """Materialise one :class:`Task`, value-identical to the object path."""
        return Task(
            task_id=int(self.task_ids[pos]),
            period=self.period,
            origin=Point(float(self.xs[pos]), float(self.ys[pos])),
            destination=Point(float(self.dest_xs[pos]), float(self.dest_ys[pos])),
            distance=float(self.distances[pos]),
            valuation=(
                float(self.valuations[pos]) if bool(self.has_valuation[pos]) else None
            ),
            grid_index=int(self.cells[pos]),
        )

    def to_tasks(self) -> List[Task]:
        """Materialise every task (small scales / compatibility paths)."""
        return [self.task_at(pos) for pos in range(len(self))]


@dataclass(frozen=True, eq=False)
class WorkerColumns:
    """One period's arriving workers as flat arrays.

    Attributes mirror :class:`~repro.market.entities.Worker`; a
    ``durations`` entry of :data:`NO_DURATION` encodes ``None``
    ("available until matched").
    """

    worker_ids: np.ndarray
    periods: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    radii: np.ndarray
    durations: np.ndarray

    def __len__(self) -> int:
        return int(self.worker_ids.shape[0])

    @classmethod
    def from_workers(cls, workers: Sequence[Worker]) -> "WorkerColumns":
        count = len(workers)
        return cls(
            worker_ids=np.fromiter(
                (w.worker_id for w in workers), dtype=np.int64, count=count
            ),
            periods=np.fromiter((w.period for w in workers), dtype=np.int64, count=count),
            xs=np.fromiter((w.location.x for w in workers), dtype=np.float64, count=count),
            ys=np.fromiter((w.location.y for w in workers), dtype=np.float64, count=count),
            radii=np.fromiter((w.radius for w in workers), dtype=np.float64, count=count),
            durations=np.fromiter(
                (NO_DURATION if w.duration is None else w.duration for w in workers),
                dtype=np.int64,
                count=count,
            ),
        )

    def take(self, positions: np.ndarray) -> "WorkerColumns":
        return WorkerColumns(
            worker_ids=self.worker_ids[positions],
            periods=self.periods[positions],
            xs=self.xs[positions],
            ys=self.ys[positions],
            radii=self.radii[positions],
            durations=self.durations[positions],
        )

    @classmethod
    def concatenate(cls, parts: Sequence["WorkerColumns"]) -> "WorkerColumns":
        if not parts:
            return cls.from_workers([])
        return cls(
            worker_ids=np.concatenate([p.worker_ids for p in parts]),
            periods=np.concatenate([p.periods for p in parts]),
            xs=np.concatenate([p.xs for p in parts]),
            ys=np.concatenate([p.ys for p in parts]),
            radii=np.concatenate([p.radii for p in parts]),
            durations=np.concatenate([p.durations for p in parts]),
        )

    def available_mask(self, period: int) -> np.ndarray:
        """Vectorised ``Worker.available_in(period)`` over the columns."""
        mask = self.periods <= period
        timed = self.durations != NO_DURATION
        mask &= ~timed | (period < self.periods + self.durations)
        return mask

    def worker_at(self, pos: int) -> Worker:
        duration = int(self.durations[pos])
        return Worker(
            worker_id=int(self.worker_ids[pos]),
            period=int(self.periods[pos]),
            location=Point(float(self.xs[pos]), float(self.ys[pos])),
            radius=float(self.radii[pos]),
            duration=None if duration == NO_DURATION else duration,
        )

    def to_workers(self) -> List[Worker]:
        return [self.worker_at(pos) for pos in range(len(self))]


class _LazyRecords(Sequence):
    """Shared machinery of :class:`LazyTasks` / :class:`LazyWorkers`."""

    __slots__ = ("_columns", "_cache")

    def __init__(self, columns) -> None:
        self._columns = columns
        self._cache: List[Optional[object]] = [None] * len(columns)

    def __len__(self) -> int:
        return len(self._cache)

    def _materialize(self, pos: int):
        raise NotImplementedError

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[pos] for pos in range(*index.indices(len(self)))]
        pos = index if index >= 0 else len(self) + index
        if not 0 <= pos < len(self):
            raise IndexError(index)
        record = self._cache[pos]
        if record is None:
            record = self._cache[pos] = self._materialize(pos)
        return record

    @property
    def columns(self):
        return self._columns


class LazyTasks(_LazyRecords):
    """A ``Sequence[Task]`` materialising records from columns on demand."""

    def _materialize(self, pos: int) -> Task:
        return self._columns.task_at(pos)


class LazyWorkers(_LazyRecords):
    """A ``Sequence[Worker]`` materialising records from columns on demand."""

    def _materialize(self, pos: int) -> Worker:
        return self._columns.worker_at(pos)


class PoolView(Sequence):
    """A ``Sequence[Worker]`` view of pool positions, materialised lazily.

    Materialised records are cached *in the pool*, so every view of the
    same position shares one object — exactly what the object pipeline's
    shared ``Worker`` instances provide.
    """

    __slots__ = ("_pool", "_positions")

    def __init__(self, pool: "ColumnarWorkerPool", positions: np.ndarray) -> None:
        self._pool = pool
        self._positions = positions

    def __len__(self) -> int:
        return int(self._positions.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[pos] for pos in range(*index.indices(len(self)))]
        return self._pool.worker(int(self._positions[index]))

    @property
    def positions(self) -> np.ndarray:
        return self._positions


class ColumnarWorkerPool:
    """The engine's live worker pool kept as columns.

    Mirrors the object engine's ``List[Worker]`` pool — same ordering,
    same availability filtering — while exposing the coordinate arrays
    the vectorised dispatch wants and materialising ``Worker`` records
    only where some consumer (halo pass, warm-start cache) reads one.
    """

    def __init__(self) -> None:
        self._columns = WorkerColumns.from_workers([])
        self._cache: List[Optional[Worker]] = []

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def columns(self) -> WorkerColumns:
        return self._columns

    def extend(self, arriving: WorkerColumns) -> None:
        """Append an arrival chunk (the object pool's ``extend``)."""
        if not len(arriving):
            return
        self._columns = WorkerColumns.concatenate([self._columns, arriving])
        self._cache.extend([None] * len(arriving))

    def retain(self, positions: np.ndarray) -> None:
        """Keep exactly ``positions`` (ascending), dropping the rest."""
        self._columns = self._columns.take(positions)
        self._cache = [self._cache[pos] for pos in positions.tolist()]

    def retain_available(self, period: int) -> None:
        """The object pool's ``[w for w in pool if w.available_in(period)]``."""
        mask = self._columns.available_mask(period)
        if not bool(mask.all()):
            self.retain(np.flatnonzero(mask))

    def worker(self, pos: int) -> Worker:
        record = self._cache[pos]
        if record is None:
            record = self._cache[pos] = self._columns.worker_at(pos)
        return record

    def view(self, positions: np.ndarray) -> PoolView:
        return PoolView(self, positions)


# ---------------------------------------------------------------------------
# shared-memory materialisation
# ---------------------------------------------------------------------------
_TASK_FIELDS = (
    "task_ids",
    "xs",
    "ys",
    "dest_xs",
    "dest_ys",
    "distances",
    "valuations",
    "has_valuation",
    "cells",
)
_WORKER_FIELDS = ("worker_ids", "periods", "xs", "ys", "radii", "durations")


@dataclass(frozen=True)
class WorkloadArenaHandle:
    """Picklable reference to a workload materialised in shared memory.

    Attributes:
        arena: The underlying segment handle.
        num_periods: Horizon length.
        shards: Shard labels present in the arena (``(0,)`` when the
            workload was packed unsharded).
    """

    arena: ArenaHandle
    num_periods: int
    shards: Tuple[int, ...]


class WorkloadArena:
    """A whole horizon of period columns packed into one shm segment.

    The owner packs ``{shard: [(TaskColumns, WorkerColumns), ...]}`` —
    one chunk list per shard, horizon-ordered — into a single
    :class:`~repro.utils.shm.ShmArena`; worker processes
    :meth:`attach` by handle and read their shard's chunks as zero-copy
    views.  Used by the sharded engine's process-per-shard mode and by
    :class:`~repro.experiments.parallel.ParallelRunner` to ship
    workloads as handles instead of pickles.
    """

    def __init__(self, arena: ShmArena, handle: WorkloadArenaHandle) -> None:
        self._arena = arena
        self._handle = handle

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        chunks_by_shard: Dict[int, List[Tuple[TaskColumns, WorkerColumns]]],
    ) -> "WorkloadArena":
        """Pack per-shard period chunks into a fresh owned segment."""
        if not chunks_by_shard:
            raise ValueError("need at least one shard")
        lengths = {len(chunks) for chunks in chunks_by_shard.values()}
        if len(lengths) != 1:
            raise ValueError("every shard must cover the same horizon")
        num_periods = lengths.pop()
        arrays: Dict[str, np.ndarray] = {}
        for shard, chunks in chunks_by_shard.items():
            for period, (task_cols, worker_cols) in enumerate(chunks):
                prefix = f"s{shard}/p{period}"
                for field in _TASK_FIELDS:
                    arrays[f"{prefix}/t/{field}"] = getattr(task_cols, field)
                for field in _WORKER_FIELDS:
                    arrays[f"{prefix}/w/{field}"] = getattr(worker_cols, field)
        arena = ShmArena.create(arrays)
        handle = WorkloadArenaHandle(
            arena=arena.handle,
            num_periods=int(num_periods),
            shards=tuple(sorted(chunks_by_shard)),
        )
        return cls(arena, handle)

    @classmethod
    def attach(cls, handle: WorkloadArenaHandle) -> "WorkloadArena":
        return cls(ShmArena.attach(handle.arena), handle)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def handle(self) -> WorkloadArenaHandle:
        return self._handle

    def chunk(self, shard: int, period: int) -> Tuple[TaskColumns, WorkerColumns]:
        """Zero-copy column views of one shard-period chunk."""
        prefix = f"s{shard}/p{period}"
        task_cols = TaskColumns(
            period=period,
            **{field: self._arena[f"{prefix}/t/{field}"] for field in _TASK_FIELDS},
        )
        worker_cols = WorkerColumns(
            **{field: self._arena[f"{prefix}/w/{field}"] for field in _WORKER_FIELDS}
        )
        return task_cols, worker_cols

    def iter_shard(self, shard: int) -> Iterator[Tuple[TaskColumns, WorkerColumns]]:
        for period in range(self._handle.num_periods):
            yield self.chunk(shard, period)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._arena.close()

    def unlink(self) -> None:
        self._arena.unlink()

    def __enter__(self) -> "WorkloadArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self._arena.__exit__(*exc_info)


__all__ = [
    "NO_DURATION",
    "TaskColumns",
    "WorkerColumns",
    "LazyTasks",
    "LazyWorkers",
    "ColumnarWorkerPool",
    "PoolView",
    "WorkloadArena",
    "WorkloadArenaHandle",
]
