"""Synthetic Beijing-style taxi workload (substitute for the DiDi data).

The paper's real-data experiments use proprietary taxi-calling records from
a large Chinese ride-hailing platform (July–December 2016, Beijing).  The
records themselves are not available, but the paper documents their
aggregate shape (Table 4 and Section 5.1):

* bounding box ``(116.30, 39.84) – (116.50, 40.0)``, 10 x 8 grid of
  0.02° x 0.02° cells, 120 one-minute periods, worker radius 3 km;
* dataset #1 (5–7 pm): heavy demand — 113 372 requests vs. 28 210 drivers,
  demand concentrated around business/transport hot spots;
* dataset #2 (0–2 am): light demand — 55 659 requests vs. 19 006 drivers,
  demand sparse and scattered (night-life areas, airport);
* valuations are *censored*: the platform only knows whether the requester
  accepted the historical price, so valuations must be reconstructed as
  "a random value greater than the set price" on acceptance and below it
  on rejection;
* the swept parameter is the worker availability duration
  ``delta_w ∈ {5, 10, 15, 20, 25}`` periods.

:class:`BeijingTaxiGenerator` synthesises a workload with exactly these
aggregate characteristics, which preserves the behaviour the experiment
demonstrates (spatially fragmented markets, limited and dependent supply,
heavier shortages at night), while being fully reproducible offline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.market.acceptance import DistributionAcceptanceModel, PerGridAcceptance
from repro.market.entities import Task, Worker
from repro.market.valuation import TruncatedNormalValuation
from repro.simulation.config import BeijingConfig, WorkloadBundle
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.utils.rng import derive_seed

#: Approximate kilometres per degree of longitude at Beijing's latitude
#: (40° N) and per degree of latitude, used to convert the 3 km radius into
#: degrees for the haversine-free fast path in tests.
KM_PER_DEGREE_LAT = 111.32
KM_PER_DEGREE_LON = 111.32 * math.cos(math.radians(40.0))


class BeijingTaxiGenerator:
    """Generates Beijing-style taxi workloads matching Table 4's aggregates."""

    def __init__(self, config: BeijingConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> WorkloadBundle:
        config = self.config
        grid = config.build_grid()
        rng = np.random.default_rng(derive_seed(config.seed, "beijing", config.variant))

        hotspots = self._demand_hotspots(rng, grid)
        acceptance = self._build_acceptance(grid, hotspots, rng)

        tasks_by_period: List[List[Task]] = [[] for _ in range(config.num_periods)]
        workers_by_period: List[List[Worker]] = [[] for _ in range(config.num_periods)]

        task_periods = self._task_periods(rng)
        valuation_rng = np.random.default_rng(derive_seed(config.seed, "beijing-valuations"))
        for task_id in range(config.num_tasks):
            period = int(task_periods[task_id])
            origin = self._sample_demand_location(rng, hotspots)
            destination = self._sample_destination(rng, origin)
            grid_index = grid.locate(origin)
            distance_km = self._trip_distance_km(origin, destination)
            model = acceptance.model_for(grid_index)
            valuation = model.sample_valuation(valuation_rng)
            task = Task(
                task_id=task_id,
                period=period,
                origin=origin,
                destination=destination,
                distance=distance_km,
                valuation=valuation,
                grid_index=grid_index,
            )
            tasks_by_period[period].append(task)

        worker_periods = rng.integers(0, config.num_periods, size=config.num_workers)
        for worker_id in range(config.num_workers):
            location = self._sample_supply_location(rng, hotspots)
            worker = Worker(
                worker_id=worker_id,
                period=int(worker_periods[worker_id]),
                location=location,
                radius=config.worker_radius_km,
                duration=config.worker_duration,
            )
            workers_by_period[int(worker_periods[worker_id])].append(worker)

        bundle = WorkloadBundle(
            grid=grid,
            tasks_by_period=tasks_by_period,
            workers_by_period=workers_by_period,
            acceptance=acceptance,
            metric="haversine",
            price_bounds=config.price_bounds,
            description=f"beijing-{config.variant}(|W|={config.num_workers}, |R|={config.num_tasks})",
        )
        bundle.validate()
        return bundle

    # ------------------------------------------------------------------
    # demand / supply geography
    # ------------------------------------------------------------------
    def _demand_hotspots(self, rng: np.random.Generator, grid: Grid) -> List[Tuple[Point, float]]:
        """Hot spot centres and weights.

        Rush hour concentrates most demand in a few strong hot spots
        (office districts, railway stations); late night spreads demand
        thinly with weak hot spots (night-life areas).
        """
        config = self.config
        region = grid.region
        count = config.num_hotspots
        centers = [
            Point(
                float(rng.uniform(region.min_x, region.max_x)),
                float(rng.uniform(region.min_y, region.max_y)),
            )
            for _ in range(count)
        ]
        if config.variant == "rush_hour":
            weights = rng.dirichlet(np.full(count, 0.5))
        else:
            weights = rng.dirichlet(np.full(count, 2.0))
        return list(zip(centers, [float(w) for w in weights]))

    def _sample_demand_location(
        self, rng: np.random.Generator, hotspots: List[Tuple[Point, float]]
    ) -> Point:
        config = self.config
        region = config.build_grid().region if False else None  # noqa: F841 (kept simple below)
        min_lon, min_lat, max_lon, max_lat = config.bounding_box
        # Rush hour: 85% of demand from hot spots; late night: 50%.
        hotspot_share = 0.85 if config.variant == "rush_hour" else 0.5
        if rng.random() < hotspot_share:
            weights = np.array([w for _, w in hotspots])
            weights = weights / weights.sum()
            choice = int(rng.choice(len(hotspots), p=weights))
            center, _ = hotspots[choice]
            spread_km = 1.0 if self.config.variant == "rush_hour" else 2.0
            lon = center.x + rng.normal(0.0, spread_km / KM_PER_DEGREE_LON)
            lat = center.y + rng.normal(0.0, spread_km / KM_PER_DEGREE_LAT)
        else:
            lon = rng.uniform(min_lon, max_lon)
            lat = rng.uniform(min_lat, max_lat)
        lon = float(np.clip(lon, min_lon, max_lon))
        lat = float(np.clip(lat, min_lat, max_lat))
        return Point(lon, lat)

    def _sample_supply_location(
        self, rng: np.random.Generator, hotspots: List[Tuple[Point, float]]
    ) -> Point:
        """Drivers roughly follow demand but more diffusely (they cruise)."""
        config = self.config
        min_lon, min_lat, max_lon, max_lat = config.bounding_box
        if rng.random() < 0.5:
            weights = np.array([w for _, w in hotspots])
            weights = weights / weights.sum()
            choice = int(rng.choice(len(hotspots), p=weights))
            center, _ = hotspots[choice]
            lon = center.x + rng.normal(0.0, 3.0 / KM_PER_DEGREE_LON)
            lat = center.y + rng.normal(0.0, 3.0 / KM_PER_DEGREE_LAT)
        else:
            lon = rng.uniform(min_lon, max_lon)
            lat = rng.uniform(min_lat, max_lat)
        return Point(
            float(np.clip(lon, min_lon, max_lon)), float(np.clip(lat, min_lat, max_lat))
        )

    def _sample_destination(self, rng: np.random.Generator, origin: Point) -> Point:
        """Trip destinations: log-normal trip length in a random direction."""
        config = self.config
        min_lon, min_lat, max_lon, max_lat = config.bounding_box
        trip_km = float(np.clip(rng.lognormal(mean=1.2, sigma=0.5), 0.5, 20.0))
        angle = rng.uniform(0.0, 2.0 * math.pi)
        lon = origin.x + (trip_km * math.cos(angle)) / KM_PER_DEGREE_LON
        lat = origin.y + (trip_km * math.sin(angle)) / KM_PER_DEGREE_LAT
        return Point(
            float(np.clip(lon, min_lon, max_lon)), float(np.clip(lat, min_lat, max_lat))
        )

    def _trip_distance_km(self, origin: Point, destination: Point) -> float:
        dlon_km = (destination.x - origin.x) * KM_PER_DEGREE_LON
        dlat_km = (destination.y - origin.y) * KM_PER_DEGREE_LAT
        return max(0.1, math.hypot(dlon_km, dlat_km))

    # ------------------------------------------------------------------
    # temporal and demand models
    # ------------------------------------------------------------------
    def _task_periods(self, rng: np.random.Generator) -> np.ndarray:
        """Request arrival times.

        Rush hour demand ramps up towards the second hour (people leaving
        work); late-night demand decays over the window (bars closing).
        """
        config = self.config
        if config.variant == "rush_hour":
            raw = rng.beta(2.0, 1.5, size=config.num_tasks)
        else:
            raw = rng.beta(1.2, 2.5, size=config.num_tasks)
        periods = np.clip(
            (raw * config.num_periods).astype(int), 0, config.num_periods - 1
        )
        return periods

    def _build_acceptance(
        self,
        grid: Grid,
        hotspots: List[Tuple[Point, float]],
        rng: np.random.Generator,
    ) -> PerGridAcceptance:
        """Per-grid valuation distributions.

        Riders in under-served late-night areas tolerate higher prices;
        rush-hour riders in well-served areas are more price sensitive.
        The per-grid mean valuation grows with the grid's distance from the
        strongest hot spot (a proxy for scarcity of alternatives), which
        reproduces the paper's observation that valuations reconstructed
        from accept/reject logs vary across the city.
        """
        config = self.config
        low, high = 1.0, 5.0
        strongest = max(hotspots, key=lambda pair: pair[1])[0]
        min_lon, min_lat, max_lon, max_lat = config.bounding_box
        diag = math.hypot(
            (max_lon - min_lon) * KM_PER_DEGREE_LON, (max_lat - min_lat) * KM_PER_DEGREE_LAT
        )
        base_mean = 2.6 if config.variant == "late_night" else 2.2
        models: Dict[int, DistributionAcceptanceModel] = {}
        for cell in grid.cells():
            center = cell.center
            distance_km = math.hypot(
                (center.x - strongest.x) * KM_PER_DEGREE_LON,
                (center.y - strongest.y) * KM_PER_DEGREE_LAT,
            )
            mean = base_mean + 0.8 * (distance_km / max(diag, 1e-9))
            mean = float(np.clip(mean + rng.normal(0.0, 0.1), low, high))
            models[cell.index] = DistributionAcceptanceModel(
                TruncatedNormalValuation(mean=mean, std=1.0, lower=low, upper=high)
            )
        default = DistributionAcceptanceModel(
            TruncatedNormalValuation(mean=base_mean, std=1.0, lower=low, upper=high)
        )
        return PerGridAcceptance(models=models, default=default)


__all__ = ["BeijingTaxiGenerator", "KM_PER_DEGREE_LAT", "KM_PER_DEGREE_LON"]
