"""The seed (pre-vectorisation) simulation loop, preserved as a reference.

The engine in :mod:`repro.simulation.engine` was refactored around a
struct-of-arrays period pipeline (vectorised acceptance decisions, CSR
matching backends, batched feedback).  This module keeps the original
scalar implementation — per-task Python loops, recursive augmenting-path
matching over list-of-list adjacency, and the double feedback pass that
re-built every :class:`~repro.pricing.strategy.PriceFeedback` just to set
``served`` — exactly as the seed shipped it.

It exists for two purposes only:

* the regression tests assert that the vectorised pipeline reproduces the
  seed engine's revenue / served / accepted metrics bit-for-bit for fixed
  seeds across all shipped strategies;
* ``benchmarks/test_bench_pipeline.py`` measures the pipeline's speedup
  against this implementation on the fig8-scale workload.

It is not part of the public API and should not grow features.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gdp import PeriodInstance
from repro.market.acceptance import PerGridAcceptance
from repro.market.entities import Worker
from repro.matching.bipartite import BipartiteGraph
from repro.matching.maximum_matching import UNMATCHED
from repro.pricing.strategy import PriceFeedback, PricingStrategy
from repro.simulation.config import WorkloadBundle
from repro.simulation.metrics import MetricsCollector
from repro.utils.rng import derive_seed


def reference_task_weighted_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
) -> Tuple[Dict[int, int], float]:
    """The seed's recursive matroid-greedy matching (``matroid`` backend).

    Verbatim pre-CSR implementation: Python ``sorted`` ordering, per-task
    ``set`` of visited workers and recursive augmentation over the
    list-of-list adjacency.
    """
    if len(task_weights) != graph.num_tasks:
        raise ValueError("task_weights length must match number of tasks")
    eligible = (
        list(range(graph.num_tasks)) if allowed_tasks is None else sorted(set(allowed_tasks))
    )
    order = sorted(eligible, key=lambda pos: (-float(task_weights[pos]), pos))

    match_task: List[int] = [UNMATCHED] * graph.num_tasks
    match_worker: List[int] = [UNMATCHED] * graph.num_workers

    def try_augment(task_pos: int, visited_workers: set) -> bool:
        for worker_pos in graph.task_neighbors[task_pos]:
            if worker_pos in visited_workers:
                continue
            visited_workers.add(worker_pos)
            current = match_worker[worker_pos]
            if current == UNMATCHED or try_augment(current, visited_workers):
                match_task[task_pos] = worker_pos
                match_worker[worker_pos] = task_pos
                return True
        return False

    total = 0.0
    for task_pos in order:
        weight = float(task_weights[task_pos])
        if weight <= 0.0:
            continue
        if try_augment(task_pos, set()):
            total += weight

    task_to_worker = {
        pos: worker for pos, worker in enumerate(match_task) if worker != UNMATCHED
    }
    return task_to_worker, total


def reference_decide(
    instance: PeriodInstance,
    grid_prices: Dict[int, float],
    p_min: float,
    p_max: float,
    acceptance: PerGridAcceptance,
    rng: np.random.Generator,
) -> Tuple[List[float], List[int], List[PriceFeedback]]:
    """The seed's scalar accept/reject loop (one Python iteration per task).

    Returns:
        ``(offered_prices, accepted_positions, feedback)`` exactly as the
        seed engine computed them (``served`` still unset on the feedback).
    """
    offered_prices: List[float] = []
    accepted_positions: List[int] = []
    feedback: List[PriceFeedback] = []
    for pos, task in enumerate(instance.tasks):
        price = float(grid_prices.get(task.grid_index, p_min))
        price = min(p_max, max(p_min, price))
        offered_prices.append(price)
        if task.valuation is not None:
            accepted = price <= task.valuation
        else:
            probability = acceptance.acceptance_ratio(task.grid_index, price)
            accepted = bool(rng.random() < probability)
        if accepted:
            accepted_positions.append(pos)
        feedback.append(
            PriceFeedback(
                period=instance.period,
                grid_index=task.grid_index,
                price=price,
                accepted=accepted,
                distance=task.distance,
            )
        )
    return offered_prices, accepted_positions, feedback


def reference_set_served(
    feedback: List[PriceFeedback], matching: Dict[int, int]
) -> List[PriceFeedback]:
    """The seed's second pass rebuilding the feedback list to set ``served``."""
    served_positions = set(matching.keys())
    return [
        PriceFeedback(
            period=item.period,
            grid_index=item.grid_index,
            price=item.price,
            accepted=item.accepted,
            distance=item.distance,
            served=(pos in served_positions),
        )
        for pos, item in enumerate(feedback)
    ]


def run_reference(
    workload: WorkloadBundle,
    strategy: PricingStrategy,
    seed: int = 0,
) -> "SimulationResult":
    """Run one strategy through the verbatim seed simulation loop.

    Only the ``matroid`` matching backend is supported (it is what the
    seed engine defaulted to and what the regression tests compare).
    """
    from repro.simulation.engine import PeriodOutcome, SimulationResult

    workload.validate()
    strategy.reset()
    collector = MetricsCollector(strategy.name)
    collector.start()
    rng = np.random.default_rng(derive_seed(int(seed), "acceptance", strategy.name))

    p_min, p_max = workload.price_bounds
    available_workers: List[Worker] = []

    for period in range(workload.num_periods):
        available_workers.extend(workload.workers_by_period[period])
        available_workers = [
            worker for worker in available_workers if worker.available_in(period)
        ]
        tasks = workload.tasks_by_period[period]
        if not tasks:
            continue

        instance = PeriodInstance.build(
            period=period,
            grid=workload.grid,
            tasks=tasks,
            workers=available_workers,
            metric=workload.metric,
        )

        with collector.time_pricing():
            grid_prices = strategy.price_period(instance)

        offered_prices, accepted_positions, feedback = reference_decide(
            instance, grid_prices, p_min, p_max, workload.acceptance, rng
        )

        weights = [
            task.distance * price
            for task, price in zip(instance.tasks, offered_prices)
        ]
        with collector.time_matching():
            matching, revenue = reference_task_weighted_matching(
                instance.graph, weights, allowed_tasks=accepted_positions
            )

        feedback = reference_set_served(feedback, matching)
        with collector.time_pricing():
            strategy.observe_feedback(feedback)

        matched_worker_positions = set(matching.values())
        available_workers = [
            worker
            for worker_pos, worker in enumerate(instance.workers)
            if worker_pos not in matched_worker_positions
        ]

        collector.record_period(
            revenue=revenue,
            served_tasks=len(matching),
            accepted_tasks=len(accepted_positions),
            total_tasks=len(tasks),
        )

    metrics = collector.finish()
    return SimulationResult(metrics=metrics, description=workload.description)


__all__ = [
    "reference_task_weighted_matching",
    "reference_decide",
    "reference_set_served",
    "run_reference",
]
