"""Spatially sharded simulation engine for city-scale workloads.

The batch :class:`~repro.simulation.engine.SimulationEngine` solves one
global bipartite problem per period, which caps it at tens of thousands of
tasks: augmenting paths wander across the whole city, and the per-period
graph grows with the full worker pool.  Most task–worker edges are
spatially local, though — a courier three districts away is outside every
nearby task's service radius — so the grid can be partitioned into
rectangular shards (:class:`~repro.spatial.grid.GridTiling`) that quote,
decide and match *independently*, reconciling only at shard boundaries.

Per period the :class:`ShardedEngine`:

1. **partitions** the period's tasks and the live worker pool by shard
   (a task belongs to the shard owning its origin cell, a worker to the
   shard owning its location cell);
2. **dispatches** each shard with tasks through the same
   :class:`~repro.simulation.pipeline.PeriodPipeline` stages as the batch
   engine — quote → decide → match — over the shard-local instance;
3. **reconciles** across boundaries with one halo-exchange pass: accepted
   tasks left unmatched within ``halo`` cells of a shard border are
   re-offered, together with the residual (still unmatched) workers of
   the halo band, as one small reconciliation instance solved with the
   same matching backend.  Matches found here recover revenue the
   partition's dropped cross-border edges would otherwise lose;
4. **feeds back** one batch per shard (halo-served tasks included) and
   lets matched workers leave the pool, exactly like the batch engine.

**Equivalence guarantees.**  With ``num_shards=1`` the single shard *is*
the global problem: the instance, the RNG stream, the matching and the
feedback coincide with the batch engine's bit-for-bit, which
``tests/simulation/test_sharded.py`` asserts across all five pricing
strategies.  With ``num_shards>1`` the solve is a restriction of the
global edge set, so per-period revenue can only be lost at boundaries;
the tests bound the total-revenue gap on every registered scenario.

**Consistency trade-off.**  Shards never see each other's supply inside a
period: a boundary task may go unserved even though an adjacent shard had
a reachable idle worker, unless the halo pass catches it.  Larger
``halo`` values recover more of those matches at the cost of a larger
reconciliation instance; ``halo=0`` disables reconciliation entirely.
See ``docs/sharding.md`` for the full design discussion.

**Process-per-shard execution.**  For multi-core hosts,
``shard_jobs > 1`` splits a pre-materialised workload spatially up front
and runs each shard's *entire horizon* in its own process (each with its
own strategy replica), merging metrics at the end.  This requires
``halo=0`` — processes cannot reconcile boundaries mid-period — and is
exact for the shipped strategies, whose learned state is keyed by grid
cell and therefore never crosses shard borders.  The lazily generated
:class:`~repro.simulation.config.ChunkedWorkload` is sequential-only.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base_pricing import BasePricingConfig, BasePricingResult
from repro.core.gdp import PeriodInstance
from repro.kernels import warmup as warmup_kernels
from repro.kernels.halo import halo_residual_workers, halo_task_candidates
from repro.market.entities import Task, Worker
from repro.matching.incremental import LazyDynamicMatcher
from repro.matching.weighted import eligible_order, max_weight_matching
from repro.pricing.strategy import PricingStrategy
from repro.simulation.config import ChunkedWorkload, WorkloadBundle
from repro.simulation.engine import (
    PeriodOutcome,
    SimulationEngine,
    SimulationResult,
    calibrate_base_price_for_context,
)
from repro.simulation.metrics import MetricsCollector, StrategyMetrics
from repro.simulation.pipeline import (
    CrossPeriodWarmStart,
    DecideResult,
    PeriodPipeline,
)
from repro.spatial.grid import GridTiling
from repro.spatial.index import IncrementalAdjacencyIndex
from repro.utils.rng import derive_seed

#: Workload types the engine consumes interchangeably.
ShardableWorkload = Union[WorkloadBundle, ChunkedWorkload]

#: Sentinel worker position marking a task served by the halo pass in the
#: served-map handed to the feedback stage (only the keys are read there).
_HALO_SERVED = -1


@dataclass
class _ShardDispatch:
    """Working state of one shard for one period."""

    shard: int
    instance: PeriodInstance
    grid_prices: Dict[int, float]
    decision: DecideResult
    matching: Dict[int, int]
    revenue: float
    #: Task positions matched by the halo-exchange pass (local positions).
    halo_served: List[int] = field(default_factory=list)
    #: Worker positions taken from this shard by the halo-exchange pass.
    halo_taken: List[int] = field(default_factory=list)
    #: Columnar path only: pool positions of the shard's workers (the
    #: local worker position ``i`` is pool position ``worker_positions[i]``).
    worker_positions: Optional[np.ndarray] = None


class _WarmShardState:
    """One shard's matching state kept alive across periods.

    ``warm_shards`` replaces the per-period re-solve with a
    :class:`~repro.matching.incremental.LazyDynamicMatcher` plus an
    :class:`~repro.spatial.index.IncrementalAdjacencyIndex` worker plane,
    both living for the whole horizon: worker arrivals and departures are
    applied as a diff at each dispatch, each period's accepted tasks are
    inserted in priority order off the plane's candidate rows, matched
    pairs are committed and the task side cleared at period end.  Within
    a shard workers never reorder (the pool loop is arrival-stable and a
    worker's cell is fixed), so the plane's arrival-ordered slots are
    order-isomorphic to the period-local worker positions — the mapping
    under which matched pairs, basis and revenue are bit-identical to the
    cold per-period matroid solve (asserted by
    ``tests/simulation/test_warm_shards.py``).
    """

    def __init__(self, grid, metric, max_degree) -> None:
        self.matcher = LazyDynamicMatcher(
            maintain_transpose=False, insert_only_pruning=True
        )
        self.plane = IncrementalAdjacencyIndex(
            grid, metric=metric, max_degree=max_degree, track_tasks=False
        )
        #: ``worker_id`` → warm slot (matcher id == plane slot, both
        #: allocated in lockstep arrival order, never recycled).
        self.slot_of: Dict[int, int] = {}

    def sync_workers(self, workers: Sequence[Worker]) -> None:
        """Apply the pool diff: departures out, arrivals in (in order)."""
        slot_of = self.slot_of
        if slot_of:
            present = {worker.worker_id for worker in workers}
            for worker_id, slot in list(slot_of.items()):
                if worker_id not in present:
                    self.matcher.remove_worker(slot)
                    self.plane.remove_worker(slot)
                    del slot_of[worker_id]
        fresh = [worker for worker in workers if worker.worker_id not in slot_of]
        if fresh:
            slots = self.plane.insert_workers(
                [worker.location.x for worker in fresh],
                [worker.location.y for worker in fresh],
                [worker.radius for worker in fresh],
            )
            for worker, slot in zip(fresh, slots.tolist()):
                matcher_slot, _ = self.matcher.new_worker()
                if matcher_slot != slot:
                    raise RuntimeError(
                        "warm shard plane and matcher slot counters diverged"
                    )
                slot_of[worker.worker_id] = slot


def _execute_shard_horizon(
    sub_workload: WorkloadBundle,
    strategy: PricingStrategy,
    seed: int,
    matching_backend: str,
    track_memory: bool,
    max_degree: Optional[int] = None,
    warm_start: bool = False,
) -> SimulationResult:
    """Run one shard's full horizon (top-level: picklable for pools)."""
    engine = ShardedEngine(
        sub_workload,
        num_shards=1,
        halo=0,
        seed=seed,
        matching_backend=matching_backend,
        track_memory=track_memory,
        keep_details=True,
        max_degree=max_degree,
        warm_start=warm_start,
    )
    return engine.run(strategy)


@dataclass(frozen=True)
class _ArenaShardJob:
    """Everything one shard worker process needs besides the strategy.

    The heavy payload — every period's task/worker columns — lives in the
    shared-memory arena; this record carries only the picklable handle
    plus the small market context, so submitting a job moves kilobytes
    through the queue however large the horizon is.
    """

    handle: "WorkloadArenaHandle"
    shard: int
    grid: object
    acceptance: object
    metric: str
    price_bounds: Tuple[float, float]
    description: str
    num_periods: int
    seed: int
    matching_backend: str
    track_memory: bool
    max_degree: Optional[int]
    warm_start: bool


def _execute_shard_horizon_arena(
    job: _ArenaShardJob, strategy: PricingStrategy
) -> SimulationResult:
    """Attach to the arena by handle and run one shard's horizon.

    Top-level (picklable) worker of the zero-copy process-per-shard
    mode.  The attach maps the owner's segment read-only; the worker
    never unlinks it (see :mod:`repro.utils.shm`'s ownership protocol),
    so a crashing worker cannot leak ``/dev/shm`` segments.
    """
    from repro.simulation.arena import WorkloadArena

    # One (cached) JIT pass before any period runs: a worker's first
    # dispatch must not pay compilation inside the measured horizon.  The
    # kernel mode itself arrives via the inherited REPRO_KERNELS variable.
    warmup_kernels()
    arena = WorkloadArena.attach(job.handle)
    try:
        workload = ChunkedWorkload(
            grid=job.grid,
            periods=lambda: (
                (task_cols.to_tasks(), worker_cols.to_workers())
                for task_cols, worker_cols in arena.iter_shard(job.shard)
            ),
            column_periods=lambda: arena.iter_shard(job.shard),
            num_periods=job.num_periods,
            acceptance=job.acceptance,
            metric=job.metric,
            price_bounds=job.price_bounds,
            description=f"{job.description} [shard {job.shard}]",
        )
        engine = ShardedEngine(
            workload,
            num_shards=1,
            halo=0,
            seed=job.seed,
            matching_backend=job.matching_backend,
            track_memory=job.track_memory,
            keep_details=True,
            max_degree=job.max_degree,
            warm_start=job.warm_start,
            columnar=True,
        )
        return engine.run(strategy)
    finally:
        arena.close()


class ShardedEngine:
    """Runs pricing strategies over a spatially sharded workload.

    Args:
        workload: A :class:`WorkloadBundle` or lazily generated
            :class:`ChunkedWorkload` to simulate.
        num_shards: Number of rectangular shards the grid is tiled into
            (``1`` reproduces the batch engine exactly).
        halo: Width, in grid cells, of the boundary band taking part in
            the halo-exchange reconciliation pass (``0`` disables it).
        seed: Accept/reject randomness seed, derived exactly as in the
            batch engine.  With one shard the stream is consumed
            identically; with several shards it is consumed in shard
            order within each period (still fully deterministic).
        matching_backend: Matching backend for both the shard-local and
            the reconciliation matchings, resolved by name through
            :mod:`repro.matching.registry`.
        track_memory: Enable peak-memory tracking in the metrics.
        keep_details: Store a :class:`PeriodOutcome` per period (shard
            results merged).
        shard_jobs: Worker processes for process-per-shard execution
            (``1`` = sequential in-process shards).  Requires ``halo=0``,
            ``num_shards > 1`` and a pre-materialised workload; see the
            module docstring.
        max_degree: Optional per-task adjacency cap (nearest workers
            only), applied to shard-local instances *and* the halo
            reconciliation instance.  ``None`` keeps the exact graphs.
        warm_start: Seed each period's shard matchings with hints from
            the previous period's matchings restricted to still-present
            workers; per-period weight-preserving (see
            :class:`~repro.simulation.pipeline.CrossPeriodWarmStart`)
            and off by default.
        dynamic: Run the halo reconciliation matching through the
            ``dynamic`` delta-repair backend
            (:class:`~repro.matching.incremental.DynamicMatcher`) instead
            of re-solving the boundary instance with
            ``matching_backend``: boundary tasks insert one by one in
            priority order, each repairing only the alternating paths its
            insertion touches.  Bit-identical to ``matroid``
            reconciliation (asserted by the tests); for heuristic
            shard backends it upgrades the boundary pass to the exact
            transversal-matroid optimum.
        columnar: Drive the horizon through the zero-copy columnar data
            plane (:mod:`repro.simulation.arena`): period chunks stay
            struct-of-arrays end to end and ``Task``/``Worker`` records
            materialise lazily.  ``None`` (default) enables it exactly
            when the workload generates columns natively; results are
            bit-identical to the object path either way (regression- and
            property-tested).
        warm_shards: Keep one :class:`_WarmShardState` (incremental
            adjacency plane + lazy dynamic matcher) per shard alive
            across the whole horizon instead of rebuilding the shard
            graph and re-solving from scratch every period: worker
            arrivals/departures are applied as a diff, each period's
            accepted tasks insert in priority order off the plane, and
            matched pairs are committed at period end.  Bit-identical
            matchings and revenue to the cold path (asserted by
            ``tests/simulation/test_warm_shards.py``); requires the
            ``matroid`` backend and the sequential object path
            (incompatible with ``columnar``, ``shard_jobs > 1`` and
            ``warm_start``, which are alternatives it replaces).
    """

    def __init__(
        self,
        workload: ShardableWorkload,
        num_shards: int = 1,
        halo: int = 1,
        seed: int = 0,
        matching_backend: str = "matroid",
        track_memory: bool = False,
        keep_details: bool = False,
        shard_jobs: int = 1,
        max_degree: Optional[int] = None,
        warm_start: bool = False,
        columnar: Optional[bool] = None,
        dynamic: bool = False,
        warm_shards: bool = False,
    ) -> None:
        workload.validate()
        if halo < 0:
            raise ValueError("halo must be non-negative")
        if shard_jobs < 1:
            raise ValueError("shard_jobs must be >= 1")
        self.workload = workload
        self.tiling = GridTiling(workload.grid, num_shards)
        self.halo = int(halo)
        self.seed = int(seed)
        self.matching_backend = matching_backend
        self.track_memory = bool(track_memory)
        self.keep_details = bool(keep_details)
        self.shard_jobs = int(shard_jobs)
        self.max_degree = None if max_degree is None else int(max_degree)
        self.warm_start = bool(warm_start)
        self.dynamic = bool(dynamic)
        if columnar is None:
            columnar = bool(getattr(workload, "has_columns", False))
        elif columnar and not hasattr(workload, "iter_period_columns"):
            raise ValueError("columnar=True needs a workload with period columns")
        self.columnar = bool(columnar)
        self.warm_shards = bool(warm_shards)
        if self.warm_shards:
            if self.matching_backend != "matroid":
                raise ValueError(
                    "warm_shards reproduces the matroid backend; construct "
                    "with matching_backend='matroid'"
                )
            if self.columnar:
                raise ValueError("warm_shards requires the object path (columnar=False)")
            if self.shard_jobs > 1:
                raise ValueError("warm_shards is sequential-only (shard_jobs=1)")
            if self.warm_start:
                raise ValueError(
                    "warm_shards replaces cross-period warm starts; disable warm_start"
                )
        if self.shard_jobs > 1 and self.num_shards > 1:
            if self.halo > 0:
                raise ValueError(
                    "process-per-shard execution cannot reconcile halo "
                    "boundaries; construct with halo=0"
                )
        # Boolean mask over 0-based cell positions of the halo band.
        self._boundary = self.tiling.boundary_cells(self.halo)

    @property
    def num_shards(self) -> int:
        return self.tiling.num_shards

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def calibrate_base_price(
        self,
        config: Optional[BasePricingConfig] = None,
        grids: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BasePricingResult:
        """Run Algorithm 1 against the workload's ground-truth demand.

        Pre-materialised workloads delegate to the batch engine's
        calibration.  Chunked workloads would need a full generation pass
        just to find the demanded grids, so they default to calibrating
        every grid cell instead, through the same shared
        :func:`~repro.simulation.engine.calibrate_base_price_for_context`
        the streaming engine uses.
        """
        if isinstance(self.workload, WorkloadBundle):
            return SimulationEngine(self.workload, seed=self.seed).calibrate_base_price(
                config=config, grids=grids, seed=seed
            )
        if grids is None:
            grids = [cell.index for cell in self.workload.grid.cells()]
        return calibrate_base_price_for_context(
            acceptance=self.workload.acceptance,
            price_bounds=self.workload.price_bounds,
            seed=self.seed if seed is None else seed,
            grids=grids,
            config=config,
        )

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self, strategy: PricingStrategy) -> SimulationResult:
        """Simulate the full horizon with one pricing strategy.

        Dispatch order inside a period is deterministic (ascending shard
        id), so fixed seeds always reproduce the same run.  See the class
        docstring for the ``num_shards=1`` bit-equivalence guarantee.
        """
        if self.shard_jobs > 1 and self.num_shards > 1:
            return self._run_process_per_shard(strategy)
        if self.columnar:
            return self._run_columnar(strategy)
        return self._run_sequential(strategy)

    def run_many(self, strategies: Sequence[PricingStrategy]) -> Dict[str, SimulationResult]:
        """Run several strategies over the same workload (same randomness)."""
        return {strategy.name: self.run(strategy) for strategy in strategies}

    # ------------------------------------------------------------------
    # sequential shard loop
    # ------------------------------------------------------------------
    def _run_sequential(self, strategy: PricingStrategy) -> SimulationResult:
        strategy.reset()
        collector = MetricsCollector(strategy.name, track_memory=self.track_memory)
        collector.start()
        rng = np.random.default_rng(derive_seed(self.seed, "acceptance", strategy.name))
        pipeline = PeriodPipeline(
            price_bounds=self.workload.price_bounds,
            acceptance=self.workload.acceptance,
            matching_backend=self.matching_backend,
        )

        outcomes: List[PeriodOutcome] = []
        pool: List[Worker] = []
        # One warm-start cache per shard: shards own disjoint grid cells,
        # so their (grid -> served workers) associations never collide.
        warm_caches: Optional[Dict[int, CrossPeriodWarmStart]] = (
            {} if self.warm_start else None
        )
        # One warm matcher + adjacency plane per shard, fresh per strategy
        # run (the acceptance stream differs per strategy, so matcher
        # state cannot carry across runs).
        warm_states: Optional[Dict[int, _WarmShardState]] = (
            {} if self.warm_shards else None
        )

        for period, (tasks, arriving) in enumerate(self.workload.iter_periods()):
            pool.extend(arriving)
            pool = [worker for worker in pool if worker.available_in(period)]
            if not tasks:
                if self.keep_details:
                    outcomes.append(
                        PeriodOutcome(
                            period=period,
                            num_tasks=0,
                            num_workers=len(pool),
                            prices={},
                            accepted_tasks=0,
                            served_tasks=0,
                            revenue=0.0,
                        )
                    )
                continue

            num_workers = len(pool)
            dispatches, leftover = self._dispatch_shards(
                period,
                tasks,
                pool,
                strategy,
                rng,
                pipeline,
                collector,
                warm_caches,
                warm_states,
            )

            halo_revenue = 0.0
            if self.num_shards > 1 and self.halo > 0:
                with collector.time_matching():
                    halo_revenue, leftover = self._reconcile_halo(
                        period, dispatches, leftover
                    )

            # Feedback per shard, halo-served tasks included, then the
            # strategy learns — same stage order as the batch engine.
            for dispatch in dispatches:
                served_map = dict(dispatch.matching)
                for task_pos in dispatch.halo_served:
                    served_map[task_pos] = _HALO_SERVED
                with collector.time_decide():
                    batch = pipeline.feedback(
                        dispatch.instance, dispatch.decision, served_map
                    )
                with collector.time_pricing():
                    strategy.observe_feedback_batch(batch)

            # Matched workers (local and halo) leave the pool.
            pool = []
            for dispatch in dispatches:
                taken = set(dispatch.matching.values())
                taken.update(dispatch.halo_taken)
                pool.extend(
                    worker
                    for worker_pos, worker in enumerate(dispatch.instance.workers)
                    if worker_pos not in taken
                )
            pool.extend(worker for worker, _cell in leftover)

            revenue = 0.0
            served = 0
            accepted = 0
            for dispatch in dispatches:
                revenue += dispatch.revenue
                served += len(dispatch.matching) + len(dispatch.halo_served)
                accepted += int(dispatch.decision.accepted.sum())
            revenue += halo_revenue

            collector.record_period(
                revenue=revenue,
                served_tasks=served,
                accepted_tasks=accepted,
                total_tasks=len(tasks),
            )
            if self.keep_details:
                prices: Dict[int, float] = {}
                for dispatch in dispatches:
                    prices.update(dispatch.grid_prices)
                outcomes.append(
                    PeriodOutcome(
                        period=period,
                        num_tasks=len(tasks),
                        num_workers=num_workers,
                        prices=prices,
                        accepted_tasks=accepted,
                        served_tasks=served,
                        revenue=revenue,
                    )
                )

        metrics = collector.finish()
        return SimulationResult(
            metrics=metrics, outcomes=outcomes, description=self.workload.description
        )

    def _dispatch_shards(
        self,
        period: int,
        tasks: Sequence[Task],
        pool: Sequence[Worker],
        strategy: PricingStrategy,
        rng: np.random.Generator,
        pipeline: PeriodPipeline,
        collector: MetricsCollector,
        warm_caches: Optional[Dict[int, CrossPeriodWarmStart]] = None,
        warm_states: Optional[Dict[int, "_WarmShardState"]] = None,
    ) -> Tuple[List[_ShardDispatch], List[Tuple[Worker, int]]]:
        """Quote → decide → match every shard that has tasks this period.

        Returns the per-shard dispatch states plus the ``(worker, cell)``
        pairs of workers whose shard had no tasks (they idle through the
        period but may still serve boundary tasks in the halo pass).
        """
        grid = self.workload.grid
        num_shards = self.num_shards
        if num_shards == 1:
            shard_tasks: Dict[int, List[Task]] = {0: list(tasks)}
            shard_workers: Dict[int, List[Worker]] = {0: list(pool)}
            worker_cells: Dict[int, List[int]] = {}
        else:
            annotated = [
                task
                if task.grid_index is not None
                else task.with_grid(grid.locate(task.origin))
                for task in tasks
            ]
            task_shards = self.tiling.shards_of_cells(
                [task.grid_index for task in annotated]
            ).tolist()
            shard_tasks = {}
            for task, shard in zip(annotated, task_shards):
                shard_tasks.setdefault(shard, []).append(task)
            shard_workers = {}
            worker_cells = {}
            if pool:
                cells = grid.locate_many(
                    [worker.location.x for worker in pool],
                    [worker.location.y for worker in pool],
                )
                worker_shards = self.tiling.shards_of_cells(cells).tolist()
                for worker, shard, cell in zip(pool, worker_shards, cells.tolist()):
                    shard_workers.setdefault(shard, []).append(worker)
                    worker_cells.setdefault(shard, []).append(cell)

        dispatches: List[_ShardDispatch] = []
        leftover: List[Tuple[Worker, int]] = []
        for shard in range(num_shards):
            shard_task_list = shard_tasks.get(shard)
            if not shard_task_list:
                for worker, cell in zip(
                    shard_workers.get(shard, []), worker_cells.get(shard, [])
                ):
                    leftover.append((worker, cell))
                continue
            warm_state = None
            if warm_states is not None:
                warm_state = warm_states.setdefault(
                    shard,
                    _WarmShardState(grid, self.workload.metric, self.max_degree),
                )
            instance = PeriodInstance.build(
                period=period,
                grid=grid,
                tasks=shard_task_list,
                workers=shard_workers.get(shard, []),
                metric=self.workload.metric,
                max_degree=self.max_degree,
                # The warm path never reads the shard graph: candidate
                # rows come off the incremental plane instead.
                build_graph=warm_state is None,
            )
            warm_cache = None
            if warm_caches is not None:
                warm_cache = warm_caches.setdefault(shard, CrossPeriodWarmStart())
            with collector.time_pricing():
                grid_prices = pipeline.quote(strategy, instance)
            with collector.time_decide():
                decision = pipeline.decide(instance, grid_prices, rng)
            with collector.time_matching():
                if warm_state is not None:
                    matching, revenue = self._match_warm(warm_state, instance, decision)
                else:
                    hints = (
                        warm_cache.hints(instance) if warm_cache is not None else None
                    )
                    matching, revenue = pipeline.match(instance, decision, hints)
            if warm_cache is not None:
                warm_cache.update(instance, matching)
            dispatches.append(
                _ShardDispatch(
                    shard=shard,
                    instance=instance,
                    grid_prices=dict(grid_prices),
                    decision=decision,
                    matching=matching,
                    revenue=revenue,
                )
            )
        return dispatches, leftover

    def _match_warm(
        self,
        state: _WarmShardState,
        instance: PeriodInstance,
        decision: DecideResult,
    ) -> Tuple[Dict[int, int], float]:
        """One warm-shard period: diff workers, insert tasks, commit.

        Reproduces ``pipeline.match`` under the ``matroid`` backend
        exactly: eligible tasks insert into the shard's live matcher in
        the canonical weight order, each with its candidate row off the
        incremental plane, and the revenue accumulates in that same
        order — so both the matched pairs and the float total are
        bit-identical to the cold re-solve under the slot → worker-
        position order isomorphism (slots are allocated in arrival order
        and within a shard the pool loop never reorders survivors).
        """
        state.sync_workers(instance.workers)
        arrays = instance.ensure_arrays()
        weights = arrays.distances * decision.prices
        all_weights, order = eligible_order(
            instance.num_tasks, weights, decision.accepted_positions
        )
        matching: Dict[int, int] = {}
        if not order:
            return matching, 0.0

        workers = instance.workers
        slots = np.fromiter(
            (state.slot_of[worker.worker_id] for worker in workers),
            dtype=np.int64,
            count=len(workers),
        )
        if slots.size > 1 and not bool(np.all(np.diff(slots) > 0)):
            raise RuntimeError(
                "warm shard slots are not arrival-ordered; the slot/position "
                "order isomorphism no longer holds"
            )

        tasks = instance.tasks
        rows = state.plane.task_rows(
            [tasks[pos].origin.x for pos in order],
            [tasks[pos].origin.y for pos in order],
        )
        matcher = state.matcher
        weight_list = all_weights.tolist()
        for row, task_pos in zip(rows, order):
            matcher.new_task(row, weight_list[task_pos])

        # Same float-addition sequence as task_weighted_matching: iterate
        # the canonical order, add each matched task's weight.
        pairs = matcher.matching()
        total = 0.0
        for task_id, task_pos in enumerate(order):
            if task_id in pairs:
                total += weight_list[task_pos]

        for task_id, slot in pairs.items():
            local = int(np.searchsorted(slots, slot))
            matching[order[task_id]] = local
            matcher.commit_task(task_id)
            state.plane.remove_worker(slot)
            del state.slot_of[workers[local].worker_id]
        matcher.clear_tasks()
        return matching, total

    # ------------------------------------------------------------------
    # columnar shard loop (zero-copy data plane)
    # ------------------------------------------------------------------
    def _run_columnar(self, strategy: PricingStrategy) -> SimulationResult:
        """The sequential shard loop over columnar period chunks.

        Mirrors :meth:`_run_sequential` stage for stage — same RNG
        stream, same dispatch order, same feedback — but keeps tasks and
        the worker pool as struct-of-arrays (:mod:`repro.simulation.arena`)
        and materialises records lazily, so the per-period cost scales
        with the array ops rather than with Python object churn.  Results
        are bit-identical to the object loop.
        """
        from repro.simulation.arena import ColumnarWorkerPool

        strategy.reset()
        collector = MetricsCollector(strategy.name, track_memory=self.track_memory)
        collector.start()
        rng = np.random.default_rng(derive_seed(self.seed, "acceptance", strategy.name))
        pipeline = PeriodPipeline(
            price_bounds=self.workload.price_bounds,
            acceptance=self.workload.acceptance,
            matching_backend=self.matching_backend,
        )

        outcomes: List[PeriodOutcome] = []
        pool = ColumnarWorkerPool()
        warm_caches: Optional[Dict[int, CrossPeriodWarmStart]] = (
            {} if self.warm_start else None
        )

        for period, (task_cols, worker_cols) in enumerate(
            self.workload.iter_period_columns()
        ):
            pool.extend(worker_cols)
            pool.retain_available(period)
            if not len(task_cols):
                if self.keep_details:
                    outcomes.append(
                        PeriodOutcome(
                            period=period,
                            num_tasks=0,
                            num_workers=len(pool),
                            prices={},
                            accepted_tasks=0,
                            served_tasks=0,
                            revenue=0.0,
                        )
                    )
                continue

            num_workers = len(pool)
            dispatches, leftover = self._dispatch_shards_columnar(
                period, task_cols, pool, strategy, rng, pipeline, collector, warm_caches
            )

            halo_revenue = 0.0
            if self.num_shards > 1 and self.halo > 0:
                with collector.time_matching():
                    halo_revenue, leftover = self._reconcile_halo(
                        period, dispatches, leftover, worker_of=pool.worker
                    )

            for dispatch in dispatches:
                served_map = dict(dispatch.matching)
                for task_pos in dispatch.halo_served:
                    served_map[task_pos] = _HALO_SERVED
                with collector.time_decide():
                    batch = pipeline.feedback(
                        dispatch.instance, dispatch.decision, served_map
                    )
                with collector.time_pricing():
                    strategy.observe_feedback_batch(batch)

            # Matched workers (local and halo) leave the pool; survivors
            # keep the object loop's order (shard by shard, then leftover).
            kept: List[np.ndarray] = []
            for dispatch in dispatches:
                taken = set(dispatch.matching.values())
                taken.update(dispatch.halo_taken)
                positions = dispatch.worker_positions
                assert positions is not None
                if taken:
                    keep_mask = np.ones(positions.shape[0], dtype=bool)
                    keep_mask[np.fromiter(taken, dtype=np.int64, count=len(taken))] = False
                    kept.append(positions[keep_mask])
                else:
                    kept.append(positions)
            if leftover:
                kept.append(
                    np.fromiter(
                        (pos for pos, _cell in leftover),
                        dtype=np.int64,
                        count=len(leftover),
                    )
                )
            pool.retain(
                np.concatenate(kept) if kept else np.zeros(0, dtype=np.int64)
            )

            revenue = 0.0
            served = 0
            accepted = 0
            for dispatch in dispatches:
                revenue += dispatch.revenue
                served += len(dispatch.matching) + len(dispatch.halo_served)
                accepted += int(dispatch.decision.accepted.sum())
            revenue += halo_revenue

            collector.record_period(
                revenue=revenue,
                served_tasks=served,
                accepted_tasks=accepted,
                total_tasks=len(task_cols),
            )
            if self.keep_details:
                prices: Dict[int, float] = {}
                for dispatch in dispatches:
                    prices.update(dispatch.grid_prices)
                outcomes.append(
                    PeriodOutcome(
                        period=period,
                        num_tasks=len(task_cols),
                        num_workers=num_workers,
                        prices=prices,
                        accepted_tasks=accepted,
                        served_tasks=served,
                        revenue=revenue,
                    )
                )

        metrics = collector.finish()
        return SimulationResult(
            metrics=metrics, outcomes=outcomes, description=self.workload.description
        )

    def _dispatch_shards_columnar(
        self,
        period: int,
        task_cols,
        pool,
        strategy: PricingStrategy,
        rng: np.random.Generator,
        pipeline: PeriodPipeline,
        collector: MetricsCollector,
        warm_caches: Optional[Dict[int, CrossPeriodWarmStart]] = None,
    ) -> Tuple[List[_ShardDispatch], List[Tuple[int, int]]]:
        """Columnar quote → decide → match over every shard with tasks.

        The partition is pure array work: tasks split by their (already
        annotated) cells, pool workers by one vectorised ``locate_many``.
        Returns the dispatch states plus ``(pool_position, cell)`` pairs
        of workers whose shard had no tasks this period.
        """
        grid = self.workload.grid
        num_shards = self.num_shards
        num_workers = len(pool)
        columns = pool.columns
        if num_workers:
            worker_cells = grid.locate_many(columns.xs, columns.ys)
        else:
            worker_cells = np.zeros(0, dtype=np.int64)

        if num_shards == 1:
            shard_task_positions: Dict[int, Optional[np.ndarray]] = {0: None}
            shard_worker_positions = {0: np.arange(num_workers, dtype=np.int64)}
        else:
            task_shards = self.tiling.shards_of_cells(task_cols.cells)
            shard_task_positions = {
                shard: np.flatnonzero(task_shards == shard)
                for shard in np.unique(task_shards).tolist()
            }
            shard_worker_positions = {}
            if num_workers:
                worker_shards = self.tiling.shards_of_cells(worker_cells)
                shard_worker_positions = {
                    shard: np.flatnonzero(worker_shards == shard)
                    for shard in np.unique(worker_shards).tolist()
                }

        dispatches: List[_ShardDispatch] = []
        leftover: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            worker_positions = shard_worker_positions.get(
                shard, np.zeros(0, dtype=np.int64)
            )
            if shard not in shard_task_positions:
                for pool_pos in worker_positions.tolist():
                    leftover.append((pool_pos, int(worker_cells[pool_pos])))
                continue
            task_positions = shard_task_positions[shard]
            shard_cols = (
                task_cols if task_positions is None else task_cols.take(task_positions)
            )
            instance = PeriodInstance.from_columns(
                period=period,
                grid=grid,
                task_columns=shard_cols,
                workers=pool.view(worker_positions),
                metric=self.workload.metric,
                max_degree=self.max_degree,
                worker_grids=worker_cells[worker_positions],
                worker_x=columns.xs[worker_positions],
                worker_y=columns.ys[worker_positions],
                worker_radii=columns.radii[worker_positions],
            )
            warm_cache = None
            if warm_caches is not None:
                warm_cache = warm_caches.setdefault(shard, CrossPeriodWarmStart())
            with collector.time_pricing():
                grid_prices = pipeline.quote(strategy, instance)
            with collector.time_decide():
                decision = pipeline.decide(instance, grid_prices, rng)
            with collector.time_matching():
                hints = warm_cache.hints(instance) if warm_cache is not None else None
                matching, revenue = pipeline.match(instance, decision, hints)
            if warm_cache is not None:
                warm_cache.update(instance, matching)
            dispatches.append(
                _ShardDispatch(
                    shard=shard,
                    instance=instance,
                    grid_prices=dict(grid_prices),
                    decision=decision,
                    matching=matching,
                    revenue=revenue,
                    worker_positions=worker_positions,
                )
            )
        return dispatches, leftover

    def _reconcile_halo(
        self,
        period: int,
        dispatches: List[_ShardDispatch],
        leftover: List[Tuple[object, int]],
        worker_of=None,
    ) -> Tuple[float, List[Tuple[object, int]]]:
        """One halo-exchange pass over the boundary band.

        Accepted-but-unmatched tasks in halo cells are re-offered to the
        residual workers of the halo band (of *any* shard — a worker just
        across the border is the common case; an own-shard worker freed
        differently by the reconciliation matching is a harmless bonus).
        Mutates the dispatch states (``halo_served`` / ``halo_taken``) and
        returns the recovered revenue plus the leftover workers that
        remain unmatched.

        ``leftover`` pairs carry either ``(Worker, cell)`` (object loop)
        or ``(pool_position, cell)`` with ``worker_of`` resolving
        positions to records on demand (columnar loop).
        """
        boundary = self._boundary
        tasks: List[Task] = []
        task_refs: List[Tuple[int, int]] = []
        weights: List[float] = []
        for dispatch_pos, dispatch in enumerate(dispatches):
            arrays = dispatch.instance.ensure_arrays()
            prices = dispatch.decision.prices
            distances = arrays.distances
            # Accepted-but-unmatched boundary tasks, ascending — selected
            # by the halo kernel (compiled or numpy per the kernel mode).
            candidates = halo_task_candidates(
                dispatch.decision.accepted_positions,
                dispatch.matching,
                arrays.task_grids,
                boundary,
            )
            if not candidates.size:
                continue
            instance_tasks = dispatch.instance.tasks
            for task_pos in candidates.tolist():
                tasks.append(instance_tasks[task_pos])
                task_refs.append((dispatch_pos, task_pos))
                weights.append(float(distances[task_pos] * prices[task_pos]))
        if not tasks:
            return 0.0, leftover

        workers: List[Worker] = []
        worker_refs: List[Tuple[int, int]] = []
        for dispatch_pos, dispatch in enumerate(dispatches):
            residual = halo_residual_workers(
                dispatch.matching,
                dispatch.instance.ensure_arrays().worker_grids,
                boundary,
            )
            # Index rather than iterate: lazy columnar views then only
            # materialise the residual boundary workers actually appended.
            instance_workers = dispatch.instance.workers
            for worker_pos in residual.tolist():
                workers.append(instance_workers[worker_pos])
                worker_refs.append((dispatch_pos, worker_pos))
        leftover_taken: set = set()
        for leftover_pos, (worker, cell) in enumerate(leftover):
            if boundary[cell - 1]:
                workers.append(worker if worker_of is None else worker_of(worker))
                worker_refs.append((-1, leftover_pos))
        if not workers:
            return 0.0, leftover

        instance = PeriodInstance.build(
            period=period,
            grid=self.workload.grid,
            tasks=tasks,
            workers=workers,
            metric=self.workload.metric,
            max_degree=self.max_degree,
        )
        matching, revenue = max_weight_matching(
            instance.graph,
            weights,
            backend="dynamic" if self.dynamic else self.matching_backend,
        )
        for reconcile_task, reconcile_worker in matching.items():
            dispatch_pos, task_pos = task_refs[reconcile_task]
            dispatches[dispatch_pos].halo_served.append(task_pos)
            owner, worker_pos = worker_refs[reconcile_worker]
            if owner >= 0:
                dispatches[owner].halo_taken.append(worker_pos)
            else:
                leftover_taken.add(worker_pos)
        remaining = [
            pair for pos, pair in enumerate(leftover) if pos not in leftover_taken
        ]
        return revenue, remaining

    # ------------------------------------------------------------------
    # process-per-shard execution (zero-copy)
    # ------------------------------------------------------------------
    def _split_columns(self):
        """Partition the horizon's columns spatially, one chunk list per shard."""
        from repro.simulation.arena import TaskColumns, WorkerColumns

        grid = self.workload.grid
        num_shards = self.num_shards
        chunks: Dict[int, List[Tuple[TaskColumns, WorkerColumns]]] = {
            shard: [] for shard in range(num_shards)
        }
        empty = np.zeros(0, dtype=np.int64)
        for task_cols, worker_cols in self.workload.iter_period_columns():
            task_shards = (
                self.tiling.shards_of_cells(task_cols.cells)
                if len(task_cols)
                else empty
            )
            if len(worker_cols):
                worker_cells = grid.locate_many(worker_cols.xs, worker_cols.ys)
                worker_shards = self.tiling.shards_of_cells(worker_cells)
            else:
                worker_shards = empty
            for shard in range(num_shards):
                chunks[shard].append(
                    (
                        task_cols.take(np.flatnonzero(task_shards == shard)),
                        worker_cols.take(np.flatnonzero(worker_shards == shard)),
                    )
                )
        return chunks

    def _run_process_per_shard(self, strategy: PricingStrategy) -> SimulationResult:
        """Run each shard's full horizon in its own process and merge.

        The split horizon is materialised **once** into a shared-memory
        :class:`~repro.simulation.arena.WorkloadArena`; each worker
        process receives a kilobyte-sized :class:`_ArenaShardJob` handle
        and maps its shard's columns zero-copy instead of unpickling a
        per-shard workload.  Every process gets its own strategy replica.
        This is exact for the shipped strategies (learned state is
        grid-keyed and grids never cross shards) whenever every task
        carries a private valuation; valuationless tasks draw from
        per-shard RNG streams, so their runs are statistically — not
        bitwise — equivalent to the sequential shard loop.  Hosts that
        cannot start process pools fall back to running the same
        per-shard horizons sequentially in-process (against the same
        arena), producing identical results.  The arena segment is
        unlinked before returning — worker crashes cannot leak it, since
        workers only ever attach.
        """
        from repro.simulation.arena import WorkloadArena

        arena = WorkloadArena.create(self._split_columns())
        try:
            jobs = [
                _ArenaShardJob(
                    handle=arena.handle,
                    shard=shard,
                    grid=self.workload.grid,
                    acceptance=self.workload.acceptance,
                    metric=self.workload.metric,
                    price_bounds=self.workload.price_bounds,
                    description=self.workload.description,
                    num_periods=self.workload.num_periods,
                    seed=derive_seed(self.seed, "shard", shard),
                    matching_backend=self.matching_backend,
                    track_memory=self.track_memory,
                    max_degree=self.max_degree,
                    warm_start=self.warm_start,
                )
                for shard in range(self.num_shards)
            ]
            results: Optional[List[SimulationResult]] = None
            try:
                pickle.dumps(strategy)
                pickle.dumps(jobs[0])
            except Exception as error:
                warnings.warn(
                    f"ShardedEngine: job payload is not picklable ({error!r}); "
                    "running all shards sequentially in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                try:
                    # Never start more processes than there are shards to
                    # run — an oversized shard_jobs would only fork idle
                    # workers that still pay interpreter + JIT-warmup cost.
                    pool_size = min(self.shard_jobs, self.num_shards)
                    with ProcessPoolExecutor(max_workers=pool_size) as executor:
                        results = list(
                            executor.map(
                                _execute_shard_horizon_arena,
                                jobs,
                                [strategy] * len(jobs),
                            )
                        )
                except (OSError, BrokenExecutor) as error:  # pragma: no cover - host-dependent
                    warnings.warn(
                        f"ShardedEngine: process pool unavailable ({error!r}); "
                        "re-running all shards sequentially in-process",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            if results is None:
                results = [
                    _execute_shard_horizon_arena(job, strategy) for job in jobs
                ]
        finally:
            arena.unlink()
        return self._merge_shard_results(results)

    def _merge_shard_results(
        self, results: Sequence[SimulationResult]
    ) -> SimulationResult:
        """Merge per-shard horizon results into one global result.

        Stage timings are summed across shards (CPU seconds, not wall
        clock); peak memory is the per-process maximum.
        """
        metrics = StrategyMetrics(strategy=results[0].metrics.strategy)
        outcomes: List[PeriodOutcome] = []
        for period in range(self.workload.num_periods):
            rows = [result.outcomes[period] for result in results]
            num_tasks = sum(row.num_tasks for row in rows)
            revenue = 0.0
            served = accepted = 0
            prices: Dict[int, float] = {}
            for row in rows:
                revenue += row.revenue
                served += row.served_tasks
                accepted += row.accepted_tasks
                prices.update(row.prices)
            if num_tasks:
                metrics.total_revenue += revenue
                metrics.revenue_by_period.append(revenue)
                metrics.served_tasks += served
                metrics.accepted_tasks += accepted
                metrics.total_tasks += num_tasks
            if self.keep_details:
                outcomes.append(
                    PeriodOutcome(
                        period=period,
                        num_tasks=num_tasks,
                        num_workers=sum(row.num_workers for row in rows),
                        prices=prices,
                        accepted_tasks=accepted,
                        served_tasks=served,
                        revenue=revenue,
                    )
                )
        for result in results:
            metrics.pricing_time_seconds += result.metrics.pricing_time_seconds
            metrics.decide_time_seconds += result.metrics.decide_time_seconds
            metrics.matching_time_seconds += result.metrics.matching_time_seconds
            metrics.peak_memory_bytes = max(
                metrics.peak_memory_bytes, result.metrics.peak_memory_bytes
            )
        return SimulationResult(
            metrics=metrics, outcomes=outcomes, description=self.workload.description
        )


__all__ = ["ShardedEngine", "ShardableWorkload"]
