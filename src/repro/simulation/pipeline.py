"""The vectorised per-period pipeline: quote → decide → match → feedback.

The simulation engine used to interleave pricing, per-task accept/reject
loops, matching and feedback bookkeeping inside one monolithic ``run``
method.  This module decomposes one period into four composable stages
driven by :class:`PeriodPipeline`:

* **quote** — ask the strategy for one unit price per grid;
* **decide** — realise the requesters' accept/reject decisions as array
  ops over the period's :class:`~repro.core.gdp.PeriodArrays` view:
  ``price <= valuation`` for tasks with private valuations and a single
  batched RNG draw for tasks governed by an external acceptance model.
  The RNG consumption is identical to the seed engine's per-task scalar
  draws, so fixed seeds reproduce the exact same decisions;
* **match** — compute the realized maximum-weight matching
  (Definition 5) over the CSR graph through the backend registry;
* **feedback** — pack one period's outcomes into a
  :class:`~repro.pricing.strategy.PriceFeedbackBatch` (``served`` is set
  in the same pass, not by rebuilding per-task objects) and hand it to
  the strategy.

Each stage is independently callable, which is what the equivalence tests
and ``benchmarks/test_bench_pipeline.py`` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.gdp import PeriodInstance
from repro.market.acceptance import PerGridAcceptance
from repro.matching.weighted import max_weight_matching
from repro.pricing.strategy import PriceFeedbackBatch, PricingStrategy
from repro.simulation.metrics import MetricsCollector


# eq=False on both result holders: ndarray fields would make the generated
# __eq__ raise; results are identity-compared.
@dataclass(frozen=True, eq=False)
class DecideResult:
    """Output of the decide stage.

    Attributes:
        prices: ``float64`` clamped offered unit price per task position.
        accepted: Boolean accept/reject decision per task position.
    """

    prices: np.ndarray
    accepted: np.ndarray

    @property
    def accepted_positions(self) -> np.ndarray:
        """Positions of accepted tasks, ascending."""
        return np.flatnonzero(self.accepted)


@dataclass(frozen=True, eq=False)
class PeriodResult:
    """Everything one pipeline pass produces for a period."""

    instance: PeriodInstance
    grid_prices: Dict[int, float]
    decision: DecideResult
    matching: Dict[int, int]
    revenue: float
    batch: PriceFeedbackBatch

    @property
    def accepted_tasks(self) -> int:
        return int(self.decision.accepted.sum())

    @property
    def served_tasks(self) -> int:
        return len(self.matching)


class PeriodPipeline:
    """Composable per-period stages over the struct-of-arrays view.

    Args:
        price_bounds: The quotable ``(p_min, p_max)`` interval.
        acceptance: Ground-truth acceptance models used for tasks without
            an attached private valuation.
        matching_backend: Backend name resolved through
            :mod:`repro.matching.registry` for the realized matching.
    """

    def __init__(
        self,
        price_bounds: Tuple[float, float],
        acceptance: PerGridAcceptance,
        matching_backend: str = "matroid",
    ) -> None:
        self.p_min, self.p_max = (float(price_bounds[0]), float(price_bounds[1]))
        self.acceptance = acceptance
        self.matching_backend = matching_backend

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def quote(
        self, strategy: PricingStrategy, instance: PeriodInstance
    ) -> Dict[int, float]:
        """Ask the strategy for the period's per-grid unit prices."""
        return strategy.price_period(instance)

    def decide(
        self,
        instance: PeriodInstance,
        grid_prices: Mapping[int, float],
        rng: np.random.Generator,
    ) -> DecideResult:
        """Realise the requesters' accept/reject decisions, vectorised.

        Grids the strategy did not price default to ``p_min`` (defensive:
        shipped strategies always price every grid that has tasks).  Tasks
        carrying a private valuation accept iff ``price <= valuation``;
        the remaining tasks draw once from ``rng`` each, in task order, so
        the stream matches the seed engine's scalar loop exactly.
        """
        arrays = instance.ensure_arrays()
        prices = arrays.prices_per_task(grid_prices, self.p_min, self.p_max)
        accepted = np.zeros(arrays.num_tasks, dtype=bool)
        has_valuation = arrays.has_valuation
        accepted[has_valuation] = (
            prices[has_valuation] <= arrays.valuations[has_valuation]
        )
        missing = np.flatnonzero(~has_valuation)
        if missing.size:
            # One batched lookup per period: quoted prices are per grid,
            # so the (grid, price) pairs collapse to a few unique combos
            # (values identical to the former per-task scalar calls).
            probabilities = self.acceptance.acceptance_ratios(
                arrays.task_grids[missing], prices[missing]
            )
            accepted[missing] = rng.random(missing.size) < probabilities
        return DecideResult(prices=prices, accepted=accepted)

    def match(
        self,
        instance: PeriodInstance,
        decision: DecideResult,
        warm_start: Optional[Mapping[int, int]] = None,
    ) -> Tuple[Dict[int, int], float]:
        """Maximum-weight matching of the accepted tasks (Definition 5).

        ``warm_start`` optionally carries ``{task_pos: worker_pos}`` hints
        (e.g. from :class:`CrossPeriodWarmStart`); the backend contract
        guarantees the matching weight is unchanged by hints.
        """
        arrays = instance.ensure_arrays()
        weights = arrays.distances * decision.prices
        return max_weight_matching(
            instance.graph,
            weights,
            allowed_tasks=decision.accepted_positions,
            backend=self.matching_backend,
            warm_start=warm_start,
        )

    def feedback(
        self,
        instance: PeriodInstance,
        decision: DecideResult,
        matching: Mapping[int, int],
    ) -> PriceFeedbackBatch:
        """Pack the period's outcomes into a batch, ``served`` included."""
        arrays = instance.ensure_arrays()
        served = np.zeros(arrays.num_tasks, dtype=bool)
        if matching:
            served[
                np.fromiter(matching.keys(), dtype=np.int64, count=len(matching))
            ] = True
        return PriceFeedbackBatch(
            period=instance.period,
            grid_indices=arrays.task_grids,
            prices=decision.prices,
            accepted=decision.accepted,
            distances=arrays.distances,
            served=served,
        )

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def run_period(
        self,
        strategy: PricingStrategy,
        instance: PeriodInstance,
        rng: np.random.Generator,
        collector: Optional[MetricsCollector] = None,
        match_fn: Optional[
            Callable[[PeriodInstance, DecideResult], Tuple[Dict[int, int], float]]
        ] = None,
        warm_start: Optional[Mapping[int, int]] = None,
    ) -> PeriodResult:
        """Run all four stages for one period.

        Timing attribution matches the seed engine: quoting and feedback
        learning count as pricing time, the realized matching as matching
        time; the decide stage gets its own timer.

        Args:
            strategy: The pricing strategy to quote with.
            instance: The period's instance.
            rng: Accept/reject randomness (consumed only by decide).
            collector: Metrics sink; a throwaway one is created if absent.
            match_fn: Optional replacement for the :meth:`match` stage
                (``(instance, decision) -> (matching, revenue)``); the
                streaming engine passes its incremental cross-window
                matcher here so both engines share this orchestration.
                A custom ``match_fn`` handles its own warm starts.
            warm_start: Optional hints forwarded to the :meth:`match`
                stage (ignored when ``match_fn`` is given).
        """
        if collector is None:
            collector = MetricsCollector(strategy.name)
        with collector.time_pricing():
            grid_prices = self.quote(strategy, instance)
        with collector.time_decide():
            decision = self.decide(instance, grid_prices, rng)
        with collector.time_matching():
            if match_fn is not None:
                matching, revenue = match_fn(instance, decision)
            else:
                matching, revenue = self.match(instance, decision, warm_start)
        with collector.time_decide():
            batch = self.feedback(instance, decision, matching)
        with collector.time_pricing():
            strategy.observe_feedback_batch(batch)
        return PeriodResult(
            instance=instance,
            grid_prices=dict(grid_prices),
            decision=decision,
            matching=matching,
            revenue=revenue,
            batch=batch,
        )


class CrossPeriodWarmStart:
    """Worker-keyed matching hints carried from one period to the next.

    After each period the cache records, per grid cell, the ids of the
    workers that served that cell's tasks.  At the next period it maps
    those ids back to worker *positions* restricted to workers still
    present in the pool, and proposes each new task of the cell one such
    surviving worker as a warm-start hint.  The matching backends consume
    hints only when provably free (see :mod:`repro.matching.weighted`),
    so each *period's* matching weight, matched-task set and served count
    are exactly what a cold solve of the same instance would produce.

    Over a whole horizon the guarantee is subtler: a consumed hint can
    change *which worker* serves a task, and matched workers leave the
    pool, so later periods may see a different pool and horizon totals
    may drift — the same caveat that applies to switching between exact
    backends with different tie-breaking.  Under the paper's worker model
    a dispatched worker leaves the pool for good, so in the shipped
    scenarios no hint can ever fire and warm runs coincide with cold
    runs bit-for-bit (pinned by the regression tests); the cache earns
    its keep on workloads with re-entrant supply (the same ``worker_id``
    re-arriving in a later period, e.g. shift-based couriers) and in
    custom engines that keep served workers around.
    """

    def __init__(self) -> None:
        self._served_by_grid: Dict[int, list] = {}
        self._served_ids: set = set()

    def hints(self, instance: PeriodInstance) -> Dict[int, int]:
        """``{task_pos: worker_pos}`` hints valid for ``instance``."""
        if not self._served_by_grid or not instance.workers:
            return {}
        # Cheap survivors-only pass first: under the shipped "serve once
        # then leave" worker model no served id ever re-enters the pool,
        # so this one set-membership sweep is the whole per-period cost.
        position_of = {
            worker.worker_id: pos
            for pos, worker in enumerate(instance.workers)
            if worker.worker_id in self._served_ids
        }
        if not position_of:
            return {}
        hints: Dict[int, int] = {}
        used: set = set()
        task_grids = instance.ensure_arrays().task_grids.tolist()
        for task_pos, grid_index in enumerate(task_grids):
            for worker_id in self._served_by_grid.get(grid_index, ()):
                worker_pos = position_of.get(worker_id)
                if worker_pos is not None and worker_pos not in used:
                    hints[task_pos] = worker_pos
                    used.add(worker_pos)
                    break
        return hints

    def update(self, instance: PeriodInstance, matching: Mapping[int, int]) -> None:
        """Record the period's served (grid -> worker ids) associations."""
        served: Dict[int, list] = {}
        served_ids: set = set()
        if matching:
            task_grids = instance.ensure_arrays().task_grids
            for task_pos, worker_pos in matching.items():
                if not 0 <= worker_pos < len(instance.workers):
                    continue  # sentinel positions (e.g. halo-served marks)
                worker_id = instance.workers[worker_pos].worker_id
                served.setdefault(int(task_grids[task_pos]), []).append(worker_id)
                served_ids.add(worker_id)
        self._served_by_grid = served
        self._served_ids = served_ids


__all__ = [
    "CrossPeriodWarmStart",
    "PeriodPipeline",
    "PeriodResult",
    "DecideResult",
]
