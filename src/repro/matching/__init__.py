"""Bipartite matching substrate.

The GDP objective (Definitions 5–6) is defined through the maximum-weight
bipartite matching of the *instantiated* task–worker graph, and MAPS
(Algorithm 2) maintains a growing *pre-matching* via augmenting paths to
check that an extra unit of supply for a grid is actually feasible.

Modules:

* :mod:`repro.matching.bipartite` — the task–worker bipartite graph built
  under the range constraint, with adjacency in both directions;
* :mod:`repro.matching.maximum_matching` — Hopcroft–Karp maximum
  cardinality matching (used as a reference for the incremental matcher);
* :mod:`repro.matching.weighted` — maximum-weight bipartite matching with
  interchangeable backends (exact matroid greedy on the CSR view, own
  Kuhn–Munkres, SciPy's ``linear_sum_assignment``, and sequential /
  numpy-vectorised greedy heuristics for very large graphs), all
  accepting optional cross-period warm-start hints;
* :mod:`repro.matching.registry` — the backend registry
  :func:`max_weight_matching` dispatches through (backends register
  themselves by name, mirroring :mod:`repro.pricing.registry`);
* :mod:`repro.matching.incremental` — the incremental augmenting-path
  matcher MAPS uses to admit one more worker into a grid's supply;
* :mod:`repro.matching.possible_worlds` — exact expected-revenue
  computation by enumerating possible worlds (for small instances such as
  the paper's running example, Fig. 2).
"""

from repro.matching.bipartite import BipartiteGraph, CSRGraph, build_bipartite_graph
from repro.matching.maximum_matching import hopcroft_karp_matching
from repro.matching.registry import (
    available_backends,
    get_backend,
    register_backend,
)
from repro.matching.weighted import (
    greedy_weight_matching,
    hungarian_matching,
    max_weight_matching,
    scipy_weight_matching,
    task_weighted_matching,
    vectorized_greedy_matching,
)
from repro.matching.incremental import IncrementalMatcher
from repro.matching.possible_worlds import (
    enumerate_possible_worlds,
    exact_expected_revenue,
    monte_carlo_expected_revenue,
)

__all__ = [
    "BipartiteGraph",
    "CSRGraph",
    "build_bipartite_graph",
    "hopcroft_karp_matching",
    "hungarian_matching",
    "scipy_weight_matching",
    "greedy_weight_matching",
    "vectorized_greedy_matching",
    "task_weighted_matching",
    "max_weight_matching",
    "available_backends",
    "get_backend",
    "register_backend",
    "IncrementalMatcher",
    "enumerate_possible_worlds",
    "exact_expected_revenue",
    "monte_carlo_expected_revenue",
]
