"""Maximum-weight bipartite matching.

The total revenue of a period (Definition 5) is the weight of a maximum
weighted matching of the instantiated bipartite graph where the weight of
edge ``(r, w)`` is ``d_r * p_r``.  Because the weight depends only on the
task, the problem is equivalent to selecting a maximum-weight set of
accepted tasks that can be simultaneously matched — an independent set in
the transversal matroid of the graph — and the classic matroid greedy
algorithm (process tasks by non-increasing weight, keep a task if an
augmenting path exists) is *exact* for this special structure.  That
greedy-with-augmentation algorithm is :func:`task_weighted_matching` and is
what the simulation engine uses, since it runs in ``O(|R| * |E|)`` and
scales to the paper's 500k-node scalability experiment.

For generality (and for the ablation benchmark) the module also provides:

* :func:`hungarian_matching` — a self-contained Kuhn–Munkres implementation
  on a dense matrix (edge weights may differ per worker), ``O(n^3)``;
* :func:`scipy_weight_matching` — a thin wrapper over
  ``scipy.optimize.linear_sum_assignment``;
* :func:`greedy_weight_matching` — a fast heuristic that never augments
  (used as a lower-bound baseline in the ablation);
* :func:`max_weight_matching` — a dispatcher by backend name.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.matching.bipartite import BipartiteGraph
from repro.matching.maximum_matching import UNMATCHED

EdgeWeightFn = Callable[[int, int], float]
MatchingResult = Tuple[Dict[int, int], float]


def _task_weight_matrix(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
) -> np.ndarray:
    """Dense weight matrix with ``-inf`` marking missing edges."""
    matrix = np.full((graph.num_tasks, graph.num_workers), -math.inf)
    for task_pos, adjacency in enumerate(graph.task_neighbors):
        for worker_pos in adjacency:
            matrix[task_pos, worker_pos] = task_weights[task_pos]
    return matrix


# ---------------------------------------------------------------------------
# exact matroid-greedy matching for task-side weights
# ---------------------------------------------------------------------------
def task_weighted_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
) -> MatchingResult:
    """Maximum-weight matching when the weight depends only on the task.

    Args:
        graph: Structural bipartite graph.
        task_weights: Weight (``d_r * p_r``) of each task position.
        allowed_tasks: Optional subset of task positions eligible for
            matching (e.g. only the accepted tasks).

    Returns:
        ``(task_to_worker, total_weight)``.

    The algorithm processes eligible tasks in non-increasing weight order
    and tries to augment the current matching for each; matroid theory
    guarantees the result is a maximum-weight matching because feasible
    task sets form a transversal matroid.
    """
    if len(task_weights) != graph.num_tasks:
        raise ValueError("task_weights length must match number of tasks")
    eligible = (
        list(range(graph.num_tasks)) if allowed_tasks is None else sorted(set(allowed_tasks))
    )
    order = sorted(eligible, key=lambda pos: (-float(task_weights[pos]), pos))

    match_task: List[int] = [UNMATCHED] * graph.num_tasks
    match_worker: List[int] = [UNMATCHED] * graph.num_workers

    def try_augment(task_pos: int, visited_workers: set) -> bool:
        for worker_pos in graph.task_neighbors[task_pos]:
            if worker_pos in visited_workers:
                continue
            visited_workers.add(worker_pos)
            current = match_worker[worker_pos]
            if current == UNMATCHED or try_augment(current, visited_workers):
                match_task[task_pos] = worker_pos
                match_worker[worker_pos] = task_pos
                return True
        return False

    total = 0.0
    for task_pos in order:
        weight = float(task_weights[task_pos])
        if weight <= 0.0:
            continue
        if try_augment(task_pos, set()):
            total += weight

    task_to_worker = {
        pos: worker for pos, worker in enumerate(match_task) if worker != UNMATCHED
    }
    return task_to_worker, total


# ---------------------------------------------------------------------------
# Kuhn–Munkres (Hungarian algorithm) on a dense matrix
# ---------------------------------------------------------------------------
def hungarian_matching(
    weight_matrix: np.ndarray,
) -> MatchingResult:
    """Maximum-weight bipartite matching of a dense weight matrix.

    ``weight_matrix[i, j]`` is the weight of assigning row ``i`` (task) to
    column ``j`` (worker); ``-inf`` marks forbidden pairs.  Rows and
    columns may be left unassigned (weights are treated as profits, and
    only pairs with positive finite weight contribute).

    Returns:
        ``(row_to_col, total_weight)``.

    The implementation pads the matrix to a square profit matrix with a
    zero-profit "dummy" option for every row/column and runs the
    Jonker-style O(n^3) shortest-augmenting-path Hungarian algorithm on the
    equivalent minimisation problem.
    """
    matrix = np.asarray(weight_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("weight_matrix must be 2-D")
    num_rows, num_cols = matrix.shape
    size = num_rows + num_cols  # room for every row and column to go unmatched
    # Profit matrix: dummy cells have profit zero; forbidden cells stay -inf
    # only in the real block, dummies make the problem always feasible.
    profit = np.zeros((size, size), dtype=float)
    profit[:num_rows, :num_cols] = np.where(np.isfinite(matrix), matrix, -1e18)
    best = profit.max() if size else 0.0
    cost = best - profit  # minimisation problem with non-negative costs

    assignment = _hungarian_min_cost(cost)

    row_to_col: Dict[int, int] = {}
    total = 0.0
    for row, col in assignment.items():
        if row < num_rows and col < num_cols and np.isfinite(matrix[row, col]) and matrix[row, col] > 0:
            row_to_col[row] = col
            total += float(matrix[row, col])
    return row_to_col, total


def _hungarian_min_cost(cost: np.ndarray) -> Dict[int, int]:
    """Square-matrix assignment minimisation (shortest augmenting paths).

    Classic O(n^3) implementation using potentials (a.k.a. the Jonker–
    Volgenant variant of the Hungarian algorithm).
    """
    n = cost.shape[0]
    if n == 0:
        return {}
    INF = math.inf
    # 1-based arrays as in the standard formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)  # p[j] = row assigned to column j (0 = none)
    way = [0] * (n + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(0, n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = {}
    for j in range(1, n + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    return assignment


# ---------------------------------------------------------------------------
# SciPy backend
# ---------------------------------------------------------------------------
def scipy_weight_matching(weight_matrix: np.ndarray) -> MatchingResult:
    """Maximum-weight matching via ``scipy.optimize.linear_sum_assignment``.

    Missing edges must be encoded as ``-inf``.  Because all real edge
    weights are non-negative (``d_r * p``), missing edges can be encoded as
    zero-profit cells for the solver: the complete assignment it returns
    then corresponds to a maximum-weight matching once zero-profit pairs
    are dropped, and no huge sentinel values enter the computation (which
    would destroy floating-point precision).
    """
    matrix = np.asarray(weight_matrix, dtype=float)
    if matrix.size == 0:
        return {}, 0.0
    profit = np.where(np.isfinite(matrix) & (matrix > 0), matrix, 0.0)
    rows, cols = linear_sum_assignment(profit, maximize=True)
    row_to_col: Dict[int, int] = {}
    total = 0.0
    for row, col in zip(rows, cols):
        value = matrix[row, col]
        if np.isfinite(value) and value > 0:
            row_to_col[int(row)] = int(col)
            total += float(value)
    return row_to_col, total


# ---------------------------------------------------------------------------
# greedy heuristic (no augmentation)
# ---------------------------------------------------------------------------
def greedy_weight_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
) -> MatchingResult:
    """Greedy matching without augmenting paths (heuristic lower bound).

    Tasks are processed by non-increasing weight and grabbed by the first
    free neighbouring worker.  Used in the ablation benchmark to quantify
    how much the exact augmentation-based matching gains.
    """
    if len(task_weights) != graph.num_tasks:
        raise ValueError("task_weights length must match number of tasks")
    eligible = (
        list(range(graph.num_tasks)) if allowed_tasks is None else sorted(set(allowed_tasks))
    )
    order = sorted(eligible, key=lambda pos: (-float(task_weights[pos]), pos))
    used_workers: set = set()
    task_to_worker: Dict[int, int] = {}
    total = 0.0
    for task_pos in order:
        weight = float(task_weights[task_pos])
        if weight <= 0.0:
            continue
        for worker_pos in graph.task_neighbors[task_pos]:
            if worker_pos not in used_workers:
                used_workers.add(worker_pos)
                task_to_worker[task_pos] = worker_pos
                total += weight
                break
    return task_to_worker, total


# ---------------------------------------------------------------------------
# dispatcher
# ---------------------------------------------------------------------------
_BACKENDS = ("matroid", "hungarian", "scipy", "greedy")


def max_weight_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    backend: str = "matroid",
) -> MatchingResult:
    """Maximum-weight matching with a selectable backend.

    Args:
        graph: Structural bipartite graph.
        task_weights: Per-task weights (``d_r * p_r``).
        allowed_tasks: Optional subset of task positions (accepted tasks).
        backend: One of ``matroid`` (exact, default), ``hungarian`` (exact,
            dense ``O(n^3)``), ``scipy`` (exact, dense) or ``greedy``
            (heuristic).

    Returns:
        ``(task_to_worker, total_weight)``.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
    if backend == "matroid":
        return task_weighted_matching(graph, task_weights, allowed_tasks)
    if backend == "greedy":
        return greedy_weight_matching(graph, task_weights, allowed_tasks)

    weights = list(task_weights)
    if allowed_tasks is not None:
        allowed = set(allowed_tasks)
        weights = [
            weights[pos] if pos in allowed else 0.0 for pos in range(graph.num_tasks)
        ]
    matrix = _task_weight_matrix(graph, weights)
    if backend == "hungarian":
        return hungarian_matching(matrix)
    return scipy_weight_matching(matrix)


__all__ = [
    "task_weighted_matching",
    "hungarian_matching",
    "scipy_weight_matching",
    "greedy_weight_matching",
    "max_weight_matching",
]
