"""Maximum-weight bipartite matching.

The total revenue of a period (Definition 5) is the weight of a maximum
weighted matching of the instantiated bipartite graph where the weight of
edge ``(r, w)`` is ``d_r * p_r``.  Because the weight depends only on the
task, the problem is equivalent to selecting a maximum-weight set of
accepted tasks that can be simultaneously matched — an independent set in
the transversal matroid of the graph — and the classic matroid greedy
algorithm (process tasks by non-increasing weight, keep a task if an
augmenting path exists) is *exact* for this special structure.  That
greedy-with-augmentation algorithm is :func:`task_weighted_matching` and is
what the simulation engine uses, since it runs in ``O(|R| * |E|)`` and
scales to the paper's 500k-node scalability experiment.

All backends consume the CSR (``indptr``/``indices``) view of the graph
(:meth:`repro.matching.bipartite.BipartiteGraph.csr`), built once per
period: eligible tasks are ordered with one ``numpy`` lexsort and the
augmenting-path search walks the flat CSR arrays iteratively with a
stamp-based visited array instead of recursing over list-of-list adjacency
with per-task ``set`` allocations.  The DFS visits workers in exactly the
order of the original recursive implementation, so the produced matching —
not just its weight — is unchanged.  The scalar inner loops (the matroid
augmenting-path search and the ``vgreedy`` round loop) live in
:mod:`repro.kernels`, which swaps in numba-compiled twins when the active
kernel mode selects them — bit-identical by construction, fuzzed by
``tests/matching/test_kernel_parity.py``.

Backends are registered in :mod:`repro.matching.registry` (mirroring
:mod:`repro.pricing.registry`) and selected by name through
:func:`max_weight_matching`:

* ``matroid`` — :func:`task_weighted_matching`, exact, the default;
* ``hungarian`` — a self-contained Kuhn–Munkres implementation on a dense
  matrix (edge weights may differ per worker), ``O(n^3)``;
* ``scipy`` — a thin wrapper over ``scipy.optimize.linear_sum_assignment``;
* ``greedy`` — a fast heuristic that never augments (lower-bound baseline
  in the ablation);
* ``vgreedy`` — a numpy-vectorised round-based greedy (proposals resolved
  by weight-order priority), the fast approximate backend for huge dense
  periods where even the flat-list greedy loop is the bottleneck;
* ``dynamic`` — the fully dynamic matcher
  (:class:`repro.matching.incremental.DynamicMatcher`) driven in batch
  mode: workers inserted, then tasks in canonical weight order.  Exact,
  and bit-identical to ``matroid`` in both pairing and total (inserting
  in non-increasing priority order never triggers an eviction, so the
  maintained basis grows through the same augmenting searches).  Mostly
  useful as a cross-check and as the halo-reconciliation backend when
  the sharded engine runs in dynamic mode; churn-heavy callers should
  drive :class:`~repro.matching.incremental.DynamicMatcher` directly.

**Warm starts.**  Every backend accepts a ``warm_start`` mapping of
``{task_position: worker_position}`` hints (e.g. the previous period's
matching restricted to still-present workers).  The ``matroid`` backend
uses a hint only when it is *provably free*: tasks are still processed in
the canonical non-increasing weight order, and a task whose hinted worker
is currently unmatched (and adjacent) takes it directly instead of
running the augmenting DFS.  Because independence in a transversal
matroid depends only on the *set* of matched tasks — never on which
worker certificate represents it — the matched task set and the total
weight are **identical** to the cold start's; only the task→worker pairing
may differ, and only for tasks that actually consumed a hint.  The dense
exact backends re-solve and trivially preserve the weight; the greedy
heuristics ignore hints entirely (applying them could change the greedy
weight, breaking the warm == cold guarantee the property tests pin).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.kernels.augmenting import matroid_augment
from repro.kernels.vgreedy import vgreedy_rounds
from repro.matching.bipartite import BipartiteGraph, CSRGraph
from repro.matching.maximum_matching import UNMATCHED
from repro.matching.registry import (
    available_backends,
    get_backend,
    register_backend,
)

EdgeWeightFn = Callable[[int, int], float]
MatchingResult = Tuple[Dict[int, int], float]


def eligible_order(
    num_tasks: int,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]],
) -> Tuple[np.ndarray, List[int]]:
    """Validated weights and eligible task positions in processing order.

    Processing order is non-increasing weight with ties broken by task
    position (the order the matroid greedy requires); tasks with
    non-positive weight are dropped up front, which is equivalent to the
    greedy skipping them.  Exported because the streaming engine's
    incremental window matcher must insert tasks in exactly this order to
    reproduce the matroid backend's matching bit-for-bit.
    """
    weights = np.asarray(task_weights, dtype=float)
    if weights.ndim != 1 or weights.shape[0] != num_tasks:
        raise ValueError("task_weights length must match number of tasks")
    if allowed_tasks is None:
        eligible = np.flatnonzero(weights > 0.0)
    else:
        allowed = np.unique(np.asarray(list(allowed_tasks), dtype=np.int64))
        if allowed.size and (allowed[0] < 0 or allowed[-1] >= num_tasks):
            raise IndexError("allowed task position out of range")
        eligible = allowed[weights[allowed] > 0.0]
    order = eligible[np.lexsort((eligible, -weights[eligible]))]
    return weights, order.tolist()


# ---------------------------------------------------------------------------
# exact matroid-greedy matching for task-side weights
# ---------------------------------------------------------------------------
def task_weighted_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    """Maximum-weight matching when the weight depends only on the task.

    Args:
        graph: Structural bipartite graph.
        task_weights: Weight (``d_r * p_r``) of each task position.
        allowed_tasks: Optional subset of task positions eligible for
            matching (e.g. only the accepted tasks).
        warm_start: Optional ``{task_position: worker_position}`` hints
            (e.g. the previous period's matching restricted to workers
            still present).  A hint is consumed only when the hinted
            worker is adjacent and still free at the task's turn in the
            canonical weight order, replacing that task's augmenting DFS
            with an O(log degree) check.  The matched task set and total
            weight are provably identical to the cold start (transversal-
            matroid independence is representation-free); with no hints
            the produced pairing is bit-identical too.

    Returns:
        ``(task_to_worker, total_weight)``.

    The algorithm processes eligible tasks in non-increasing weight order
    and tries to augment the current matching for each; matroid theory
    guarantees the result is a maximum-weight matching because feasible
    task sets form a transversal matroid.
    """
    csr = graph.csr()
    weights, order = eligible_order(csr.num_tasks, task_weights, allowed_tasks)
    hints = _validated_hints(csr.num_tasks, csr.num_workers, warm_start)

    # The augmenting-path loop itself is the kernel (numba-compiled when
    # the active kernel mode selects it, the historical pure-Python loop
    # otherwise); everything float-bearing stays here, shared by both
    # families, so the totals are bit-identical and not merely close.
    match_task = matroid_augment(csr, order, hints)

    weight_list = weights.tolist()
    total = 0.0
    # Accumulate in canonical processing order — the exact float addition
    # sequence of the historical inline loop (a matched task is matched
    # at its own turn and the matching only grows).
    for task_pos in order:
        if match_task[task_pos] != UNMATCHED:
            total += weight_list[task_pos]

    task_to_worker = {
        pos: worker for pos, worker in enumerate(match_task) if worker != UNMATCHED
    }
    return task_to_worker, total


def _validated_hints(
    num_tasks: int,
    num_workers: int,
    warm_start: Optional[Mapping[int, int]],
) -> Dict[int, int]:
    """Sanitised warm-start hints: in-range pairs, one worker per task.

    Out-of-range or duplicated-worker hints are dropped rather than
    rejected — a stale hint (e.g. from a previous period whose entities
    are gone) is expected operation, not an error.
    """
    if not warm_start:
        return {}
    hints: Dict[int, int] = {}
    seen_workers: set = set()
    for task_pos, worker_pos in warm_start.items():
        task_pos, worker_pos = int(task_pos), int(worker_pos)
        if not 0 <= task_pos < num_tasks or not 0 <= worker_pos < num_workers:
            continue
        if worker_pos in seen_workers:
            continue
        seen_workers.add(worker_pos)
        hints[task_pos] = worker_pos
    return hints


# ---------------------------------------------------------------------------
# Kuhn–Munkres (Hungarian algorithm) on a dense matrix
# ---------------------------------------------------------------------------
def hungarian_matching(
    weight_matrix: np.ndarray,
) -> MatchingResult:
    """Maximum-weight bipartite matching of a dense weight matrix.

    ``weight_matrix[i, j]`` is the weight of assigning row ``i`` (task) to
    column ``j`` (worker); ``-inf`` marks forbidden pairs.  Rows and
    columns may be left unassigned (weights are treated as profits, and
    only pairs with positive finite weight contribute).

    Returns:
        ``(row_to_col, total_weight)``.

    The implementation pads the matrix to a square profit matrix with a
    zero-profit "dummy" option for every row/column and runs the
    Jonker-style O(n^3) shortest-augmenting-path Hungarian algorithm on the
    equivalent minimisation problem.
    """
    matrix = np.asarray(weight_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("weight_matrix must be 2-D")
    num_rows, num_cols = matrix.shape
    size = num_rows + num_cols  # room for every row and column to go unmatched
    # Profit matrix: dummy cells have profit zero; forbidden cells stay -inf
    # only in the real block, dummies make the problem always feasible.
    profit = np.zeros((size, size), dtype=float)
    profit[:num_rows, :num_cols] = np.where(np.isfinite(matrix), matrix, -1e18)
    best = profit.max() if size else 0.0
    cost = best - profit  # minimisation problem with non-negative costs

    assignment = _hungarian_min_cost(cost)

    row_to_col: Dict[int, int] = {}
    total = 0.0
    for row, col in assignment.items():
        if row < num_rows and col < num_cols and np.isfinite(matrix[row, col]) and matrix[row, col] > 0:
            row_to_col[row] = col
            total += float(matrix[row, col])
    return row_to_col, total


def _hungarian_min_cost(cost: np.ndarray) -> Dict[int, int]:
    """Square-matrix assignment minimisation (shortest augmenting paths).

    Classic O(n^3) implementation using potentials (a.k.a. the Jonker–
    Volgenant variant of the Hungarian algorithm).
    """
    n = cost.shape[0]
    if n == 0:
        return {}
    INF = math.inf
    # 1-based arrays as in the standard formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)  # p[j] = row assigned to column j (0 = none)
    way = [0] * (n + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(0, n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = {}
    for j in range(1, n + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    return assignment


# ---------------------------------------------------------------------------
# SciPy backend
# ---------------------------------------------------------------------------
def scipy_weight_matching(weight_matrix: np.ndarray) -> MatchingResult:
    """Maximum-weight matching via ``scipy.optimize.linear_sum_assignment``.

    Missing edges must be encoded as ``-inf``.  Because all real edge
    weights are non-negative (``d_r * p``), missing edges can be encoded as
    zero-profit cells for the solver: the complete assignment it returns
    then corresponds to a maximum-weight matching once zero-profit pairs
    are dropped, and no huge sentinel values enter the computation (which
    would destroy floating-point precision).
    """
    matrix = np.asarray(weight_matrix, dtype=float)
    if matrix.size == 0:
        return {}, 0.0
    profit = np.where(np.isfinite(matrix) & (matrix > 0), matrix, 0.0)
    rows, cols = linear_sum_assignment(profit, maximize=True)
    row_to_col: Dict[int, int] = {}
    total = 0.0
    for row, col in zip(rows, cols):
        value = matrix[row, col]
        if np.isfinite(value) and value > 0:
            row_to_col[int(row)] = int(col)
            total += float(value)
    return row_to_col, total


# ---------------------------------------------------------------------------
# greedy heuristic (no augmentation)
# ---------------------------------------------------------------------------
def greedy_weight_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
) -> MatchingResult:
    """Greedy matching without augmenting paths (heuristic lower bound).

    Tasks are processed by non-increasing weight and grabbed by the first
    free neighbouring worker.  Used in the ablation benchmark to quantify
    how much the exact augmentation-based matching gains.
    """
    csr = graph.csr()
    weights, order = eligible_order(csr.num_tasks, task_weights, allowed_tasks)
    weight_list = weights.tolist()
    indptr = csr.indptr_list
    indices = csr.indices_list
    worker_used = bytearray(csr.num_workers)
    task_to_worker: Dict[int, int] = {}
    total = 0.0
    for task_pos in order:
        for ptr in range(indptr[task_pos], indptr[task_pos + 1]):
            worker_pos = indices[ptr]
            if not worker_used[worker_pos]:
                worker_used[worker_pos] = 1
                task_to_worker[task_pos] = worker_pos
                total += weight_list[task_pos]
                break
    return task_to_worker, total


# ---------------------------------------------------------------------------
# numpy-vectorised greedy (round-based proposals)
# ---------------------------------------------------------------------------
def vectorized_greedy_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
) -> MatchingResult:
    """Round-based greedy matching over the flat CSR arrays (approximate).

    Each round, every still-unmatched eligible task *proposes* to its
    first still-free neighbouring worker (lowest worker position); when
    several tasks propose to the same worker, the task ranked earliest in
    the canonical weight order wins, and losers re-propose next round.
    Every round is a handful of numpy passes over the surviving candidate
    edges with **no Python per-edge work**, and at least one proposal
    (the globally best-ranked active task's) succeeds per round, so the
    loop terminates in at most ``min(|R|, |W|)`` rounds — in practice a
    few, since the candidate set collapses geometrically.

    The result is a *maximal* matching of the eligible tasks: every
    unmatched eligible task has all its neighbours taken, which bounds
    the cardinality at no less than half the exact backend's.  The total
    weight is generally close to, but not the same as, the sequential
    ``greedy`` heuristic — conflict losers may settle for workers a
    sequential pass would have given to someone else — which is why this
    is registered as the separate ``vgreedy`` backend.
    """
    csr = graph.csr()
    weights, order = eligible_order(csr.num_tasks, task_weights, allowed_tasks)
    if not order or not csr.num_edges:
        return {}, 0.0
    order_arr = np.asarray(order, dtype=np.int64)
    # rank[t]: position in the canonical processing order (lower wins).
    rank = np.full(csr.num_tasks, np.iinfo(np.int64).max, dtype=np.int64)
    rank[order_arr] = np.arange(order_arr.size, dtype=np.int64)

    eligible = np.zeros(csr.num_tasks, dtype=bool)
    eligible[order_arr] = True
    edge_tasks = np.repeat(np.arange(csr.num_tasks, dtype=np.int64), csr.degrees())
    keep = eligible[edge_tasks]
    cand_t = edge_tasks[keep]
    cand_w = csr.indices[keep]

    # The round loop is the kernel; candidate preparation (above) and the
    # weight total (below) are shared by both kernel families, so the
    # matching and the revenue are bit-identical either way.
    task_match = vgreedy_rounds(cand_t, cand_w, rank, csr.num_tasks, csr.num_workers)

    matched = np.flatnonzero(task_match != UNMATCHED)
    task_to_worker = dict(
        zip(matched.tolist(), task_match[matched].tolist())
    )
    return task_to_worker, float(weights[matched].sum())


# ---------------------------------------------------------------------------
# fully dynamic matcher driven in batch mode
# ---------------------------------------------------------------------------
def dynamic_batch_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    """Batch solve through :class:`~repro.matching.incremental.DynamicMatcher`.

    Inserts every worker, then every eligible task in the canonical
    non-increasing weight order, and reads the maintained matching off.
    In that insertion order a failed augmenting search never evicts (the
    arriving task is always the lowest-priority element of its circuit),
    so the operation sequence degenerates to exactly the matroid greedy:
    same searches, same pairs, and — with the total accumulated in the
    same processing order below — a bitwise-identical weight.  Warm-start
    hints follow the matroid rule (adjacent + free consumes the hint).
    """
    from repro.matching.incremental import DynamicMatcher

    csr = graph.csr()
    weights, order = eligible_order(csr.num_tasks, task_weights, allowed_tasks)
    hints = _validated_hints(csr.num_tasks, csr.num_workers, warm_start)
    matcher = DynamicMatcher(graph, weights)
    for worker_pos in range(csr.num_workers):
        matcher.insert_worker(worker_pos)
    for task_pos in order:
        matcher.insert_task(task_pos, preferred_worker=hints.get(task_pos))

    weight_list = weights.tolist()
    total = 0.0
    for task_pos in order:
        if matcher.is_task_matched(task_pos):
            total += weight_list[task_pos]
    return matcher.matching(), total


# ---------------------------------------------------------------------------
# dense-matrix helpers shared by the hungarian / scipy backends
# ---------------------------------------------------------------------------
def _task_weight_matrix(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
) -> np.ndarray:
    """Dense weight matrix with ``-inf`` marking missing edges."""
    csr = graph.csr()
    matrix = np.full((csr.num_tasks, csr.num_workers), -math.inf)
    if csr.num_edges:
        rows = np.repeat(np.arange(csr.num_tasks), csr.degrees())
        matrix[rows, csr.indices] = np.asarray(task_weights, dtype=float)[rows]
    return matrix


def _masked_weights(
    num_tasks: int,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]],
) -> np.ndarray:
    """Weights with disallowed task positions zeroed out."""
    weights = np.asarray(task_weights, dtype=float).copy()
    if weights.ndim != 1 or weights.shape[0] != num_tasks:
        raise ValueError("task_weights length must match number of tasks")
    if allowed_tasks is not None:
        allowed = np.asarray(list(allowed_tasks), dtype=np.int64)
        if allowed.size and (allowed.min() < 0 or allowed.max() >= num_tasks):
            raise IndexError("allowed task position out of range")
        mask = np.zeros(num_tasks, dtype=bool)
        mask[allowed] = True
        weights[~mask] = 0.0
    return weights


# ---------------------------------------------------------------------------
# backend registrations + dispatcher
# ---------------------------------------------------------------------------
@register_backend("matroid")
def _matroid_backend(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    return task_weighted_matching(graph, task_weights, allowed_tasks, warm_start)


@register_backend("greedy")
def _greedy_backend(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    # Hints are deliberately ignored: rerouting the greedy's first-free
    # choice can change which later tasks find a free neighbour, so the
    # warm == cold weight guarantee would not hold.
    return greedy_weight_matching(graph, task_weights, allowed_tasks)


@register_backend("vgreedy")
def _vgreedy_backend(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    # Hints ignored for the same reason as the sequential greedy.
    return vectorized_greedy_matching(graph, task_weights, allowed_tasks)


@register_backend("dynamic")
def _dynamic_backend(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    return dynamic_batch_matching(graph, task_weights, allowed_tasks, warm_start)


@register_backend("hungarian")
def _hungarian_backend(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    # Dense exact solve; re-solving from scratch trivially preserves the
    # warm == cold weight guarantee.
    weights = _masked_weights(graph.num_tasks, task_weights, allowed_tasks)
    return hungarian_matching(_task_weight_matrix(graph, weights))


@register_backend("scipy")
def _scipy_backend(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    weights = _masked_weights(graph.num_tasks, task_weights, allowed_tasks)
    return scipy_weight_matching(_task_weight_matrix(graph, weights))


def max_weight_matching(
    graph: BipartiteGraph,
    task_weights: Sequence[float],
    allowed_tasks: Optional[Sequence[int]] = None,
    backend: str = "matroid",
    warm_start: Optional[Mapping[int, int]] = None,
) -> MatchingResult:
    """Maximum-weight matching with a selectable backend.

    Args:
        graph: Structural bipartite graph.
        task_weights: Per-task weights (``d_r * p_r``).
        allowed_tasks: Optional subset of task positions (accepted tasks).
        backend: A backend name registered in
            :mod:`repro.matching.registry` — ``matroid`` (exact, default),
            ``hungarian`` (exact, dense ``O(n^3)``), ``scipy`` (exact,
            dense), ``dynamic`` (exact, the fully dynamic matcher in
            batch mode), ``greedy`` (heuristic) or ``vgreedy``
            (vectorised heuristic).
        warm_start: Optional ``{task_position: worker_position}`` hints;
            see the module docstring for the per-backend semantics and
            the weight-preservation guarantee.

    Returns:
        ``(task_to_worker, total_weight)``.

    Raises:
        ValueError: for unknown backends; the error lists the registered
            backend names (see :func:`repro.matching.registry.get_backend`).
    """
    backend_fn = get_backend(backend)
    if warm_start:
        # Only forwarded when given, so three-argument custom backends
        # registered by callers keep working for warm-start-free calls.
        return backend_fn(graph, task_weights, allowed_tasks, warm_start)
    return backend_fn(graph, task_weights, allowed_tasks)


__all__ = [
    "eligible_order",
    "task_weighted_matching",
    "hungarian_matching",
    "scipy_weight_matching",
    "greedy_weight_matching",
    "vectorized_greedy_matching",
    "dynamic_batch_matching",
    "max_weight_matching",
    "available_backends",
]
