"""Incremental augmenting-path matcher (the MAPS pre-matching).

Algorithm 2 maintains a *pre-matching* ``M'``: every time the planner wants
to raise the supply ``n^{tg}`` of a grid by one, it must check that an
additional, not-yet-assigned task of that grid can actually be matched to a
free worker (possibly after re-routing existing assignments along an
augmenting path).  If no augmenting path exists the grid's marginal gain is
forced to zero and the grid drops out of the supply competition.

:class:`IncrementalMatcher` wraps that logic: it owns the matching state,
answers "can grid g absorb one more worker?" queries by searching an
augmenting path from any unmatched task of the grid, and commits the path
when the planner admits the supply increase.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kernels.dispatch import numba_module, use_numba
from repro.kernels.dynamic import dynamic_augment, dynamic_reach
from repro.matching.bipartite import BipartiteGraph
from repro.matching.maximum_matching import UNMATCHED


class IncrementalMatcher:
    """Maintains a matching of the task–worker graph under augmentation.

    The matcher never removes matched pairs; it only grows the matching
    one augmenting path at a time, which mirrors lines 10 and 16 of
    Algorithm 2.

    The augmenting search walks the graph's cached CSR view
    (:meth:`BipartiteGraph.csr`) — the same arrays the batch matching
    backends consume — so one period's CSR is built once and shared by
    the match stage, the halo reconciliation and this matcher, instead of
    re-walking (or re-materialising) list-of-list adjacency per consumer.
    The CSR is snapshotted at construction: the graph must not gain edges
    while the matcher is alive.

    Args:
        graph: Structural bipartite graph of the current period.
        grid_tasks: Optional pre-computed ``{grid_index: task positions}``
            buckets (e.g. :attr:`PeriodInstance.tasks_by_grid`); passing
            them avoids re-walking every task's grid annotation here.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        grid_tasks: Optional[Mapping[int, Sequence[int]]] = None,
    ) -> None:
        self._graph = graph
        csr = graph.csr()
        # The kernel family is fixed at construction (a matcher lives for
        # one period or window).  The compiled path keeps the matching
        # state in the int64 ndarrays the numba kernel walks in place;
        # the Python path keeps plain lists, which the interpreted DFS
        # indexes measurably faster than ndarrays.
        self._impl = numba_module() if use_numba() else None
        if self._impl is not None:
            self._indptr = csr.indptr
            self._indices = csr.indices
            self._match_task = np.full(graph.num_tasks, UNMATCHED, dtype=np.int64)
            self._match_worker = np.full(graph.num_workers, UNMATCHED, dtype=np.int64)
            # Reusable output buffers for the kernel: an augmenting path
            # visits each task at most once, bounding its length.
            self._path_tasks = np.empty(graph.num_tasks + 1, dtype=np.int64)
            self._path_workers = np.empty(graph.num_tasks + 1, dtype=np.int64)
        else:
            self._indptr = csr.indptr_list
            self._indices = csr.indices_list
            self._match_task = [UNMATCHED] * graph.num_tasks
            self._match_worker = [UNMATCHED] * graph.num_workers
        # Task positions grouped by grid; taken from the caller when
        # available, otherwise computed lazily on first use.
        self._grid_tasks: Optional[Dict[int, List[int]]] = (
            {g: list(positions) for g, positions in grid_tasks.items()}
            if grid_tasks is not None
            else None
        )
        # Stamp-based visited array for the iterative augmenting-path
        # search plus saturation pruning: when a search fails, every
        # worker it visited lies in a frozen alternating component (all
        # matched, owner neighbourhoods closed within the component), so
        # no later augmenting path can pass through them — the matching
        # only ever grows, which keeps the marking sound.  Mirrors the
        # batch matroid backend in :mod:`repro.matching.weighted`.
        if self._impl is not None:
            self._visited = np.zeros(graph.num_workers, dtype=np.int64)
            self._dead = np.zeros(graph.num_workers, dtype=np.uint8)
        else:
            self._visited = [0] * graph.num_workers
            self._dead = bytearray(graph.num_workers)
        self._stamp = 0
        # Check-then-commit cache: the MAPS planner probes
        # ``can_augment_grid(g)`` when proposing a supply increase and
        # commits with ``augment_grid(g)`` only when the proposal wins the
        # heap.  The matching only changes through ``_apply_path``, so a
        # path found at version ``v`` is still augmenting at version ``v``
        # — committing it verbatim skips the second search.
        self._version = 0
        self._cached_grid: Optional[int] = None
        self._cached_version = -1
        self._cached_result: Optional[Tuple[int, List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        return self._graph

    @property
    def size(self) -> int:
        """Number of matched pairs."""
        return sum(1 for worker in self._match_task if worker != UNMATCHED)

    def matching(self) -> Dict[int, int]:
        """Current matching as ``{task_position: worker_position}``."""
        return {
            task_pos: int(worker_pos)
            for task_pos, worker_pos in enumerate(self._match_task)
            if worker_pos != UNMATCHED
        }

    def worker_of(self, task_pos: int) -> Optional[int]:
        worker = self._match_task[task_pos]
        return None if worker == UNMATCHED else int(worker)

    def task_of(self, worker_pos: int) -> Optional[int]:
        task = self._match_worker[worker_pos]
        return None if task == UNMATCHED else int(task)

    def is_task_matched(self, task_pos: int) -> bool:
        return self._match_task[task_pos] != UNMATCHED

    def matched_tasks_in_grid(self, grid_index: int) -> List[int]:
        return [
            pos for pos in self._tasks_of_grid(grid_index) if self.is_task_matched(pos)
        ]

    def unmatched_tasks_in_grid(self, grid_index: int) -> List[int]:
        return [
            pos
            for pos in self._tasks_of_grid(grid_index)
            if not self.is_task_matched(pos)
        ]

    # ------------------------------------------------------------------
    # augmentation
    # ------------------------------------------------------------------
    def can_augment_grid(self, grid_index: int) -> bool:
        """Whether some unmatched task of the grid admits an augmenting path.

        Does not modify the matching.  The found path (or its absence) is
        cached and reused by :meth:`augment_grid` when the matching has
        not changed in between — the planner's common probe-then-commit
        sequence then costs one search instead of two.
        """
        result = self._grid_augmenting_path_cached(grid_index)
        return result is not None

    def augment_grid(self, grid_index: int) -> Optional[int]:
        """Admit one more supply unit for the grid, if feasible.

        Searches an augmenting path starting from any unmatched task of the
        grid and, if found, applies it.

        Returns:
            The task position that became matched, or ``None`` if no
            augmenting path exists (the grid is saturated).
        """
        result = self._grid_augmenting_path_cached(grid_index)
        if result is None:
            return None
        start_task, path = result
        self._apply_path(path)
        return start_task

    def _grid_augmenting_path_cached(
        self, grid_index: int
    ) -> Optional[Tuple[int, List[Tuple[int, int]]]]:
        if self._cached_grid == grid_index and self._cached_version == self._version:
            return self._cached_result
        result = self._find_grid_augmenting_path(grid_index)
        self._cached_grid = grid_index
        self._cached_version = self._version
        self._cached_result = result
        return result

    def augment_task(
        self, task_pos: int, preferred_worker: Optional[int] = None
    ) -> bool:
        """Try to match a specific task, optionally via a warm-start hint.

        Args:
            task_pos: The task to match (no-op if already matched).
            preferred_worker: Optional worker-position hint (e.g. from the
                previous window's matching).  Consumed only when the hint
                is adjacent and still free — a length-one augmenting path
                — so the matched task set (and hence any task-weighted
                total) is exactly what the hint-free search would have
                produced; otherwise the normal augmenting DFS runs.

        Returns:
            Whether the task is matched after the call.
        """
        if self.is_task_matched(task_pos):
            return True
        if (
            preferred_worker is not None
            and 0 <= preferred_worker < len(self._match_worker)
            and self._match_worker[preferred_worker] == UNMATCHED
        ):
            lo, hi = self._indptr[task_pos], self._indptr[task_pos + 1]
            at = bisect_left(self._indices, preferred_worker, lo, hi)
            if at < hi and self._indices[at] == preferred_worker:
                self._match_task[task_pos] = preferred_worker
                self._match_worker[preferred_worker] = task_pos
                self._version += 1
                return True
        path = self._find_augmenting_path(task_pos)
        if path is None:
            return False
        self._apply_path(path)
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _tasks_of_grid(self, grid_index: int) -> List[int]:
        if self._grid_tasks is None:
            self._grid_tasks = {}
            for pos, task in enumerate(self._graph.tasks):
                if task.grid_index is None:
                    raise ValueError(
                        f"task {task.task_id} has no grid index; annotate tasks first"
                    )
                self._grid_tasks.setdefault(task.grid_index, []).append(pos)
        return self._grid_tasks.get(grid_index, [])

    def _find_grid_augmenting_path(
        self, grid_index: int
    ) -> Optional[Tuple[int, List[Tuple[int, int]]]]:
        for task_pos in self._tasks_of_grid(grid_index):
            if self.is_task_matched(task_pos):
                continue
            path = self._find_augmenting_path(task_pos)
            if path is not None:
                return task_pos, path
        return None

    def _find_augmenting_path(self, start_task: int) -> Optional[List[Tuple[int, int]]]:
        """Iterative DFS for an augmenting path.

        Returns the (task, worker) pairs to set, deepest first, so that
        applying every pair (in order) flips matched/unmatched edges
        correctly.  Visits workers in exactly the order the original
        recursive search did (hence the same path), but walks an explicit
        stack: city-scale dispatch windows produce augmenting chains far
        deeper than the interpreter's recursion limit, which used to blow
        the stack with ``RecursionError``.  Failed searches additionally
        mark every visited worker as saturated (see ``__init__``), which
        keeps repeated infeasible queries — e.g. a saturated grid probed
        every period — near-linear instead of quadratic.

        Under the numba kernel family the search runs as one compiled
        call against the ndarray state (same visiting order, hence the
        same path — fuzzed by ``tests/matching/test_kernel_parity.py``).
        """
        if self._impl is not None:
            self._stamp += 1
            length = self._impl.incremental_augment(
                self._indptr,
                self._indices,
                self._match_worker,
                self._visited,
                self._dead,
                self._stamp,
                start_task,
                self._path_tasks,
                self._path_workers,
            )
            if length < 0:
                return None
            return [
                (int(self._path_tasks[level]), int(self._path_workers[level]))
                for level in range(length)
            ]
        indptr = self._indptr
        indices = self._indices
        match_worker = self._match_worker
        visited = self._visited
        dead = self._dead
        self._stamp += 1
        stamp = self._stamp

        tasks_stack = [start_task]
        iters = [indptr[start_task]]
        chosen = [UNMATCHED]
        touched: List[int] = []
        while tasks_stack:
            depth = len(tasks_stack) - 1
            task_pos = tasks_stack[depth]
            end = indptr[task_pos + 1]
            pointer = iters[depth]
            descended = False
            while pointer < end:
                worker_pos = indices[pointer]
                pointer += 1
                if dead[worker_pos] or visited[worker_pos] == stamp:
                    continue
                visited[worker_pos] = stamp
                touched.append(worker_pos)
                iters[depth] = pointer
                chosen[depth] = worker_pos
                owner = match_worker[worker_pos]
                if owner == UNMATCHED:
                    # Deepest pair first, matching the recursive unwind.
                    return [
                        (tasks_stack[level], chosen[level])
                        for level in range(depth, -1, -1)
                    ]
                tasks_stack.append(owner)
                iters.append(indptr[owner])
                chosen.append(UNMATCHED)
                descended = True
                break
            if not descended:
                tasks_stack.pop()
                iters.pop()
                chosen.pop()
        for worker_pos in touched:
            dead[worker_pos] = 1
        return None

    def _apply_path(self, path: Iterable[Tuple[int, int]]) -> None:
        for task_pos, worker_pos in path:
            self._match_task[task_pos] = worker_pos
            self._match_worker[worker_pos] = task_pos
        self._version += 1

    # ------------------------------------------------------------------
    # validation helpers (used by tests)
    # ------------------------------------------------------------------
    def is_valid_matching(self) -> bool:
        """Check mutual consistency and edge feasibility of the matching."""
        for task_pos, worker_pos in enumerate(self._match_task):
            if worker_pos == UNMATCHED:
                continue
            if self._match_worker[worker_pos] != task_pos:
                return False
            if worker_pos not in self._graph.task_neighbors[task_pos]:
                return False
        seen_workers: Set[int] = set()
        for worker_pos in self._match_task:
            if worker_pos == UNMATCHED:
                continue
            if worker_pos in seen_workers:
                return False
            seen_workers.add(worker_pos)
        return True


class DynamicMatcher(IncrementalMatcher):
    """Maximum-weight matching maintained under insertions *and* deletions.

    The graph passed at construction is the *universe*: every task and
    worker that may ever exist, with the full CSR adjacency.  All of them
    start absent; :meth:`insert_task` / :meth:`insert_worker` bring them
    live, :meth:`remove_task` / :meth:`remove_worker` take them out, and
    :meth:`commit_task` retires a matched pair (both sides leave, no
    repair needed).  After every operation the matcher restores one
    invariant:

        **the matched task set is the lexicographically-maximal
        independent set** of the transversal matroid induced by the live
        workers on the live, positive-weight tasks, under the priority
        order *weight descending, position ascending* — exactly the set
        the batch matroid backend (:func:`max_weight_matching`) computes
        from scratch on the same population.

    Because that set is intrinsic to the population (not to the path of
    operations that produced it), "dynamic == batch re-solve" holds after
    *any* interleaving of inserts and deletes — the property the stateful
    differential suite (``tests/property/test_dynamic_matching.py``)
    fuzzes.  The matched *pairs* are not canonical under churn (distinct
    maximum matchings of the same set exist); only the set and the total
    weight are.

    Repairs touch only the alternating structure around the delta:

    * inserting task ``t`` runs one augmenting DFS; on failure, the
      visited workers' owners plus ``t`` form the fundamental circuit,
      and the lowest-priority element of that circuit is evicted (if it
      is ``t`` itself, nothing changes);
    * freeing a worker (task removal or worker arrival) can pull at most
      **one** task into the basis: the highest-priority unmatched task
      with an alternating path to the freed worker
      (:func:`repro.kernels.dynamic.dynamic_reach`);
    * removing a matched worker re-runs insert-repair for the orphaned
      task against the remaining workers.

    With ``--max-degree K`` the DFS/BFS frontiers are bounded-degree, so
    each repair costs :math:`O(K)` per alternating step instead of
    re-solving the window (see ``docs/dynamic_matching.md``).

    Unlike the insert-only base class the state is ndarray-shaped under
    both kernel families, and the insert-only saturation pruning is
    disabled: a failed search must report its full visited set (the
    circuit), and deletions would invalidate the dead marks anyway.

    Args:
        graph: Universe bipartite graph (CSR snapshotted, as for
            :class:`IncrementalMatcher`).
        task_weights: Weight per universe task position.  A task whose
            weight is ``<= 0`` can be inserted but never matches,
            mirroring the batch backends' eligibility filter.
    """

    def __init__(
        self, graph: BipartiteGraph, task_weights: Sequence[float]
    ) -> None:  # noqa: D107 — documented on the class
        if len(task_weights) != graph.num_tasks:
            raise ValueError(
                f"expected {graph.num_tasks} task weights, got {len(task_weights)}"
            )
        self._graph = graph
        csr = graph.csr()
        num_tasks, num_workers = graph.num_tasks, graph.num_workers
        self._indptr = np.ascontiguousarray(csr.indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(csr.indices, dtype=np.int64)
        # Worker→task transpose of the CSR, for the reverse alternating
        # BFS.  The stable argsort keeps each worker's task row in
        # ascending task order, so the BFS visit order is deterministic
        # and identical across kernel families.
        edge_tasks = np.repeat(
            np.arange(num_tasks, dtype=np.int64), np.diff(self._indptr)
        )
        order = np.argsort(self._indices, kind="stable")
        self._windices = np.ascontiguousarray(edge_tasks[order])
        counts = np.bincount(self._indices, minlength=num_workers)
        self._windptr = np.zeros(num_workers + 1, dtype=np.int64)
        np.cumsum(counts, out=self._windptr[1:])

        self._weights = np.zeros(num_tasks, dtype=np.float64)
        self._initial_weights = np.asarray(task_weights, dtype=np.float64)
        self._match_task = np.full(num_tasks, UNMATCHED, dtype=np.int64)
        self._match_worker = np.full(num_workers, UNMATCHED, dtype=np.int64)
        self._task_live = np.zeros(num_tasks, dtype=np.uint8)
        self._task_eligible = np.zeros(num_tasks, dtype=np.uint8)
        self._worker_live = np.zeros(num_workers, dtype=np.uint8)
        # Stamped scratch + output buffers shared by both kernels.
        self._visited = np.zeros(num_workers, dtype=np.int64)
        self._task_visited = np.zeros(num_tasks, dtype=np.int64)
        self._stamp = 0
        self._path_tasks = np.empty(num_tasks + 1, dtype=np.int64)
        self._path_workers = np.empty(num_tasks + 1, dtype=np.int64)
        self._visited_out = np.empty(max(num_workers, 1), dtype=np.int64)
        self._queue = np.empty(max(num_workers, 1), dtype=np.int64)
        self._out_tasks = np.empty(max(num_tasks, 1), dtype=np.int64)
        self._grid_tasks: Optional[Dict[int, List[int]]] = None
        self._version = 0

    # ------------------------------------------------------------------
    # population views
    # ------------------------------------------------------------------
    def is_task_live(self, task_pos: int) -> bool:
        return bool(self._task_live[task_pos])

    def is_worker_live(self, worker_pos: int) -> bool:
        return bool(self._worker_live[worker_pos])

    def live_tasks(self) -> List[int]:
        return np.flatnonzero(self._task_live).tolist()

    def live_workers(self) -> List[int]:
        return np.flatnonzero(self._worker_live).tolist()

    def weight_of(self, task_pos: int) -> float:
        return float(self._weights[task_pos])

    def total_weight(self) -> float:
        """Sum of matched task weights, bit-identical to the batch solve.

        The floats are accumulated in priority order (weight descending,
        position ascending) — the same sequence the matroid backend adds
        as it grows the matching over ``eligible_order`` — so the result
        is bitwise equal to a fresh re-solve's total, not merely close.
        """
        matched = np.flatnonzero(self._match_task != UNMATCHED)
        order = matched[np.lexsort((matched, -self._weights[matched]))]
        total = 0.0
        for task_pos in order:
            total += float(self._weights[task_pos])
        return total

    # ------------------------------------------------------------------
    # dynamic operations
    # ------------------------------------------------------------------
    def insert_task(
        self,
        task_pos: int,
        weight: Optional[float] = None,
        preferred_worker: Optional[int] = None,
    ) -> bool:
        """Bring a universe task live, repairing the matching.

        Args:
            task_pos: Universe position; must not currently be live.
            weight: Weight for this lifetime of the task; defaults to the
                construction-time weight.  Non-positive weights insert
                the task as permanently unmatchable (live but
                ineligible), mirroring the batch eligibility filter.
            preferred_worker: Warm-start hint, consumed under exactly the
                matroid backend's rule — adjacent, live and free, i.e. a
                length-one augmenting path — so the matched set and total
                are unaffected by hints.

        Returns:
            Whether the task is matched after the call.
        """
        if self._task_live[task_pos]:
            raise ValueError(f"task position {task_pos} is already live")
        self._task_live[task_pos] = 1
        value = float(self._initial_weights[task_pos] if weight is None else weight)
        self._weights[task_pos] = value
        if value <= 0.0:
            self._task_eligible[task_pos] = 0
            return False
        self._task_eligible[task_pos] = 1
        if (
            preferred_worker is not None
            and 0 <= preferred_worker < self._match_worker.shape[0]
            and self._worker_live[preferred_worker]
            and self._match_worker[preferred_worker] == UNMATCHED
        ):
            lo, hi = int(self._indptr[task_pos]), int(self._indptr[task_pos + 1])
            row = self._indices[lo:hi]
            at = int(np.searchsorted(row, preferred_worker))
            if at < row.shape[0] and row[at] == preferred_worker:
                self._match_task[task_pos] = preferred_worker
                self._match_worker[preferred_worker] = task_pos
                self._version += 1
                return True
        return self._match_or_evict(task_pos)

    def insert_task_greedy(self, task_pos: int, weight: float) -> bool:
        """Degraded insert: first free adjacent worker, no repair search.

        The latency-bounded fallback of the service's SLO path: scan the
        task's CSR row once and pair it with the first live, free,
        adjacent worker — ``O(degree)`` with no augmenting DFS and no
        circuit eviction, so the cost is bounded however tangled the
        alternating structure is.  The matching stays *valid* (the
        structural reachability proofs behind later repairs do not depend
        on optimality) but the lex-max-basis invariant is deliberately
        abandoned from this call on: a greedy-inserted task may occupy a
        worker a higher-priority later task needed, exactly like the
        batch ``vgreedy`` backend's revenue gap.  Callers must not mix
        this with gates that assert the batch re-solve equivalence.

        Args:
            task_pos: Universe position; must not currently be live.
            weight: Weight for this lifetime of the task; non-positive
                inserts it live-but-ineligible like :meth:`insert_task`.

        Returns:
            Whether the task is matched after the call.
        """
        if self._task_live[task_pos]:
            raise ValueError(f"task position {task_pos} is already live")
        self._task_live[task_pos] = 1
        value = float(weight)
        self._weights[task_pos] = value
        if value <= 0.0:
            self._task_eligible[task_pos] = 0
            return False
        self._task_eligible[task_pos] = 1
        lo, hi = int(self._indptr[task_pos]), int(self._indptr[task_pos + 1])
        for worker_pos in self._indices[lo:hi]:
            candidate = int(worker_pos)
            if (
                self._worker_live[candidate]
                and self._match_worker[candidate] == UNMATCHED
            ):
                self._match_task[task_pos] = candidate
                self._match_worker[candidate] = task_pos
                self._version += 1
                return True
        return False

    def insert_worker(self, worker_pos: int) -> Optional[int]:
        """Bring a universe worker live; at most one task joins the basis.

        Returns:
            The task position absorbed into the matching, or ``None``.
        """
        if self._worker_live[worker_pos]:
            raise ValueError(f"worker position {worker_pos} is already live")
        self._worker_live[worker_pos] = 1
        return self._absorb_free_worker(worker_pos)

    def remove_task(self, task_pos: int) -> Optional[int]:
        """Remove a live task (departure or expiry), repairing the matching.

        Returns:
            The task position absorbed into the matching by the freed
            worker, or ``None`` (always ``None`` for unmatched tasks).
        """
        if not self._task_live[task_pos]:
            raise ValueError(f"task position {task_pos} is not live")
        self._task_live[task_pos] = 0
        self._task_eligible[task_pos] = 0
        worker_pos = int(self._match_task[task_pos])
        if worker_pos == UNMATCHED:
            # A non-basis element: the basis of the others is untouched.
            return None
        self._match_task[task_pos] = UNMATCHED
        self._match_worker[worker_pos] = UNMATCHED
        self._version += 1
        return self._absorb_free_worker(worker_pos)

    def remove_worker(self, worker_pos: int) -> bool:
        """Remove a live worker (departure), repairing the matching.

        Returns:
            Whether the worker's orphaned task (if any) was re-matched —
            ``True`` also when the worker was free (nothing to repair:
            the current basis was lex-maximal over a superset of the
            remaining workers and is still achievable without a free
            worker, hence still lex-maximal).
        """
        if not self._worker_live[worker_pos]:
            raise ValueError(f"worker position {worker_pos} is not live")
        self._worker_live[worker_pos] = 0
        task_pos = int(self._match_worker[worker_pos])
        if task_pos == UNMATCHED:
            return True
        self._match_worker[worker_pos] = UNMATCHED
        self._match_task[task_pos] = UNMATCHED
        self._version += 1
        # Re-run insert-repair for the orphan against the remaining
        # workers: either it re-augments (basis unchanged), or the
        # lowest-priority element of its circuit leaves the basis.
        return self._match_or_evict(task_pos)

    def commit_task(self, task_pos: int) -> int:
        """Retire a matched pair together (e.g. a served assignment).

        Removing a matched task *and* its worker in one step keeps the
        lex-max basis of the remaining population intact with no repair:
        the worker's capacity leaves with the task that consumed it.

        Returns:
            The worker position that served the task.
        """
        worker_pos = int(self._match_task[task_pos])
        if not self._task_live[task_pos] or worker_pos == UNMATCHED:
            raise ValueError(f"task position {task_pos} is not live and matched")
        self._task_live[task_pos] = 0
        self._task_eligible[task_pos] = 0
        self._worker_live[worker_pos] = 0
        self._match_task[task_pos] = UNMATCHED
        self._match_worker[worker_pos] = UNMATCHED
        self._version += 1
        return worker_pos

    # ------------------------------------------------------------------
    # repair internals
    # ------------------------------------------------------------------
    def _priority_key(self, task_pos: int) -> Tuple[float, int]:
        """Sort key under the basis priority order: smaller = higher."""
        return (-float(self._weights[task_pos]), int(task_pos))

    def _run_augment(self, start_task: int) -> int:
        self._stamp += 1
        return dynamic_augment(
            self._indptr,
            self._indices,
            self._match_worker,
            self._worker_live,
            self._visited,
            self._stamp,
            start_task,
            self._path_tasks,
            self._path_workers,
            self._visited_out,
        )

    def _apply_kernel_path(self, length: int) -> None:
        self._apply_path(
            (int(self._path_tasks[level]), int(self._path_workers[level]))
            for level in range(length)
        )

    def _match_or_evict(self, task_pos: int) -> bool:
        """Insert-repair: augment ``task_pos`` or evict its circuit minimum."""
        length = self._run_augment(task_pos)
        if length >= 0:
            self._apply_kernel_path(length)
            return True
        # Failed search: the visited workers are all matched, and their
        # owners together with ``task_pos`` are the fundamental circuit.
        n_visited = -length - 1
        evict = task_pos
        evict_key = self._priority_key(task_pos)
        for worker_pos in self._visited_out[:n_visited]:
            owner = int(self._match_worker[worker_pos])
            key = self._priority_key(owner)
            if key > evict_key:
                evict = owner
                evict_key = key
        if evict == task_pos:
            return False
        freed = int(self._match_task[evict])
        self._match_task[evict] = UNMATCHED
        self._match_worker[freed] = UNMATCHED
        # The evicted task's worker was visited by the failed search, so
        # an alternating path from ``task_pos`` to it exists and the
        # re-run must succeed.
        length = self._run_augment(task_pos)
        if length < 0:
            raise RuntimeError(
                "dynamic matcher invariant violated: re-augmentation after "
                f"evicting task {evict} failed for task {task_pos}"
            )
        self._apply_kernel_path(length)
        return True

    def _absorb_free_worker(self, worker_pos: int) -> Optional[int]:
        """Delete-repair: pull the best newly-augmentable task, if any.

        Exactly the unmatched eligible tasks with an alternating path to
        the freed worker become augmentable (any path to a *different*
        free worker would already have existed, contradicting the old
        basis's maximality), so the basis gains at most one element: the
        highest-priority of those candidates.
        """
        self._stamp += 1
        count = dynamic_reach(
            self._windptr,
            self._windices,
            self._match_task,
            self._task_eligible,
            self._task_visited,
            self._visited,
            self._stamp,
            worker_pos,
            self._queue,
            self._out_tasks,
        )
        if count == 0:
            return None
        best = int(self._out_tasks[0])
        best_key = self._priority_key(best)
        for task_pos in self._out_tasks[1:count]:
            key = self._priority_key(int(task_pos))
            if key < best_key:
                best = int(task_pos)
                best_key = key
        length = self._run_augment(best)
        if length < 0:
            raise RuntimeError(
                "dynamic matcher invariant violated: task "
                f"{best} reachable from freed worker {worker_pos} failed to augment"
            )
        self._apply_kernel_path(length)
        return best

    # ------------------------------------------------------------------
    # insert-only API is not meaningful here
    # ------------------------------------------------------------------
    def augment_task(
        self, task_pos: int, preferred_worker: Optional[int] = None
    ) -> bool:
        raise NotImplementedError(
            "DynamicMatcher tracks population explicitly; use insert_task"
        )

    def can_augment_grid(self, grid_index: int) -> bool:
        raise NotImplementedError("grid probes are an IncrementalMatcher API")

    def augment_grid(self, grid_index: int) -> Optional[int]:
        raise NotImplementedError("grid probes are an IncrementalMatcher API")


class LazyDynamicMatcher:
    """A :class:`DynamicMatcher` whose universe grows one arrival at a time.

    :class:`DynamicMatcher` needs the full universe graph up front — an
    epoch-wide adjacency pre-scan over every task and worker that will
    ever exist.  This matcher instead allocates positions lazily, in
    arrival order, and takes each task's candidate row (and optionally
    each worker's) from the caller at insertion time — typically straight
    from :class:`repro.spatial.index.IncrementalAdjacencyIndex`, so the
    cost of an arrival is its spatial neighbourhood, never the epoch.

    **Equivalence to the universe matcher.**  Ids are allocated in
    arrival order and never reused (task slots are recycled only via
    :meth:`clear_tasks`, where the transpose is off), so a task's row —
    the live adjacent workers at insertion, ascending, plus later
    arrivals tail-appended — is exactly the universe CSR row restricted
    to the workers live at some point of the task's life, in the same
    order.  The universe DFS skips non-live workers with no side effects,
    hence both matchers run identical traversals and evolve bit-identical
    matched state under the same operation sequence (fuzzed by
    ``tests/matching/test_lazy_dynamic.py``).  The restriction does not
    hold under a per-task degree cap (capping against the realised
    population is not capping against the universe), so capped callers
    must gate against a re-solve on the *realised* rows instead.

    Two maintenance modes:

    * ``maintain_transpose=True`` (default) — full churn support:
      worker arrivals absorb the best reachable unmatched task, matched
      task removals repair through the freed worker.  Task rows must then
      be appended for arriving workers (pass ``task_row`` to
      :meth:`new_worker`).
    * ``maintain_transpose=False`` — the warm-shard regime: tasks live
      exactly one epoch (bulk-dropped by :meth:`clear_tasks`), workers
      persist, and worker arrivals happen only while no eligible task is
      unmatched (enforced), so the reverse-BFS plane is never needed and
      its bookkeeping cost disappears.

    ``insert_only_pruning=True`` re-arms the insert-only saturation
    pruning of :class:`IncrementalMatcher`: a *failed* insertion marks
    every visited worker dead for the current era, and later searches
    skip them.  Sound only when insertions arrive in priority order
    (weight descending, then id) — then a failed arrival is always the
    lowest-priority element of its own circuit, so pruning never hides a
    needed eviction — and every mutation that could unsound the marks
    (worker arrival/departure, task removal, eviction, clear) bumps the
    era, invalidating them wholesale.  This is what makes a warm epoch
    cost what :func:`repro.matching.weighted.task_weighted_matching`'s
    batch solve costs, not more.

    State lives in plain Python lists under the fallback kernel family
    and in linked ndarrays under numba (kernels
    :func:`~repro.kernels.dynamic.dynamic_augment_lazy` /
    :func:`~repro.kernels.dynamic.dynamic_reach_lazy`); both families
    visit in the same order, so matched state stays bit-identical across
    families like every other matcher in this module.
    """

    def __init__(
        self,
        *,
        maintain_transpose: bool = True,
        insert_only_pruning: bool = False,
    ) -> None:  # noqa: D107 — documented on the class
        self._maintain_transpose = bool(maintain_transpose)
        self._pruning = bool(insert_only_pruning)
        self._era = 0
        self._stamp = 0
        self._num_matched = 0
        self._num_live_eligible = 0
        self._impl = numba_module() if use_numba() else None
        if self._impl is None:
            # List-backed state: markedly faster to index than ndarray
            # scalars in the pure-Python DFS/BFS (see IncrementalMatcher).
            self._weights: List[float] = []
            self._rows: List[List[int]] = []
            self._task_live = bytearray()
            self._task_eligible = bytearray()
            self._match_task: List[int] = []
            self._match_worker: List[int] = []
            self._worker_live = bytearray()
            self._visited: List[int] = []
            self._dead_era: List[int] = []
            self._task_visited: List[int] = []
            self._wrows: List[List[int]] = []
        else:
            self._task_cap = 16
            self._worker_cap = 16
            self._edge_cap = 64
            self._wedge_cap = 64
            self._num_tasks = 0
            self._num_workers = 0
            self._num_edges = 0
            self._num_wedges = 0
            self._weights_arr = np.zeros(self._task_cap, dtype=np.float64)
            self._fhead = np.full(self._task_cap, -1, dtype=np.int64)
            self._ftail = np.full(self._task_cap, -1, dtype=np.int64)
            self._task_live_arr = np.zeros(self._task_cap, dtype=np.uint8)
            self._task_eligible_arr = np.zeros(self._task_cap, dtype=np.uint8)
            self._match_task_arr = np.full(self._task_cap, UNMATCHED, dtype=np.int64)
            self._task_visited_arr = np.zeros(self._task_cap, dtype=np.int64)
            self._match_worker_arr = np.full(
                self._worker_cap, UNMATCHED, dtype=np.int64
            )
            self._worker_live_arr = np.zeros(self._worker_cap, dtype=np.uint8)
            self._visited_arr = np.zeros(self._worker_cap, dtype=np.int64)
            self._dead_era_arr = np.full(self._worker_cap, -1, dtype=np.int64)
            self._whead = np.full(self._worker_cap, -1, dtype=np.int64)
            self._wtail = np.full(self._worker_cap, -1, dtype=np.int64)
            self._fnext = np.empty(self._edge_cap, dtype=np.int64)
            self._fworker = np.empty(self._edge_cap, dtype=np.int64)
            self._wnext = np.empty(self._wedge_cap, dtype=np.int64)
            self._wtask = np.empty(self._wedge_cap, dtype=np.int64)
            self._path_tasks = np.empty(self._task_cap + 1, dtype=np.int64)
            self._path_workers = np.empty(self._task_cap + 1, dtype=np.int64)
            self._visited_out = np.empty(self._worker_cap, dtype=np.int64)
            self._queue = np.empty(self._worker_cap, dtype=np.int64)
            self._out_tasks = np.empty(self._task_cap, dtype=np.int64)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Task ids allocated so far (not the live count)."""
        return len(self._match_task) if self._impl is None else self._num_tasks

    @property
    def num_workers(self) -> int:
        """Worker ids allocated so far (not the live count)."""
        return len(self._match_worker) if self._impl is None else self._num_workers

    @property
    def num_matched(self) -> int:
        return self._num_matched

    def is_task_live(self, task_id: int) -> bool:
        live = self._task_live if self._impl is None else self._task_live_arr
        return bool(live[task_id])

    def is_worker_live(self, worker_id: int) -> bool:
        live = self._worker_live if self._impl is None else self._worker_live_arr
        return bool(live[worker_id])

    def weight_of(self, task_id: int) -> float:
        weights = self._weights if self._impl is None else self._weights_arr
        return float(weights[task_id])

    def worker_of(self, task_id: int) -> Optional[int]:
        match = self._match_task if self._impl is None else self._match_task_arr
        worker_id = int(match[task_id])
        return None if worker_id == UNMATCHED else worker_id

    def task_of(self, worker_id: int) -> Optional[int]:
        match = self._match_worker if self._impl is None else self._match_worker_arr
        task_id = int(match[worker_id])
        return None if task_id == UNMATCHED else task_id

    def matching(self) -> Dict[int, int]:
        """``{task_id: worker_id}`` in ascending task id order."""
        match = self._match_task if self._impl is None else self._match_task_arr
        result: Dict[int, int] = {}
        for task_id in range(self.num_tasks):
            worker_id = int(match[task_id])
            if worker_id != UNMATCHED:
                result[task_id] = worker_id
        return result

    def total_weight(self) -> float:
        """Matched weight, accumulated in priority order (bit-stable).

        The same float sequence as :meth:`DynamicMatcher.total_weight`
        and the batch matroid solve: weight descending, id ascending.
        """
        match = self._match_task if self._impl is None else self._match_task_arr
        weights = self._weights if self._impl is None else self._weights_arr
        matched = [
            task_id
            for task_id in range(self.num_tasks)
            if int(match[task_id]) != UNMATCHED
        ]
        matched.sort(key=lambda task_id: (-float(weights[task_id]), task_id))
        total = 0.0
        for task_id in matched:
            total += float(weights[task_id])
        return total

    # ------------------------------------------------------------------
    # growth (numba family)
    # ------------------------------------------------------------------
    def _grow_task_side(self, need: int) -> None:
        if need <= self._task_cap:
            return
        new_cap = max(need, 2 * self._task_cap)

        def grown(old: np.ndarray, fill) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=old.dtype) if fill is not None \
                else np.empty(new_cap, dtype=old.dtype)
            out[: old.shape[0]] = old
            return out

        self._weights_arr = grown(self._weights_arr, 0.0)
        self._fhead = grown(self._fhead, -1)
        self._ftail = grown(self._ftail, -1)
        self._task_live_arr = grown(self._task_live_arr, 0)
        self._task_eligible_arr = grown(self._task_eligible_arr, 0)
        self._match_task_arr = grown(self._match_task_arr, UNMATCHED)
        self._task_visited_arr = grown(self._task_visited_arr, 0)
        self._path_tasks = np.empty(new_cap + 1, dtype=np.int64)
        self._path_workers = np.empty(new_cap + 1, dtype=np.int64)
        self._out_tasks = np.empty(new_cap, dtype=np.int64)
        self._task_cap = new_cap

    def _grow_worker_side(self, need: int) -> None:
        if need <= self._worker_cap:
            return
        new_cap = max(need, 2 * self._worker_cap)

        def grown(old: np.ndarray, fill) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=old.dtype)
            out[: old.shape[0]] = old
            return out

        self._match_worker_arr = grown(self._match_worker_arr, UNMATCHED)
        self._worker_live_arr = grown(self._worker_live_arr, 0)
        self._visited_arr = grown(self._visited_arr, 0)
        self._dead_era_arr = grown(self._dead_era_arr, -1)
        self._whead = grown(self._whead, -1)
        self._wtail = grown(self._wtail, -1)
        self._visited_out = np.empty(new_cap, dtype=np.int64)
        self._queue = np.empty(new_cap, dtype=np.int64)
        self._worker_cap = new_cap

    def _grow_edges(self, need: int) -> None:
        if need <= self._edge_cap:
            return
        new_cap = max(need, 2 * self._edge_cap)
        for name in ("_fnext", "_fworker"):
            old = getattr(self, name)
            out = np.empty(new_cap, dtype=np.int64)
            out[: self._num_edges] = old[: self._num_edges]
            setattr(self, name, out)
        self._edge_cap = new_cap

    def _grow_wedges(self, need: int) -> None:
        if need <= self._wedge_cap:
            return
        new_cap = max(need, 2 * self._wedge_cap)
        for name in ("_wnext", "_wtask"):
            old = getattr(self, name)
            out = np.empty(new_cap, dtype=np.int64)
            out[: self._num_wedges] = old[: self._num_wedges]
            setattr(self, name, out)
        self._wedge_cap = new_cap

    # ------------------------------------------------------------------
    # search internals (family-specific)
    # ------------------------------------------------------------------
    def _try_augment(self, start: int) -> Optional[List[int]]:
        """Augment from ``start``; ``None`` on success (path applied), else
        the visited workers in visit order."""
        self._stamp += 1
        stamp = self._stamp
        if self._impl is not None:
            length = self._impl.dynamic_augment_lazy(
                self._fhead,
                self._fnext,
                self._fworker,
                self._match_worker_arr,
                self._worker_live_arr,
                self._dead_era_arr,
                self._era,
                self._visited_arr,
                stamp,
                start,
                self._path_tasks,
                self._path_workers,
                self._visited_out,
            )
            if length >= 0:
                for level in range(length):
                    task_id = int(self._path_tasks[level])
                    worker_id = int(self._path_workers[level])
                    self._match_task_arr[task_id] = worker_id
                    self._match_worker_arr[worker_id] = task_id
                return None
            return [int(w) for w in self._visited_out[: -length - 1]]
        # Inlined pure-Python DFS over list rows (same visit order as the
        # kernel twins; per-op wrapper dispatch costs more than the DFS).
        rows = self._rows
        match_task = self._match_task
        match_worker = self._match_worker
        worker_live = self._worker_live
        visited = self._visited
        dead_era = self._dead_era
        era = self._era
        tasks_stack = [start]
        iters = [0]
        chosen = [UNMATCHED]
        visited_seq: List[int] = []
        while tasks_stack:
            depth = len(tasks_stack) - 1
            row = rows[tasks_stack[depth]]
            pointer = iters[depth]
            end = len(row)
            descended = False
            while pointer < end:
                worker_id = row[pointer]
                pointer += 1
                if (
                    not worker_live[worker_id]
                    or visited[worker_id] == stamp
                    or dead_era[worker_id] == era
                ):
                    continue
                visited[worker_id] = stamp
                visited_seq.append(worker_id)
                iters[depth] = pointer
                chosen[depth] = worker_id
                owner = match_worker[worker_id]
                if owner == UNMATCHED:
                    for level in range(depth + 1):
                        task_id = tasks_stack[level]
                        match_task[task_id] = chosen[level]
                        match_worker[chosen[level]] = task_id
                    return None
                tasks_stack.append(owner)
                iters.append(0)
                chosen.append(UNMATCHED)
                descended = True
                break
            if not descended:
                tasks_stack.pop()
                iters.pop()
                chosen.pop()
        return visited_seq

    def _reach(self, worker_id: int) -> List[int]:
        """Unmatched eligible tasks alternating-reachable from ``worker_id``."""
        self._stamp += 1
        stamp = self._stamp
        if self._impl is not None:
            count = self._impl.dynamic_reach_lazy(
                self._whead,
                self._wnext,
                self._wtask,
                self._match_task_arr,
                self._task_eligible_arr,
                self._task_visited_arr,
                self._visited_arr,
                stamp,
                worker_id,
                self._queue,
                self._out_tasks,
            )
            return [int(t) for t in self._out_tasks[:count]]
        wrows = self._wrows
        match_task = self._match_task
        task_eligible = self._task_eligible
        task_visited = self._task_visited
        worker_visited = self._visited
        queue = [worker_id]
        worker_visited[worker_id] = stamp
        head = 0
        out: List[int] = []
        while head < len(queue):
            current = queue[head]
            head += 1
            for task_id in wrows[current]:
                if not task_eligible[task_id] or task_visited[task_id] == stamp:
                    continue
                task_visited[task_id] = stamp
                matched = match_task[task_id]
                if matched == UNMATCHED:
                    out.append(task_id)
                elif worker_visited[matched] != stamp:
                    worker_visited[matched] = stamp
                    queue.append(matched)
        return out

    def _append_forward_edge(self, task_id: int, worker_id: int) -> None:
        if self._impl is None:
            self._rows[task_id].append(worker_id)
            return
        self._grow_edges(self._num_edges + 1)
        edge = self._num_edges
        self._num_edges = edge + 1
        self._fworker[edge] = worker_id
        self._fnext[edge] = -1
        tail = int(self._ftail[task_id])
        if tail == -1:
            self._fhead[task_id] = edge
        else:
            self._fnext[tail] = edge
        self._ftail[task_id] = edge

    def _append_transpose_edge(self, worker_id: int, task_id: int) -> None:
        if self._impl is None:
            self._wrows[worker_id].append(task_id)
            return
        self._grow_wedges(self._num_wedges + 1)
        edge = self._num_wedges
        self._num_wedges = edge + 1
        self._wtask[edge] = task_id
        self._wnext[edge] = -1
        tail = int(self._wtail[worker_id])
        if tail == -1:
            self._whead[worker_id] = edge
        else:
            self._wnext[tail] = edge
        self._wtail[worker_id] = edge

    # ------------------------------------------------------------------
    # repair internals (shared across families)
    # ------------------------------------------------------------------
    def _priority_key(self, task_id: int) -> Tuple[float, int]:
        weights = self._weights if self._impl is None else self._weights_arr
        return (-float(weights[task_id]), task_id)

    def _match_or_evict(self, task_id: int) -> bool:
        visited_seq = self._try_augment(task_id)
        if visited_seq is None:
            self._num_matched += 1
            return True
        if self._pruning:
            # Priority-ordered insertion: the failed arrival is the
            # lowest-priority element of its own circuit, so nothing is
            # evicted and the visited (saturated) workers stay dead for
            # the rest of the era.
            dead_era = self._dead_era if self._impl is None else self._dead_era_arr
            era = self._era
            for worker_id in visited_seq:
                dead_era[worker_id] = era
            return False
        match_task = self._match_task if self._impl is None else self._match_task_arr
        match_worker = (
            self._match_worker if self._impl is None else self._match_worker_arr
        )
        evict = task_id
        evict_key = self._priority_key(task_id)
        for worker_id in visited_seq:
            owner = int(match_worker[worker_id])
            key = self._priority_key(owner)
            if key > evict_key:
                evict = owner
                evict_key = key
        if evict == task_id:
            return False
        freed = int(match_task[evict])
        match_task[evict] = UNMATCHED
        match_worker[freed] = UNMATCHED
        self._era += 1
        if self._try_augment(task_id) is not None:
            raise RuntimeError(
                "lazy dynamic matcher invariant violated: re-augmentation "
                f"after evicting task {evict} failed for task {task_id}"
            )
        return True

    def _absorb_free_worker(self, worker_id: int) -> Optional[int]:
        candidates = self._reach(worker_id)
        if not candidates:
            return None
        best = candidates[0]
        best_key = self._priority_key(best)
        for task_id in candidates[1:]:
            key = self._priority_key(task_id)
            if key < best_key:
                best = task_id
                best_key = key
        if self._try_augment(best) is not None:
            raise RuntimeError(
                "lazy dynamic matcher invariant violated: task "
                f"{best} reachable from freed worker {worker_id} failed to augment"
            )
        self._num_matched += 1
        return best

    # ------------------------------------------------------------------
    # dynamic operations
    # ------------------------------------------------------------------
    def new_worker(
        self, task_row: Optional[Sequence[int]] = None
    ) -> Tuple[int, Optional[int]]:
        """Allocate a worker id, bring it live, absorb at most one task.

        Args:
            task_row: The live task ids within the worker's range,
                ascending (e.g.
                :meth:`~repro.spatial.index.IncrementalAdjacencyIndex.worker_row`).
                Required whenever the transpose is maintained and any
                live task exists; the edges are appended to those tasks'
                rows (keeping them arrival-ordered) and to the worker's
                transpose row.

        Returns:
            ``(worker_id, absorbed_task_id_or_None)``.
        """
        if not self._maintain_transpose and self._num_live_eligible > self._num_matched:
            raise ValueError(
                "worker arrival with unmatched eligible tasks requires "
                "maintain_transpose=True (the absorb repair needs the "
                "reverse-BFS plane)"
            )
        self._era += 1
        if self._impl is None:
            worker_id = len(self._match_worker)
            self._match_worker.append(UNMATCHED)
            self._worker_live.append(1)
            self._visited.append(0)
            self._dead_era.append(-1)
            self._wrows.append([])
        else:
            worker_id = self._num_workers
            self._grow_worker_side(worker_id + 1)
            self._num_workers = worker_id + 1
            self._match_worker_arr[worker_id] = UNMATCHED
            self._worker_live_arr[worker_id] = 1
            self._visited_arr[worker_id] = 0
            self._dead_era_arr[worker_id] = -1
            self._whead[worker_id] = -1
            self._wtail[worker_id] = -1
        if task_row:
            for task_id in task_row:
                self._append_forward_edge(task_id, worker_id)
                if self._maintain_transpose:
                    self._append_transpose_edge(worker_id, task_id)
        absorbed = (
            self._absorb_free_worker(worker_id)
            if self._maintain_transpose and task_row
            else None
        )
        return worker_id, absorbed

    def new_task(
        self,
        row: Sequence[int],
        weight: float,
        preferred_worker: Optional[int] = None,
        greedy: bool = False,
    ) -> Tuple[int, bool]:
        """Allocate a task id, bring it live with ``row``, repair.

        Args:
            row: The live worker ids within range of the task, ascending
                (e.g. one row of
                :meth:`~repro.spatial.index.IncrementalAdjacencyIndex.task_rows`).
            weight: Weight for this task's lifetime; non-positive inserts
                it live but permanently ineligible, like
                :meth:`DynamicMatcher.insert_task`.
            preferred_worker: Warm-start hint, consumed under the matroid
                backend's rule (adjacent, live and free) so the matched
                set and total are unaffected.
            greedy: Degraded ``O(degree)`` insert — first free adjacent
                worker, no repair search, lex-max invariant abandoned
                (see :meth:`DynamicMatcher.insert_task_greedy`).

        Returns:
            ``(task_id, matched)``.
        """
        value = float(weight)
        if self._impl is None:
            task_id = len(self._match_task)
            self._weights.append(value)
            self._rows.append(list(row))
            self._task_live.append(1)
            self._task_eligible.append(0)
            self._match_task.append(UNMATCHED)
            self._task_visited.append(0)
        else:
            task_id = self._num_tasks
            self._grow_task_side(task_id + 1)
            self._num_tasks = task_id + 1
            self._weights_arr[task_id] = value
            self._task_live_arr[task_id] = 1
            self._task_eligible_arr[task_id] = 0
            self._match_task_arr[task_id] = UNMATCHED
            self._task_visited_arr[task_id] = 0
            self._fhead[task_id] = -1
            self._ftail[task_id] = -1
            count = len(row)
            if count:
                self._grow_edges(self._num_edges + count)
                first = self._num_edges
                self._num_edges = first + count
                self._fworker[first : first + count] = row
                self._fnext[first : first + count - 1] = np.arange(
                    first + 1, first + count, dtype=np.int64
                )
                self._fnext[first + count - 1] = -1
                self._fhead[task_id] = first
                self._ftail[task_id] = first + count - 1
        if value <= 0.0:
            return task_id, False
        if self._impl is None:
            self._task_eligible[task_id] = 1
        else:
            self._task_eligible_arr[task_id] = 1
        self._num_live_eligible += 1
        if self._maintain_transpose:
            for worker_id in row:
                self._append_transpose_edge(worker_id, task_id)
        if greedy:
            match_worker = (
                self._match_worker if self._impl is None else self._match_worker_arr
            )
            worker_live = (
                self._worker_live if self._impl is None else self._worker_live_arr
            )
            for worker_id in row:
                candidate = int(worker_id)
                if worker_live[candidate] and int(match_worker[candidate]) == UNMATCHED:
                    match_task = (
                        self._match_task if self._impl is None else self._match_task_arr
                    )
                    match_task[task_id] = candidate
                    match_worker[candidate] = task_id
                    self._num_matched += 1
                    return task_id, True
            return task_id, False
        if preferred_worker is not None and 0 <= preferred_worker < self.num_workers:
            match_worker = (
                self._match_worker if self._impl is None else self._match_worker_arr
            )
            worker_live = (
                self._worker_live if self._impl is None else self._worker_live_arr
            )
            if (
                worker_live[preferred_worker]
                and int(match_worker[preferred_worker]) == UNMATCHED
            ):
                # Adjacency check on the (ascending) realised row — a
                # live worker is adjacent iff it is in the lazy row.
                if self._impl is None:
                    task_row = self._rows[task_id]
                    at = bisect_left(task_row, preferred_worker)
                    adjacent = (
                        at < len(task_row) and task_row[at] == preferred_worker
                    )
                else:
                    adjacent = False
                    edge = int(self._fhead[task_id])
                    while edge != -1:
                        if int(self._fworker[edge]) == preferred_worker:
                            adjacent = True
                            break
                        edge = int(self._fnext[edge])
                if adjacent:
                    match_task = (
                        self._match_task if self._impl is None else self._match_task_arr
                    )
                    match_task[task_id] = preferred_worker
                    match_worker[preferred_worker] = task_id
                    self._num_matched += 1
                    return task_id, True
        return task_id, self._match_or_evict(task_id)

    def remove_task(self, task_id: int) -> Optional[int]:
        """Remove a live task; repairs through the freed worker if matched.

        Returns:
            The task id absorbed by the freed worker, or ``None``.
        """
        task_live = self._task_live if self._impl is None else self._task_live_arr
        if not task_live[task_id]:
            raise ValueError(f"task id {task_id} is not live")
        task_eligible = (
            self._task_eligible if self._impl is None else self._task_eligible_arr
        )
        match_task = self._match_task if self._impl is None else self._match_task_arr
        task_live[task_id] = 0
        if task_eligible[task_id]:
            task_eligible[task_id] = 0
            self._num_live_eligible -= 1
        self._era += 1
        worker_id = int(match_task[task_id])
        if worker_id == UNMATCHED:
            return None
        if not self._maintain_transpose:
            raise ValueError(
                "removing a matched task requires maintain_transpose=True "
                "(the freed worker's repair needs the reverse-BFS plane); "
                "use commit_task or clear_tasks"
            )
        match_worker = (
            self._match_worker if self._impl is None else self._match_worker_arr
        )
        match_task[task_id] = UNMATCHED
        match_worker[worker_id] = UNMATCHED
        self._num_matched -= 1
        return self._absorb_free_worker(worker_id)

    def remove_worker(self, worker_id: int) -> bool:
        """Remove a live worker; re-repairs its orphaned task if matched.

        Returns:
            Whether the orphan (if any) was re-matched; ``True`` for free
            workers.
        """
        worker_live = (
            self._worker_live if self._impl is None else self._worker_live_arr
        )
        if not worker_live[worker_id]:
            raise ValueError(f"worker id {worker_id} is not live")
        worker_live[worker_id] = 0
        self._era += 1
        match_worker = (
            self._match_worker if self._impl is None else self._match_worker_arr
        )
        task_id = int(match_worker[worker_id])
        if task_id == UNMATCHED:
            return True
        match_task = self._match_task if self._impl is None else self._match_task_arr
        match_worker[worker_id] = UNMATCHED
        match_task[task_id] = UNMATCHED
        self._num_matched -= 1
        return self._match_or_evict(task_id)

    def commit_task(self, task_id: int) -> int:
        """Retire a matched pair together (no repair needed).

        Returns:
            The worker id that served the task.
        """
        task_live = self._task_live if self._impl is None else self._task_live_arr
        match_task = self._match_task if self._impl is None else self._match_task_arr
        worker_id = int(match_task[task_id])
        if not task_live[task_id] or worker_id == UNMATCHED:
            raise ValueError(f"task id {task_id} is not live and matched")
        task_eligible = (
            self._task_eligible if self._impl is None else self._task_eligible_arr
        )
        match_worker = (
            self._match_worker if self._impl is None else self._match_worker_arr
        )
        worker_live = (
            self._worker_live if self._impl is None else self._worker_live_arr
        )
        task_live[task_id] = 0
        task_eligible[task_id] = 0
        worker_live[worker_id] = 0
        match_task[task_id] = UNMATCHED
        match_worker[worker_id] = UNMATCHED
        self._num_matched -= 1
        self._num_live_eligible -= 1
        self._era += 1
        return worker_id

    def clear_tasks(self) -> None:
        """Drop the whole task side at once (warm-shard epoch boundary).

        Only valid with ``maintain_transpose=False``: transpose rows
        reference task ids, which this call recycles.  Worker state (ids,
        liveness, matches cleared) persists.
        """
        if self._maintain_transpose:
            raise ValueError("clear_tasks requires maintain_transpose=False")
        match_worker = (
            self._match_worker if self._impl is None else self._match_worker_arr
        )
        if self._impl is None:
            for worker_id in self._match_task:
                if worker_id != UNMATCHED:
                    match_worker[worker_id] = UNMATCHED
            self._weights = []
            self._rows = []
            self._task_live = bytearray()
            self._task_eligible = bytearray()
            self._match_task = []
            self._task_visited = []
        else:
            for task_id in range(self._num_tasks):
                worker_id = int(self._match_task_arr[task_id])
                if worker_id != UNMATCHED:
                    match_worker[worker_id] = UNMATCHED
            self._num_tasks = 0
            self._num_edges = 0
        self._num_matched = 0
        self._num_live_eligible = 0
        self._era += 1


__all__ = ["IncrementalMatcher", "DynamicMatcher", "LazyDynamicMatcher"]
