"""Incremental augmenting-path matcher (the MAPS pre-matching).

Algorithm 2 maintains a *pre-matching* ``M'``: every time the planner wants
to raise the supply ``n^{tg}`` of a grid by one, it must check that an
additional, not-yet-assigned task of that grid can actually be matched to a
free worker (possibly after re-routing existing assignments along an
augmenting path).  If no augmenting path exists the grid's marginal gain is
forced to zero and the grid drops out of the supply competition.

:class:`IncrementalMatcher` wraps that logic: it owns the matching state,
answers "can grid g absorb one more worker?" queries by searching an
augmenting path from any unmatched task of the grid, and commits the path
when the planner admits the supply increase.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kernels.dispatch import numba_module, use_numba
from repro.matching.bipartite import BipartiteGraph
from repro.matching.maximum_matching import UNMATCHED


class IncrementalMatcher:
    """Maintains a matching of the task–worker graph under augmentation.

    The matcher never removes matched pairs; it only grows the matching
    one augmenting path at a time, which mirrors lines 10 and 16 of
    Algorithm 2.

    The augmenting search walks the graph's cached CSR view
    (:meth:`BipartiteGraph.csr`) — the same arrays the batch matching
    backends consume — so one period's CSR is built once and shared by
    the match stage, the halo reconciliation and this matcher, instead of
    re-walking (or re-materialising) list-of-list adjacency per consumer.
    The CSR is snapshotted at construction: the graph must not gain edges
    while the matcher is alive.

    Args:
        graph: Structural bipartite graph of the current period.
        grid_tasks: Optional pre-computed ``{grid_index: task positions}``
            buckets (e.g. :attr:`PeriodInstance.tasks_by_grid`); passing
            them avoids re-walking every task's grid annotation here.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        grid_tasks: Optional[Mapping[int, Sequence[int]]] = None,
    ) -> None:
        self._graph = graph
        csr = graph.csr()
        # The kernel family is fixed at construction (a matcher lives for
        # one period or window).  The compiled path keeps the matching
        # state in the int64 ndarrays the numba kernel walks in place;
        # the Python path keeps plain lists, which the interpreted DFS
        # indexes measurably faster than ndarrays.
        self._impl = numba_module() if use_numba() else None
        if self._impl is not None:
            self._indptr = csr.indptr
            self._indices = csr.indices
            self._match_task = np.full(graph.num_tasks, UNMATCHED, dtype=np.int64)
            self._match_worker = np.full(graph.num_workers, UNMATCHED, dtype=np.int64)
            # Reusable output buffers for the kernel: an augmenting path
            # visits each task at most once, bounding its length.
            self._path_tasks = np.empty(graph.num_tasks + 1, dtype=np.int64)
            self._path_workers = np.empty(graph.num_tasks + 1, dtype=np.int64)
        else:
            self._indptr = csr.indptr_list
            self._indices = csr.indices_list
            self._match_task = [UNMATCHED] * graph.num_tasks
            self._match_worker = [UNMATCHED] * graph.num_workers
        # Task positions grouped by grid; taken from the caller when
        # available, otherwise computed lazily on first use.
        self._grid_tasks: Optional[Dict[int, List[int]]] = (
            {g: list(positions) for g, positions in grid_tasks.items()}
            if grid_tasks is not None
            else None
        )
        # Stamp-based visited array for the iterative augmenting-path
        # search plus saturation pruning: when a search fails, every
        # worker it visited lies in a frozen alternating component (all
        # matched, owner neighbourhoods closed within the component), so
        # no later augmenting path can pass through them — the matching
        # only ever grows, which keeps the marking sound.  Mirrors the
        # batch matroid backend in :mod:`repro.matching.weighted`.
        if self._impl is not None:
            self._visited = np.zeros(graph.num_workers, dtype=np.int64)
            self._dead = np.zeros(graph.num_workers, dtype=np.uint8)
        else:
            self._visited = [0] * graph.num_workers
            self._dead = bytearray(graph.num_workers)
        self._stamp = 0
        # Check-then-commit cache: the MAPS planner probes
        # ``can_augment_grid(g)`` when proposing a supply increase and
        # commits with ``augment_grid(g)`` only when the proposal wins the
        # heap.  The matching only changes through ``_apply_path``, so a
        # path found at version ``v`` is still augmenting at version ``v``
        # — committing it verbatim skips the second search.
        self._version = 0
        self._cached_grid: Optional[int] = None
        self._cached_version = -1
        self._cached_result: Optional[Tuple[int, List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        return self._graph

    @property
    def size(self) -> int:
        """Number of matched pairs."""
        return sum(1 for worker in self._match_task if worker != UNMATCHED)

    def matching(self) -> Dict[int, int]:
        """Current matching as ``{task_position: worker_position}``."""
        return {
            task_pos: int(worker_pos)
            for task_pos, worker_pos in enumerate(self._match_task)
            if worker_pos != UNMATCHED
        }

    def worker_of(self, task_pos: int) -> Optional[int]:
        worker = self._match_task[task_pos]
        return None if worker == UNMATCHED else int(worker)

    def task_of(self, worker_pos: int) -> Optional[int]:
        task = self._match_worker[worker_pos]
        return None if task == UNMATCHED else int(task)

    def is_task_matched(self, task_pos: int) -> bool:
        return self._match_task[task_pos] != UNMATCHED

    def matched_tasks_in_grid(self, grid_index: int) -> List[int]:
        return [
            pos for pos in self._tasks_of_grid(grid_index) if self.is_task_matched(pos)
        ]

    def unmatched_tasks_in_grid(self, grid_index: int) -> List[int]:
        return [
            pos
            for pos in self._tasks_of_grid(grid_index)
            if not self.is_task_matched(pos)
        ]

    # ------------------------------------------------------------------
    # augmentation
    # ------------------------------------------------------------------
    def can_augment_grid(self, grid_index: int) -> bool:
        """Whether some unmatched task of the grid admits an augmenting path.

        Does not modify the matching.  The found path (or its absence) is
        cached and reused by :meth:`augment_grid` when the matching has
        not changed in between — the planner's common probe-then-commit
        sequence then costs one search instead of two.
        """
        result = self._grid_augmenting_path_cached(grid_index)
        return result is not None

    def augment_grid(self, grid_index: int) -> Optional[int]:
        """Admit one more supply unit for the grid, if feasible.

        Searches an augmenting path starting from any unmatched task of the
        grid and, if found, applies it.

        Returns:
            The task position that became matched, or ``None`` if no
            augmenting path exists (the grid is saturated).
        """
        result = self._grid_augmenting_path_cached(grid_index)
        if result is None:
            return None
        start_task, path = result
        self._apply_path(path)
        return start_task

    def _grid_augmenting_path_cached(
        self, grid_index: int
    ) -> Optional[Tuple[int, List[Tuple[int, int]]]]:
        if self._cached_grid == grid_index and self._cached_version == self._version:
            return self._cached_result
        result = self._find_grid_augmenting_path(grid_index)
        self._cached_grid = grid_index
        self._cached_version = self._version
        self._cached_result = result
        return result

    def augment_task(
        self, task_pos: int, preferred_worker: Optional[int] = None
    ) -> bool:
        """Try to match a specific task, optionally via a warm-start hint.

        Args:
            task_pos: The task to match (no-op if already matched).
            preferred_worker: Optional worker-position hint (e.g. from the
                previous window's matching).  Consumed only when the hint
                is adjacent and still free — a length-one augmenting path
                — so the matched task set (and hence any task-weighted
                total) is exactly what the hint-free search would have
                produced; otherwise the normal augmenting DFS runs.

        Returns:
            Whether the task is matched after the call.
        """
        if self.is_task_matched(task_pos):
            return True
        if (
            preferred_worker is not None
            and 0 <= preferred_worker < len(self._match_worker)
            and self._match_worker[preferred_worker] == UNMATCHED
        ):
            lo, hi = self._indptr[task_pos], self._indptr[task_pos + 1]
            at = bisect_left(self._indices, preferred_worker, lo, hi)
            if at < hi and self._indices[at] == preferred_worker:
                self._match_task[task_pos] = preferred_worker
                self._match_worker[preferred_worker] = task_pos
                self._version += 1
                return True
        path = self._find_augmenting_path(task_pos)
        if path is None:
            return False
        self._apply_path(path)
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _tasks_of_grid(self, grid_index: int) -> List[int]:
        if self._grid_tasks is None:
            self._grid_tasks = {}
            for pos, task in enumerate(self._graph.tasks):
                if task.grid_index is None:
                    raise ValueError(
                        f"task {task.task_id} has no grid index; annotate tasks first"
                    )
                self._grid_tasks.setdefault(task.grid_index, []).append(pos)
        return self._grid_tasks.get(grid_index, [])

    def _find_grid_augmenting_path(
        self, grid_index: int
    ) -> Optional[Tuple[int, List[Tuple[int, int]]]]:
        for task_pos in self._tasks_of_grid(grid_index):
            if self.is_task_matched(task_pos):
                continue
            path = self._find_augmenting_path(task_pos)
            if path is not None:
                return task_pos, path
        return None

    def _find_augmenting_path(self, start_task: int) -> Optional[List[Tuple[int, int]]]:
        """Iterative DFS for an augmenting path.

        Returns the (task, worker) pairs to set, deepest first, so that
        applying every pair (in order) flips matched/unmatched edges
        correctly.  Visits workers in exactly the order the original
        recursive search did (hence the same path), but walks an explicit
        stack: city-scale dispatch windows produce augmenting chains far
        deeper than the interpreter's recursion limit, which used to blow
        the stack with ``RecursionError``.  Failed searches additionally
        mark every visited worker as saturated (see ``__init__``), which
        keeps repeated infeasible queries — e.g. a saturated grid probed
        every period — near-linear instead of quadratic.

        Under the numba kernel family the search runs as one compiled
        call against the ndarray state (same visiting order, hence the
        same path — fuzzed by ``tests/matching/test_kernel_parity.py``).
        """
        if self._impl is not None:
            self._stamp += 1
            length = self._impl.incremental_augment(
                self._indptr,
                self._indices,
                self._match_worker,
                self._visited,
                self._dead,
                self._stamp,
                start_task,
                self._path_tasks,
                self._path_workers,
            )
            if length < 0:
                return None
            return [
                (int(self._path_tasks[level]), int(self._path_workers[level]))
                for level in range(length)
            ]
        indptr = self._indptr
        indices = self._indices
        match_worker = self._match_worker
        visited = self._visited
        dead = self._dead
        self._stamp += 1
        stamp = self._stamp

        tasks_stack = [start_task]
        iters = [indptr[start_task]]
        chosen = [UNMATCHED]
        touched: List[int] = []
        while tasks_stack:
            depth = len(tasks_stack) - 1
            task_pos = tasks_stack[depth]
            end = indptr[task_pos + 1]
            pointer = iters[depth]
            descended = False
            while pointer < end:
                worker_pos = indices[pointer]
                pointer += 1
                if dead[worker_pos] or visited[worker_pos] == stamp:
                    continue
                visited[worker_pos] = stamp
                touched.append(worker_pos)
                iters[depth] = pointer
                chosen[depth] = worker_pos
                owner = match_worker[worker_pos]
                if owner == UNMATCHED:
                    # Deepest pair first, matching the recursive unwind.
                    return [
                        (tasks_stack[level], chosen[level])
                        for level in range(depth, -1, -1)
                    ]
                tasks_stack.append(owner)
                iters.append(indptr[owner])
                chosen.append(UNMATCHED)
                descended = True
                break
            if not descended:
                tasks_stack.pop()
                iters.pop()
                chosen.pop()
        for worker_pos in touched:
            dead[worker_pos] = 1
        return None

    def _apply_path(self, path: Iterable[Tuple[int, int]]) -> None:
        for task_pos, worker_pos in path:
            self._match_task[task_pos] = worker_pos
            self._match_worker[worker_pos] = task_pos
        self._version += 1

    # ------------------------------------------------------------------
    # validation helpers (used by tests)
    # ------------------------------------------------------------------
    def is_valid_matching(self) -> bool:
        """Check mutual consistency and edge feasibility of the matching."""
        for task_pos, worker_pos in enumerate(self._match_task):
            if worker_pos == UNMATCHED:
                continue
            if self._match_worker[worker_pos] != task_pos:
                return False
            if worker_pos not in self._graph.task_neighbors[task_pos]:
                return False
        seen_workers: Set[int] = set()
        for worker_pos in self._match_task:
            if worker_pos == UNMATCHED:
                continue
            if worker_pos in seen_workers:
                return False
            seen_workers.add(worker_pos)
        return True


__all__ = ["IncrementalMatcher"]
