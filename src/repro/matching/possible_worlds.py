"""Possible-world semantics for the expected total revenue (Definition 6).

Each task independently accepts its offered price with probability
``S^g(p_r)``.  A *possible world* is one accept/reject outcome for every
task; its probability is the product of the per-task probabilities and its
revenue is the weight of a maximum-weight matching between the accepting
tasks and the workers (Definition 5).  The expected total revenue is the
probability-weighted sum over all ``2^{|R|}`` possible worlds — exactly the
quantity tabulated in Fig. 2 for the running example.

Enumeration is exponential, so :func:`exact_expected_revenue` is intended
for small instances (tests, the running example, the ablation study);
:func:`monte_carlo_expected_revenue` provides an unbiased estimator for
larger instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.matching.bipartite import BipartiteGraph
from repro.matching.weighted import task_weighted_matching
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class PossibleWorld:
    """One accept/reject outcome for every task.

    Attributes:
        accepted: Tuple of booleans, one per task position.
        probability: Sampling probability of this world.
        revenue: Maximum-weight matching revenue of this world.
        matching: The maximising assignment ``{task_position: worker_position}``.
    """

    accepted: Tuple[bool, ...]
    probability: float
    revenue: float
    matching: Tuple[Tuple[int, int], ...]


def _task_weights(tasks, prices: Sequence[float]) -> List[float]:
    if len(prices) != len(tasks):
        raise ValueError("one price per task is required")
    return [task.distance * float(price) for task, price in zip(tasks, prices)]


def enumerate_possible_worlds(
    graph: BipartiteGraph,
    prices: Sequence[float],
    acceptance_probabilities: Sequence[float],
) -> List[PossibleWorld]:
    """Enumerate all ``2^{|R|}`` possible worlds of the priced graph.

    Args:
        graph: The structural task–worker graph.
        prices: Offered unit price per task position.
        acceptance_probabilities: ``S^g(p_r)`` per task position.

    Returns:
        All possible worlds with their probabilities, revenues and optimal
        matchings.  The probabilities sum to 1 (up to float rounding).

    Raises:
        ValueError: if the instance has more than 20 tasks (the
            enumeration would exceed a million worlds) or the inputs are
            inconsistent.
    """
    num_tasks = graph.num_tasks
    if num_tasks > 20:
        raise ValueError(
            "exact enumeration is limited to 20 tasks; "
            "use monte_carlo_expected_revenue for larger instances"
        )
    if len(prices) != num_tasks or len(acceptance_probabilities) != num_tasks:
        raise ValueError("prices and acceptance_probabilities must match the task count")
    for probability in acceptance_probabilities:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("acceptance probabilities must lie in [0, 1]")

    weights = _task_weights(graph.tasks, prices)
    worlds: List[PossibleWorld] = []
    for outcome in product((True, False), repeat=num_tasks):
        probability = 1.0
        for accepted, s in zip(outcome, acceptance_probabilities):
            probability *= s if accepted else (1.0 - s)
        accepted_positions = [pos for pos, accepted in enumerate(outcome) if accepted]
        matching, revenue = task_weighted_matching(graph, weights, accepted_positions)
        worlds.append(
            PossibleWorld(
                accepted=outcome,
                probability=probability,
                revenue=revenue,
                matching=tuple(sorted(matching.items())),
            )
        )
    return worlds


def exact_expected_revenue(
    graph: BipartiteGraph,
    prices: Sequence[float],
    acceptance_probabilities: Sequence[float],
) -> float:
    """Exact expected total revenue ``E[U(B^t) | P^t]`` by enumeration."""
    worlds = enumerate_possible_worlds(graph, prices, acceptance_probabilities)
    return float(sum(world.probability * world.revenue for world in worlds))


def monte_carlo_expected_revenue(
    graph: BipartiteGraph,
    prices: Sequence[float],
    acceptance_probabilities: Sequence[float],
    num_samples: int = 1000,
    rng: Optional[RandomState] = None,
) -> Tuple[float, float]:
    """Monte-Carlo estimate of the expected total revenue.

    Args:
        graph: The structural task–worker graph.
        prices: Offered unit price per task position.
        acceptance_probabilities: ``S^g(p_r)`` per task position.
        num_samples: Number of sampled possible worlds.
        rng: Random generator (seeded by default for reproducibility).

    Returns:
        ``(estimate, standard_error)``.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    num_tasks = graph.num_tasks
    if len(prices) != num_tasks or len(acceptance_probabilities) != num_tasks:
        raise ValueError("prices and acceptance_probabilities must match the task count")
    generator = as_generator(rng if rng is not None else 0)
    weights = _task_weights(graph.tasks, prices)
    probabilities = np.asarray(acceptance_probabilities, dtype=float)
    samples = np.empty(num_samples, dtype=float)
    for i in range(num_samples):
        accepted = generator.random(num_tasks) < probabilities
        accepted_positions = np.flatnonzero(accepted).tolist()
        _, revenue = task_weighted_matching(graph, weights, accepted_positions)
        samples[i] = revenue
    estimate = float(samples.mean())
    standard_error = float(samples.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else 0.0
    return estimate, standard_error


def optimal_prices_by_enumeration(
    graph: BipartiteGraph,
    candidate_prices: Sequence[float],
    acceptance_ratio_of: Callable[[int, float], float],
) -> Tuple[List[float], float]:
    """Brute-force the GDP optimum over a finite candidate price set.

    Every task may take any price in ``candidate_prices``; all
    ``|P|^{|R|}`` combinations are evaluated with exact possible-world
    enumeration.  Only usable for very small instances (the running
    example has 3 tasks and 3 candidate prices = 27 combinations), but it
    gives tests a ground-truth optimum to compare MAPS against.

    Args:
        graph: Structural graph.
        candidate_prices: Finite set of allowed unit prices.
        acceptance_ratio_of: Callable ``(task_position, price) -> S(p)``.

    Returns:
        ``(best_prices, best_expected_revenue)``.
    """
    num_tasks = graph.num_tasks
    if num_tasks == 0:
        return [], 0.0
    if len(candidate_prices) ** num_tasks > 200_000:
        raise ValueError("price enumeration too large; reduce tasks or candidates")
    best_prices: Optional[List[float]] = None
    best_value = -np.inf
    for combo in product(candidate_prices, repeat=num_tasks):
        probabilities = [
            acceptance_ratio_of(pos, price) for pos, price in enumerate(combo)
        ]
        value = exact_expected_revenue(graph, list(combo), probabilities)
        if value > best_value + 1e-12:
            best_value = value
            best_prices = list(combo)
    assert best_prices is not None
    return best_prices, float(best_value)


__all__ = [
    "PossibleWorld",
    "enumerate_possible_worlds",
    "exact_expected_revenue",
    "monte_carlo_expected_revenue",
    "optimal_prices_by_enumeration",
]
