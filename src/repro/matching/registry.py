"""Matching backend registry used by :func:`max_weight_matching`.

Mirrors :mod:`repro.pricing.registry`: the simulation engine and the
ablation benchmarks select the realized-matching algorithm by name
("matroid", "hungarian", ...), and every backend registers itself here so
the dispatcher, the CLI help strings and the cross-backend tests share a
single source of truth.  A backend is a callable

    backend(graph, task_weights, allowed_tasks) -> (task_to_worker, total)

where ``graph`` is a :class:`~repro.matching.bipartite.BipartiteGraph`
(backends consume its CSR view via :meth:`BipartiteGraph.csr`),
``task_weights`` is a per-task-position weight sequence and
``allowed_tasks`` optionally restricts the eligible task positions.
Backends may additionally accept a fourth ``warm_start`` mapping of
``{task_position: worker_position}`` hints; the dispatcher only forwards
it when the caller actually supplied hints, so three-argument custom
backends keep working for warm-start-free calls.

Registering a custom backend is one decorator (re-registering a name
overwrites it, so tests can swap in instrumented variants)::

    @register_backend("mine")
    def my_backend(graph, task_weights, allowed_tasks=None):
        ...
        return task_to_worker, total_weight

Runnable doctest (also exercised by the CI docs job; importing
:mod:`repro.matching.weighted` is what registers the shipped backends):

>>> import repro.matching.weighted
>>> from repro.matching.registry import available_backends, get_backend
>>> available_backends()
['dynamic', 'greedy', 'hungarian', 'matroid', 'scipy', 'vgreedy']
>>> get_backend("MATROID") is get_backend("matroid")  # case-insensitive
True
>>> get_backend("simplex")
Traceback (most recent call last):
    ...
ValueError: unknown matching backend 'simplex'; registered backends: \
dynamic, greedy, hungarian, matroid, scipy, vgreedy
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

# Kernel-mode controls re-exported here because the registry is where
# callers already select *which algorithm* runs; the kernel mode selects
# *which implementation family* (numba-compiled vs pure-Python) executes
# that algorithm's inner loops.  See :mod:`repro.kernels`.
from repro.kernels.dispatch import (
    KERNEL_MODES,
    active_kernel_mode,
    kernel_mode,
    set_kernel_mode,
)

MatchingResult = Tuple[Dict[int, int], float]
#: Signature every registered backend implements.
MatchingBackend = Callable[..., MatchingResult]

_BACKENDS: Dict[str, MatchingBackend] = {}


def register_backend(name: str) -> Callable[[MatchingBackend], MatchingBackend]:
    """Class/function decorator registering a matching backend under ``name``.

    Re-registering a name overwrites the previous backend, which lets tests
    and experiments swap in instrumented variants.
    """

    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")

    def decorator(backend: MatchingBackend) -> MatchingBackend:
        _BACKENDS[key] = backend
        return backend

    return decorator


def get_backend(name: str) -> MatchingBackend:
    """Resolve a backend by (case-insensitive) name.

    Raises:
        ValueError: for unknown names; the message lists the registered
            backends so callers can self-correct.
    """
    key = str(name).strip().lower()
    if key not in _BACKENDS:
        raise ValueError(
            f"unknown matching backend {name!r}; "
            f"registered backends: {', '.join(available_backends())}"
        )
    return _BACKENDS[key]


def available_backends() -> List[str]:
    """Names of all registered backends, sorted alphabetically."""
    return sorted(_BACKENDS)


__all__ = [
    "MatchingBackend",
    "MatchingResult",
    "register_backend",
    "get_backend",
    "available_backends",
    "KERNEL_MODES",
    "kernel_mode",
    "set_kernel_mode",
    "active_kernel_mode",
]
