"""Maximum-cardinality bipartite matching (Hopcroft–Karp).

MAPS only needs *incremental* augmenting paths (one new supply unit at a
time), but tests and the ablation study use a from-scratch maximum
cardinality matching as a reference: after MAPS finishes allocating
supply, the size of its pre-matching must equal the size of a maximum
matching restricted to the tasks it chose to serve.

The implementation is the standard Hopcroft–Karp algorithm with BFS
layering and DFS augmentation, running in ``O(E * sqrt(V))``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.matching.bipartite import BipartiteGraph

#: Sentinel for "unmatched" in the matching arrays.
UNMATCHED = -1


def hopcroft_karp_matching(
    graph: BipartiteGraph,
    allowed_tasks: Optional[Sequence[int]] = None,
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Compute a maximum-cardinality matching.

    Args:
        graph: The task–worker bipartite graph.
        allowed_tasks: Optional restriction; only these task positions may
            be matched (used to compute matchings over accepted tasks
            only).  ``None`` allows every task.

    Returns:
        A pair ``(task_to_worker, worker_to_task)`` of dictionaries mapping
        matched task positions to worker positions and vice versa.
    """
    num_tasks = graph.num_tasks
    num_workers = graph.num_workers
    if allowed_tasks is None:
        allowed = list(range(num_tasks))
    else:
        allowed = sorted(set(allowed_tasks))
        for pos in allowed:
            if not 0 <= pos < num_tasks:
                raise IndexError(f"task position {pos} out of range")

    match_task: List[int] = [UNMATCHED] * num_tasks
    match_worker: List[int] = [UNMATCHED] * num_workers
    INF = float("inf")
    distance: List[float] = [INF] * num_tasks

    def bfs() -> bool:
        queue: deque = deque()
        for task_pos in allowed:
            if match_task[task_pos] == UNMATCHED:
                distance[task_pos] = 0.0
                queue.append(task_pos)
            else:
                distance[task_pos] = INF
        found_augmenting = False
        while queue:
            task_pos = queue.popleft()
            for worker_pos in graph.task_neighbors[task_pos]:
                paired = match_worker[worker_pos]
                if paired == UNMATCHED:
                    found_augmenting = True
                elif distance[paired] == INF:
                    distance[paired] = distance[task_pos] + 1.0
                    queue.append(paired)
        return found_augmenting

    def dfs(task_pos: int) -> bool:
        for worker_pos in graph.task_neighbors[task_pos]:
            paired = match_worker[worker_pos]
            if paired == UNMATCHED or (
                distance[paired] == distance[task_pos] + 1.0 and dfs(paired)
            ):
                match_task[task_pos] = worker_pos
                match_worker[worker_pos] = task_pos
                return True
        distance[task_pos] = INF
        return False

    while bfs():
        for task_pos in allowed:
            if match_task[task_pos] == UNMATCHED:
                dfs(task_pos)

    task_to_worker = {
        task_pos: worker_pos
        for task_pos, worker_pos in enumerate(match_task)
        if worker_pos != UNMATCHED
    }
    worker_to_task = {
        worker_pos: task_pos
        for worker_pos, task_pos in enumerate(match_worker)
        if task_pos != UNMATCHED
    }
    return task_to_worker, worker_to_task


def maximum_matching_size(
    graph: BipartiteGraph, allowed_tasks: Optional[Sequence[int]] = None
) -> int:
    """Size of a maximum-cardinality matching (convenience wrapper)."""
    task_to_worker, _ = hopcroft_karp_matching(graph, allowed_tasks)
    return len(task_to_worker)


__all__ = ["hopcroft_karp_matching", "maximum_matching_size", "UNMATCHED"]
