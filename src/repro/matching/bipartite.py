"""Task–worker bipartite graph under the range constraint.

The probabilistic bipartite graph of Definition 5 has tasks on the left,
workers on the right, and an edge ``(r, w)`` whenever task ``r``'s origin
lies within worker ``w``'s service radius.  The instantiation of the graph
(which tasks accepted their price) happens later; this module only deals
with the structural graph, which is what MAPS needs for its pre-matching
and what the simulator needs to compute realized revenue.

Edges can be built either by a brute-force scan (fine for tests and small
instances) or through the grid spatial index (the default for the
simulator, which needs to scale to hundreds of thousands of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.market.entities import Task, Worker
from repro.spatial.geometry import DistanceMetric, resolve_metric
from repro.spatial.grid import Grid
from repro.spatial.index import GridSpatialIndex


# eq=False: ndarray fields would make a generated __eq__ raise; the view
# is an identity-compared cache.
@dataclass(frozen=True, eq=False)
class CSRGraph:
    """Compressed-sparse-row view of the task-side adjacency.

    The neighbours of task position ``i`` are
    ``indices[indptr[i]:indptr[i + 1]]`` in ascending worker order.  All
    maximum-weight matching backends consume this representation (see
    :mod:`repro.matching.weighted`): it is built once per period and avoids
    re-walking Python list-of-list adjacency in the hot loop.

    Attributes:
        indptr: ``int64`` array of length ``num_tasks + 1``.
        indices: ``int64`` array of length ``num_edges`` (worker positions).
        num_tasks: Number of rows (task positions).
        num_workers: Number of columns (worker positions).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_tasks: int
    num_workers: int

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, task_pos: int) -> np.ndarray:
        """Worker positions adjacent to ``task_pos`` (ascending)."""
        return self.indices[self.indptr[task_pos] : self.indptr[task_pos + 1]]

    def degrees(self) -> np.ndarray:
        """Per-task neighbour counts."""
        return np.diff(self.indptr)

    # The augmenting-path inner loops iterate edges element-by-element in
    # Python; plain ``int`` lists are markedly faster to index than numpy
    # scalars there, so both views are cached alongside the arrays.
    @cached_property
    def indptr_list(self) -> List[int]:
        return self.indptr.tolist()

    @cached_property
    def indices_list(self) -> List[int]:
        return self.indices.tolist()

    def to_dense_mask(self) -> np.ndarray:
        """Boolean ``(num_tasks, num_workers)`` adjacency matrix."""
        mask = np.zeros((self.num_tasks, self.num_workers), dtype=bool)
        if self.num_edges:
            rows = np.repeat(np.arange(self.num_tasks), self.degrees())
            mask[rows, self.indices] = True
        return mask

    @classmethod
    def from_adjacency(
        cls, task_neighbors: Sequence[Sequence[int]], num_workers: int
    ) -> "CSRGraph":
        """Build a CSR view from (sorted) list-of-list adjacency."""
        counts = [len(adjacency) for adjacency in task_neighbors]
        indptr = np.zeros(len(task_neighbors) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if indptr[-1]:
            indices = np.concatenate(
                [np.asarray(adjacency, dtype=np.int64) for adjacency in task_neighbors if adjacency]
            )
        else:
            indices = np.zeros(0, dtype=np.int64)
        return cls(
            indptr=indptr,
            indices=indices,
            num_tasks=len(task_neighbors),
            num_workers=int(num_workers),
        )


@dataclass
class BipartiteGraph:
    """Adjacency structure between tasks (left) and workers (right).

    Attributes:
        tasks: The tasks, indexed by their position in this list.
        workers: The workers, indexed by their position in this list.
        task_neighbors: ``task_neighbors[i]`` is the sorted list of worker
            positions adjacent to task ``i``.
        worker_neighbors: ``worker_neighbors[j]`` is the sorted list of
            task positions adjacent to worker ``j``.
    """

    tasks: List[Task]
    workers: List[Worker]
    task_neighbors: List[List[int]] = field(default_factory=list)
    worker_neighbors: List[List[int]] = field(default_factory=list)
    _csr: Optional[CSRGraph] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.task_neighbors:
            self.task_neighbors = [[] for _ in self.tasks]
        if not self.worker_neighbors:
            self.worker_neighbors = [[] for _ in self.workers]
        if len(self.task_neighbors) != len(self.tasks):
            raise ValueError("task_neighbors length must match tasks")
        if len(self.worker_neighbors) != len(self.workers):
            raise ValueError("worker_neighbors length must match workers")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.task_neighbors)

    def has_edge(self, task_pos: int, worker_pos: int) -> bool:
        return worker_pos in self.task_neighbors[task_pos]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Yield edges as ``(task_position, worker_position)`` pairs."""
        for task_pos, adjacency in enumerate(self.task_neighbors):
            for worker_pos in adjacency:
                yield (task_pos, worker_pos)

    def degree_of_task(self, task_pos: int) -> int:
        return len(self.task_neighbors[task_pos])

    def degree_of_worker(self, worker_pos: int) -> int:
        return len(self.worker_neighbors[worker_pos])

    def csr(self) -> CSRGraph:
        """The cached task-side CSR view consumed by matching backends.

        Built lazily from ``task_neighbors`` and invalidated by
        :meth:`add_edge`, so repeated matching calls on the same period
        share one compact representation.
        """
        if self._csr is None:
            self._csr = CSRGraph.from_adjacency(self.task_neighbors, self.num_workers)
        return self._csr

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, task_pos: int, worker_pos: int) -> None:
        """Add an edge; duplicates are ignored."""
        if not 0 <= task_pos < self.num_tasks:
            raise IndexError(f"task position {task_pos} out of range")
        if not 0 <= worker_pos < self.num_workers:
            raise IndexError(f"worker position {worker_pos} out of range")
        if worker_pos not in self.task_neighbors[task_pos]:
            self.task_neighbors[task_pos].append(worker_pos)
            self.worker_neighbors[worker_pos].append(task_pos)
            self._csr = None

    # ------------------------------------------------------------------
    # grid-level views
    # ------------------------------------------------------------------
    def tasks_in_grid(self, grid_index: int) -> List[int]:
        """Positions of tasks whose (cached) grid index equals ``grid_index``."""
        return [
            pos for pos, task in enumerate(self.tasks) if task.grid_index == grid_index
        ]

    def tasks_by_grid(self) -> Dict[int, List[int]]:
        """Mapping grid index -> positions of tasks in that grid."""
        buckets: Dict[int, List[int]] = {}
        for pos, task in enumerate(self.tasks):
            if task.grid_index is None:
                raise ValueError(
                    f"task {task.task_id} has no grid index; "
                    "annotate tasks before building grid views"
                )
            buckets.setdefault(task.grid_index, []).append(pos)
        return buckets

    def subgraph_for_tasks(self, task_positions: Sequence[int]) -> "BipartiteGraph":
        """Induced subgraph keeping only the given tasks (all workers kept).

        The returned graph re-indexes tasks to ``0..len(task_positions)-1``
        while worker positions are preserved, which is what the realized
        revenue computation needs (only accepted tasks remain).
        """
        keep = list(task_positions)
        new_tasks = [self.tasks[pos] for pos in keep]
        new_task_neighbors = [sorted(self.task_neighbors[pos]) for pos in keep]
        new_worker_neighbors: List[List[int]] = [[] for _ in self.workers]
        for new_pos, adjacency in enumerate(new_task_neighbors):
            for worker_pos in adjacency:
                new_worker_neighbors[worker_pos].append(new_pos)
        return BipartiteGraph(
            tasks=new_tasks,
            workers=list(self.workers),
            task_neighbors=new_task_neighbors,
            worker_neighbors=new_worker_neighbors,
        )


def build_bipartite_graph(
    tasks: Sequence[Task],
    workers: Sequence[Worker],
    metric: Union[str, DistanceMetric] = "euclidean",
    grid: Optional[Grid] = None,
    use_index: bool = True,
) -> BipartiteGraph:
    """Build the range-constrained bipartite graph.

    Args:
        tasks: Tasks of the period (left side).
        workers: Available workers of the period (right side).
        metric: Distance metric for the range constraint.
        grid: Optional grid for spatial-index acceleration.  Required when
            ``use_index`` is True and there is at least one task.
        use_index: When True (and ``grid`` is given) tasks are bucketed in a
            :class:`GridSpatialIndex` and each worker issues a circular
            range query; otherwise an all-pairs scan is used.

    Returns:
        The :class:`BipartiteGraph` with an edge for every
        ``(task, worker)`` pair satisfying the range constraint.
    """
    graph = BipartiteGraph(tasks=list(tasks), workers=list(workers))
    if not tasks or not workers:
        return graph
    metric_fn = resolve_metric(metric)

    if use_index and grid is not None:
        index: GridSpatialIndex[int] = GridSpatialIndex(grid, metric=metric_fn)
        for pos, task in enumerate(graph.tasks):
            index.insert(pos, task.origin)
        for worker_pos, worker in enumerate(graph.workers):
            for task_pos, _distance in index.query_circle(worker.location, worker.radius):
                graph.add_edge(task_pos, worker_pos)
    else:
        for worker_pos, worker in enumerate(graph.workers):
            for task_pos, task in enumerate(graph.tasks):
                if metric_fn(worker.location, task.origin) <= worker.radius:
                    graph.add_edge(task_pos, worker_pos)

    # Keep adjacency deterministic regardless of construction order.
    for adjacency in graph.task_neighbors:
        adjacency.sort()
    for adjacency in graph.worker_neighbors:
        adjacency.sort()
    return graph


__all__ = ["BipartiteGraph", "CSRGraph", "build_bipartite_graph"]
