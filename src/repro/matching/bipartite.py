"""Task–worker bipartite graph under the range constraint.

The probabilistic bipartite graph of Definition 5 has tasks on the left,
workers on the right, and an edge ``(r, w)`` whenever task ``r``'s origin
lies within worker ``w``'s service radius.  The instantiation of the graph
(which tasks accepted their price) happens later; this module only deals
with the structural graph, which is what MAPS needs for its pre-matching
and what the simulator needs to compute realized revenue.

Edges can be built three ways, all producing the identical edge set
(for the ``haversine`` metric, identical up to platform transcendental
rounding at the exact radius boundary — see
:func:`repro.spatial.geometry.haversine_distances_batch`):

* **vectorised** (the default when a grid and a named metric are given) —
  tasks are bucketed per grid cell once
  (:class:`repro.spatial.index.GridBuckets`), every worker's candidate
  cells are enumerated with one ragged numpy expansion, and a single
  batched distance filter keeps the true edges.  The builder emits the
  CSR arrays **directly** — the Python list-of-list adjacency is only
  materialised lazily if some consumer asks for it — and reuses grow-only
  scratch buffers across periods;
* **indexed scalar** — per-worker :meth:`GridSpatialIndex.query_circle`
  loops (the pre-vectorisation behaviour, kept as the fallback for
  caller-supplied metric callables and as the reference implementation
  the property tests compare against);
* **brute force** — an all-pairs scan (fine for tests and tiny instances).

An optional **degree cap** keeps only the ``max_degree`` nearest workers
per task (ties broken by ascending worker position): dense city-scale
periods produce average task degrees in the dozens, and the augmenting
search cost scales with edge count.  The cap is *off by default* — exact
backends stay bit-identical to the uncapped graph — and both builder
paths apply the identical capping rule, which the regression tests pin.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.market.entities import Task, Worker
from repro.spatial.geometry import (
    DistanceMetric,
    resolve_batch_metric,
    resolve_metric,
)
from repro.spatial.grid import Grid
from repro.spatial.index import GridBuckets, GridSpatialIndex, cap_edges_per_center


# eq=False: ndarray fields would make a generated __eq__ raise; the view
# is an identity-compared cache.
@dataclass(frozen=True, eq=False)
class CSRGraph:
    """Compressed-sparse-row view of the task-side adjacency.

    The neighbours of task position ``i`` are
    ``indices[indptr[i]:indptr[i + 1]]`` in ascending worker order.  All
    maximum-weight matching backends consume this representation (see
    :mod:`repro.matching.weighted`): it is built once per period and avoids
    re-walking Python list-of-list adjacency in the hot loop.

    Attributes:
        indptr: ``int64`` array of length ``num_tasks + 1``.
        indices: ``int64`` array of length ``num_edges`` (worker positions).
        num_tasks: Number of rows (task positions).
        num_workers: Number of columns (worker positions).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_tasks: int
    num_workers: int

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, task_pos: int) -> np.ndarray:
        """Worker positions adjacent to ``task_pos`` (ascending)."""
        return self.indices[self.indptr[task_pos] : self.indptr[task_pos + 1]]

    def degrees(self) -> np.ndarray:
        """Per-task neighbour counts."""
        return np.diff(self.indptr)

    # The augmenting-path inner loops iterate edges element-by-element in
    # Python; plain ``int`` lists are markedly faster to index than numpy
    # scalars there, so both views are cached alongside the arrays.
    @cached_property
    def indptr_list(self) -> List[int]:
        return self.indptr.tolist()

    @cached_property
    def indices_list(self) -> List[int]:
        return self.indices.tolist()

    def to_dense_mask(self) -> np.ndarray:
        """Boolean ``(num_tasks, num_workers)`` adjacency matrix."""
        mask = np.zeros((self.num_tasks, self.num_workers), dtype=bool)
        if self.num_edges:
            rows = np.repeat(np.arange(self.num_tasks), self.degrees())
            mask[rows, self.indices] = True
        return mask

    @classmethod
    def from_adjacency(
        cls, task_neighbors: Sequence[Sequence[int]], num_workers: int
    ) -> "CSRGraph":
        """Build a CSR view from (sorted) list-of-list adjacency."""
        counts = [len(adjacency) for adjacency in task_neighbors]
        indptr = np.zeros(len(task_neighbors) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if indptr[-1]:
            indices = np.concatenate(
                [np.asarray(adjacency, dtype=np.int64) for adjacency in task_neighbors if adjacency]
            )
        else:
            indices = np.zeros(0, dtype=np.int64)
        return cls(
            indptr=indptr,
            indices=indices,
            num_tasks=len(task_neighbors),
            num_workers=int(num_workers),
        )

    @classmethod
    def from_edge_arrays(
        cls,
        task_idx: np.ndarray,
        worker_idx: np.ndarray,
        num_tasks: int,
        num_workers: int,
    ) -> "CSRGraph":
        """Build a CSR view from flat edge arrays sorted by (task, worker)."""
        indptr = np.zeros(num_tasks + 1, dtype=np.int64)
        if task_idx.size:
            np.cumsum(np.bincount(task_idx, minlength=num_tasks), out=indptr[1:])
        return cls(
            indptr=indptr,
            indices=np.ascontiguousarray(worker_idx, dtype=np.int64),
            num_tasks=int(num_tasks),
            num_workers=int(num_workers),
        )


class BipartiteGraph:
    """Adjacency structure between tasks (left) and workers (right).

    The graph can be backed either by Python list-of-list adjacency (the
    historical representation, still what :meth:`add_edge` mutates) or
    directly by a :class:`CSRGraph` produced by the vectorised builder.
    In the latter case ``task_neighbors`` / ``worker_neighbors`` are
    materialised **lazily** on first access, so the hot path — which only
    ever touches the CSR arrays — never pays for building millions of
    Python list entries.

    Attributes:
        tasks: The tasks, indexed by their position in this list.
        workers: The workers, indexed by their position in this list.
        task_neighbors: ``task_neighbors[i]`` is the sorted list of worker
            positions adjacent to task ``i``.
        worker_neighbors: ``worker_neighbors[j]`` is the sorted list of
            task positions adjacent to worker ``j``.
    """

    def __init__(
        self,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        task_neighbors: Optional[List[List[int]]] = None,
        worker_neighbors: Optional[List[List[int]]] = None,
    ) -> None:
        self.tasks: List[Task] = tasks if isinstance(tasks, list) else list(tasks)
        self.workers: List[Worker] = (
            workers if isinstance(workers, list) else list(workers)
        )
        # An empty list means "not provided" (matching the historical
        # dataclass default-factory behaviour).
        if not task_neighbors:
            task_neighbors = [[] for _ in self.tasks]
        if not worker_neighbors:
            worker_neighbors = [[] for _ in self.workers]
        if len(task_neighbors) != len(self.tasks):
            raise ValueError("task_neighbors length must match tasks")
        if len(worker_neighbors) != len(self.workers):
            raise ValueError("worker_neighbors length must match workers")
        self._task_neighbors: Optional[List[List[int]]] = task_neighbors
        self._worker_neighbors: Optional[List[List[int]]] = worker_neighbors
        self._csr: Optional[CSRGraph] = None

    @classmethod
    def from_csr(
        cls, tasks: Sequence[Task], workers: Sequence[Worker], csr: CSRGraph
    ) -> "BipartiteGraph":
        """Wrap a pre-built CSR view without materialising Python lists."""
        if csr.num_tasks != len(tasks) or csr.num_workers != len(workers):
            raise ValueError("CSR dimensions must match tasks and workers")
        graph = cls.__new__(cls)
        # Any random-access sequence works (the graph only ever indexes
        # and measures it); keeping e.g. a lazy columnar view as-is means
        # records materialise only if some consumer actually reads them.
        graph.tasks = tasks if isinstance(tasks, Sequence) else list(tasks)
        graph.workers = workers if isinstance(workers, Sequence) else list(workers)
        graph._task_neighbors = None
        graph._worker_neighbors = None
        graph._csr = csr
        return graph

    # ------------------------------------------------------------------
    # lazily materialised adjacency views
    # ------------------------------------------------------------------
    @property
    def task_neighbors(self) -> List[List[int]]:
        if self._task_neighbors is None:
            csr = self._csr
            assert csr is not None
            if not self.tasks:
                # np.split(arr, []) would yield one (empty) segment, not
                # zero, breaking the length == num_tasks invariant.
                self._task_neighbors = []
            else:
                self._task_neighbors = [
                    segment.tolist()
                    for segment in np.split(csr.indices, csr.indptr[1:-1])
                ]
        return self._task_neighbors

    @property
    def worker_neighbors(self) -> List[List[int]]:
        if self._worker_neighbors is None:
            csr = self._csr
            assert csr is not None
            adjacency: List[List[int]] = [[] for _ in self.workers]
            if csr.num_edges:
                rows = np.repeat(np.arange(csr.num_tasks), csr.degrees())
                # Stable sort by worker keeps tasks ascending within each
                # worker (rows are already ascending).
                order = np.argsort(csr.indices, kind="stable")
                sorted_workers = csr.indices[order]
                sorted_tasks = rows[order]
                boundaries = np.flatnonzero(np.diff(sorted_workers)) + 1
                groups = np.split(sorted_tasks, boundaries)
                for worker_pos, group in zip(
                    sorted_workers[np.concatenate(([0], boundaries))].tolist(), groups
                ):
                    adjacency[worker_pos] = group.tolist()
            self._worker_neighbors = adjacency
        return self._worker_neighbors

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self.tasks == other.tasks
            and self.workers == other.workers
            and self.task_neighbors == other.task_neighbors
            and self.worker_neighbors == other.worker_neighbors
        )

    __hash__ = None  # type: ignore[assignment]  # mutable container semantics

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(num_tasks={self.num_tasks}, "
            f"num_workers={self.num_workers}, num_edges={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_edges(self) -> int:
        if self._csr is not None:
            return self._csr.num_edges
        return sum(len(adj) for adj in self.task_neighbors)

    def has_edge(self, task_pos: int, worker_pos: int) -> bool:
        if self._task_neighbors is None and self._csr is not None:
            neighbors = self._csr.neighbors(task_pos)
            at = int(np.searchsorted(neighbors, worker_pos))
            return at < neighbors.shape[0] and int(neighbors[at]) == worker_pos
        return worker_pos in self.task_neighbors[task_pos]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Yield edges as ``(task_position, worker_position)`` pairs."""
        for task_pos, adjacency in enumerate(self.task_neighbors):
            for worker_pos in adjacency:
                yield (task_pos, worker_pos)

    def degree_of_task(self, task_pos: int) -> int:
        if self._task_neighbors is None and self._csr is not None:
            return int(
                self._csr.indptr[task_pos + 1] - self._csr.indptr[task_pos]
            )
        return len(self.task_neighbors[task_pos])

    def degree_of_worker(self, worker_pos: int) -> int:
        return len(self.worker_neighbors[worker_pos])

    def csr(self) -> CSRGraph:
        """The cached task-side CSR view consumed by matching backends.

        Either attached directly by the vectorised builder, or built
        lazily from ``task_neighbors`` and invalidated by
        :meth:`add_edge`, so a period's match stage, halo reconciliation
        and incremental matcher all share one compact representation.
        """
        if self._csr is None:
            self._csr = CSRGraph.from_adjacency(self.task_neighbors, self.num_workers)
        return self._csr

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, task_pos: int, worker_pos: int) -> None:
        """Add an edge; duplicates are ignored."""
        if not 0 <= task_pos < self.num_tasks:
            raise IndexError(f"task position {task_pos} out of range")
        if not 0 <= worker_pos < self.num_workers:
            raise IndexError(f"worker position {worker_pos} out of range")
        # Materialise both adjacency views before mutating a CSR-backed
        # graph, then drop the now-stale CSR cache.
        task_neighbors = self.task_neighbors
        worker_neighbors = self.worker_neighbors
        if worker_pos not in task_neighbors[task_pos]:
            task_neighbors[task_pos].append(worker_pos)
            worker_neighbors[worker_pos].append(task_pos)
            self._csr = None

    # ------------------------------------------------------------------
    # grid-level views
    # ------------------------------------------------------------------
    def tasks_in_grid(self, grid_index: int) -> List[int]:
        """Positions of tasks whose (cached) grid index equals ``grid_index``."""
        return [
            pos for pos, task in enumerate(self.tasks) if task.grid_index == grid_index
        ]

    def tasks_by_grid(self) -> Dict[int, List[int]]:
        """Mapping grid index -> positions of tasks in that grid."""
        buckets: Dict[int, List[int]] = {}
        for pos, task in enumerate(self.tasks):
            if task.grid_index is None:
                raise ValueError(
                    f"task {task.task_id} has no grid index; "
                    "annotate tasks before building grid views"
                )
            buckets.setdefault(task.grid_index, []).append(pos)
        return buckets

    def subgraph_for_tasks(self, task_positions: Sequence[int]) -> "BipartiteGraph":
        """Induced subgraph keeping only the given tasks (all workers kept).

        The returned graph re-indexes tasks to ``0..len(task_positions)-1``
        while worker positions are preserved, which is what the realized
        revenue computation needs (only accepted tasks remain).
        """
        keep = list(task_positions)
        new_tasks = [self.tasks[pos] for pos in keep]
        new_task_neighbors = [sorted(self.task_neighbors[pos]) for pos in keep]
        new_worker_neighbors: List[List[int]] = [[] for _ in self.workers]
        for new_pos, adjacency in enumerate(new_task_neighbors):
            for worker_pos in adjacency:
                new_worker_neighbors[worker_pos].append(new_pos)
        return BipartiteGraph(
            tasks=new_tasks,
            workers=list(self.workers),
            task_neighbors=new_task_neighbors,
            worker_neighbors=new_worker_neighbors,
        )


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------
#: When True, ``vectorize=None`` resolves to the scalar loop path.  Only
#: flipped through :func:`force_loop_builder`.
_FORCE_LOOP_BUILDER = False


@contextmanager
def force_loop_builder() -> Iterator[None]:
    """Temporarily make ``vectorize=None`` resolve to the scalar loop path.

    Used by the hot-path benchmark (to measure the pre-vectorisation
    baseline through unmodified engine code) and by the equivalence tests
    (to run whole simulations on both builders).  Explicit
    ``vectorize=True`` still wins inside the block.
    """
    global _FORCE_LOOP_BUILDER
    previous = _FORCE_LOOP_BUILDER
    _FORCE_LOOP_BUILDER = True
    try:
        yield
    finally:
        _FORCE_LOOP_BUILDER = previous


def _cap_edge_arrays(
    task_idx: np.ndarray,
    worker_idx: np.ndarray,
    distances: np.ndarray,
    num_tasks: int,
    max_degree: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep the ``max_degree`` nearest workers per task (vectorised).

    Ties on distance break by ascending worker position, so the kept set
    is deterministic and identical to the scalar capping rule.  Inputs
    may arrive in any order (the selection keys order them fully);
    outputs are in canonical ascending ``(task, worker)`` order.

    One implementation shared with the incremental adjacency plane:
    delegates to :func:`repro.spatial.index.cap_edges_per_center`, so
    batch-built and incrementally-built capped rows agree bit for bit
    wherever the same selection keys are used.
    """
    return cap_edges_per_center(
        task_idx, worker_idx, distances, num_tasks, max_degree
    )


def _cap_adjacency(
    graph: BipartiteGraph,
    metric_fn: DistanceMetric,
    max_degree: int,
) -> None:
    """Scalar-path degree cap, identical in semantics to the array one."""
    new_task_neighbors: List[List[int]] = []
    for task_pos, adjacency in enumerate(graph.task_neighbors):
        if len(adjacency) <= max_degree:
            new_task_neighbors.append(adjacency)
            continue
        origin = graph.tasks[task_pos].origin
        ranked = sorted(
            adjacency,
            key=lambda worker_pos: (
                metric_fn(graph.workers[worker_pos].location, origin),
                worker_pos,
            ),
        )
        new_task_neighbors.append(sorted(ranked[:max_degree]))
    new_worker_neighbors: List[List[int]] = [[] for _ in graph.workers]
    for task_pos, adjacency in enumerate(new_task_neighbors):
        for worker_pos in adjacency:
            new_worker_neighbors[worker_pos].append(task_pos)
    graph._task_neighbors = new_task_neighbors
    graph._worker_neighbors = new_worker_neighbors
    graph._csr = None


def build_graph_from_arrays(
    tasks: Sequence[Task],
    workers: Sequence[Worker],
    task_x: np.ndarray,
    task_y: np.ndarray,
    worker_x: np.ndarray,
    worker_y: np.ndarray,
    radii: np.ndarray,
    metric: Union[str, DistanceMetric],
    grid: Grid,
    max_degree: Optional[int] = None,
) -> BipartiteGraph:
    """Array-native graph construction from pre-extracted coordinates.

    The columnar engine path calls this directly with its struct-of-array
    buffers (``tasks`` / ``workers`` may be lazy record views — the graph
    only stores them); :func:`_build_vectorized` extracts the same arrays
    from objects first.  Empty sides short-circuit to an edgeless graph.
    """
    num_tasks = len(tasks)
    num_workers = len(workers)
    if not num_tasks or not num_workers:
        csr = CSRGraph.from_edge_arrays(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), num_tasks, num_workers
        )
        return BipartiteGraph.from_csr(tasks, workers, csr)
    buckets = GridBuckets(grid, task_x, task_y)
    worker_idx, task_idx, distances = buckets.query_circles(
        worker_x, worker_y, radii, metric=metric
    )

    if max_degree is not None and task_idx.size:
        # The cap's ranking sort orders edges fully on its own, so the
        # canonical sort only runs over the surviving <= K-per-task set.
        task_idx, worker_idx = _cap_edge_arrays(
            task_idx, worker_idx, distances, num_tasks, int(max_degree)
        )
    else:
        # Canonical CSR order: ascending (task, worker).
        order = np.lexsort((worker_idx, task_idx))
        task_idx = task_idx[order]
        worker_idx = worker_idx[order]
    csr = CSRGraph.from_edge_arrays(task_idx, worker_idx, num_tasks, num_workers)
    return BipartiteGraph.from_csr(tasks, workers, csr)


def _build_vectorized(
    tasks: List[Task],
    workers: List[Worker],
    metric: Union[str, DistanceMetric],
    grid: Grid,
    max_degree: Optional[int],
) -> BipartiteGraph:
    """Array-native graph construction emitting the CSR view directly."""
    task_x = np.fromiter((task.origin.x for task in tasks), dtype=np.float64, count=len(tasks))
    task_y = np.fromiter((task.origin.y for task in tasks), dtype=np.float64, count=len(tasks))
    worker_x = np.fromiter(
        (worker.location.x for worker in workers), dtype=np.float64, count=len(workers)
    )
    worker_y = np.fromiter(
        (worker.location.y for worker in workers), dtype=np.float64, count=len(workers)
    )
    radii = np.fromiter(
        (worker.radius for worker in workers), dtype=np.float64, count=len(workers)
    )
    return build_graph_from_arrays(
        tasks,
        workers,
        task_x,
        task_y,
        worker_x,
        worker_y,
        radii,
        metric,
        grid,
        max_degree,
    )


def build_bipartite_graph(
    tasks: Sequence[Task],
    workers: Sequence[Worker],
    metric: Union[str, DistanceMetric] = "euclidean",
    grid: Optional[Grid] = None,
    use_index: bool = True,
    max_degree: Optional[int] = None,
    vectorize: Optional[bool] = None,
) -> BipartiteGraph:
    """Build the range-constrained bipartite graph.

    Args:
        tasks: Tasks of the period (left side).
        workers: Available workers of the period (right side).
        metric: Distance metric for the range constraint.
        grid: Optional grid for spatial-index acceleration.  Required when
            ``use_index`` is True and there is at least one task.
        use_index: When True (and ``grid`` is given) tasks are bucketed by
            grid cell and workers issue circular range queries; otherwise
            an all-pairs scan is used.
        max_degree: Optional cap on the number of workers kept per task —
            only the ``max_degree`` *nearest* workers survive (ties broken
            by ascending worker position).  ``None`` (the default) keeps
            every edge, so exact matching backends are unaffected.
        vectorize: ``None`` (default) picks the array-native builder
            whenever it applies (grid given, ``use_index``, named metric);
            ``False`` forces the scalar loop path (used by the equivalence
            tests and the benchmark baseline); ``True`` insists on the
            vectorised path and raises :class:`ValueError` when it cannot
            be used.

    Returns:
        The :class:`BipartiteGraph` with an edge for every
        ``(task, worker)`` pair satisfying the range constraint (capped
        per task when ``max_degree`` is given).  Both builder paths
        produce the identical graph, which the property tests fuzz.
    """
    if max_degree is not None and max_degree < 1:
        raise ValueError("max_degree must be a positive integer when given")

    task_list = list(tasks)
    worker_list = list(workers)
    vector_ok = (
        use_index
        and grid is not None
        and resolve_batch_metric(metric) is not None
        and bool(task_list)
        and bool(worker_list)
    )
    if vectorize is True and not vector_ok:
        raise ValueError(
            "vectorize=True requires use_index, a grid, a named metric and "
            "non-empty tasks and workers"
        )
    if vector_ok and (
        vectorize is True or (vectorize is None and not _FORCE_LOOP_BUILDER)
    ):
        assert grid is not None
        return _build_vectorized(task_list, worker_list, metric, grid, max_degree)

    graph = BipartiteGraph(tasks=task_list, workers=worker_list)
    if not task_list or not worker_list:
        return graph
    metric_fn = resolve_metric(metric)

    if use_index and grid is not None:
        index: GridSpatialIndex[int] = GridSpatialIndex(grid, metric=metric_fn)
        for pos, task in enumerate(graph.tasks):
            index.insert(pos, task.origin)
        for worker_pos, worker in enumerate(graph.workers):
            for task_pos, _distance in index.query_circle(worker.location, worker.radius):
                graph.add_edge(task_pos, worker_pos)
    else:
        for worker_pos, worker in enumerate(graph.workers):
            for task_pos, task in enumerate(graph.tasks):
                if metric_fn(worker.location, task.origin) <= worker.radius:
                    graph.add_edge(task_pos, worker_pos)

    # Keep adjacency deterministic regardless of construction order.
    for adjacency in graph.task_neighbors:
        adjacency.sort()
    for adjacency in graph.worker_neighbors:
        adjacency.sort()
    if max_degree is not None:
        _cap_adjacency(graph, metric_fn, int(max_degree))
    return graph


__all__ = [
    "BipartiteGraph",
    "CSRGraph",
    "build_bipartite_graph",
    "build_graph_from_arrays",
    "force_loop_builder",
]
