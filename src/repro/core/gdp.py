"""The Global Dynamic Pricing (GDP) problem instance.

Definition 7: given the tasks ``R^t`` and workers ``W^t`` of a time period
(with unknown acceptance ratios), find one unit price per task such that
the expected total revenue — defined through possible-world semantics over
the probabilistic bipartite graph and maximum-weight matchings — is
maximised.  The platform actually quotes one price per *grid*, so a price
vector is represented as ``{grid_index: unit_price}``.

:class:`PeriodInstance` bundles everything a pricing strategy may inspect
for one period; :class:`GDPInstance` additionally carries the ground-truth
acceptance models so the objective can be evaluated exactly (for small
instances) or by Monte-Carlo sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.market.acceptance import AcceptanceModel, PerGridAcceptance
from repro.market.curves import GridMarket
from repro.market.entities import Task, Worker
from repro.matching.bipartite import BipartiteGraph, build_bipartite_graph
from repro.matching.possible_worlds import (
    exact_expected_revenue,
    monte_carlo_expected_revenue,
)
from repro.spatial.geometry import DistanceMetric
from repro.spatial.grid import Grid
from repro.utils.rng import RandomState


# eq=False: ndarray fields make a generated __eq__ raise on multi-element
# arrays; identity comparison (and identity hash) is the useful semantic
# for a cached per-period view.
@dataclass(frozen=True, eq=False)
class PeriodArrays:
    """Struct-of-arrays view of one period, built once alongside the objects.

    The simulation hot path (vectorised acceptance decisions, per-task
    weight computation, batched feedback) and the MAPS planner's per-grid
    distance profiles all read from these arrays instead of re-walking the
    per-task Python objects every stage.

    Attributes:
        task_grids: ``int64`` 1-based grid index per task position.
        distances: ``float64`` travel distance ``d_r`` per task position.
        valuations: ``float64`` private valuation per task position
            (``NaN`` for tasks governed by an external acceptance model).
        has_valuation: Boolean mask; ``False`` exactly where the task
            carries no private valuation (``valuation is None``).  A task
            with an explicit ``NaN`` valuation keeps ``True`` here and
            rejects every price, as in the scalar engine.
        worker_grids: ``int64`` 1-based grid index per worker position.
    """

    task_grids: np.ndarray
    distances: np.ndarray
    valuations: np.ndarray
    has_valuation: np.ndarray
    worker_grids: np.ndarray

    @classmethod
    def build(
        cls,
        tasks: Sequence["Task"],
        workers: Sequence["Worker"],
        grid: Grid,
    ) -> "PeriodArrays":
        """Extract the arrays from annotated tasks and workers.

        Tasks must already carry their ``grid_index`` (as guaranteed by
        :meth:`PeriodInstance.build`); worker grid cells are located with
        the vectorised :meth:`repro.spatial.grid.Grid.locate_many`.
        """
        num_tasks = len(tasks)
        for task in tasks:
            if task.grid_index is None:
                raise ValueError(
                    f"task {task.task_id} has no grid index; "
                    "annotate tasks before building period arrays"
                )
        task_grids = np.fromiter(
            (task.grid_index for task in tasks), dtype=np.int64, count=num_tasks
        )
        distances = np.fromiter(
            (task.distance for task in tasks), dtype=np.float64, count=num_tasks
        )
        valuations = np.fromiter(
            (
                np.nan if task.valuation is None else task.valuation
                for task in tasks
            ),
            dtype=np.float64,
            count=num_tasks,
        )
        # The mask comes from `is None`, not isnan: an explicit NaN
        # valuation means "rejects every price" (price <= NaN is False),
        # exactly as the scalar engine treated it, and must not be routed
        # through the acceptance model's RNG draws.
        has_valuation = np.fromiter(
            (task.valuation is not None for task in tasks),
            dtype=bool,
            count=num_tasks,
        )
        if workers:
            worker_grids = grid.locate_many(
                [worker.location.x for worker in workers],
                [worker.location.y for worker in workers],
            )
        else:
            worker_grids = np.zeros(0, dtype=np.int64)
        return cls(
            task_grids=task_grids,
            distances=distances,
            valuations=valuations,
            has_valuation=has_valuation,
            worker_grids=worker_grids,
        )

    @property
    def num_tasks(self) -> int:
        return int(self.task_grids.shape[0])

    @property
    def num_workers(self) -> int:
        return int(self.worker_grids.shape[0])

    @cached_property
    def tasks_by_grid(self) -> Dict[int, List[int]]:
        """Grid index -> task positions (ascending), from the arrays."""
        buckets: Dict[int, List[int]] = {}
        for pos, grid_index in enumerate(self.task_grids.tolist()):
            buckets.setdefault(grid_index, []).append(pos)
        return buckets

    @cached_property
    def workers_by_grid(self) -> Dict[int, int]:
        """Grid index -> number of co-located workers, from the arrays."""
        if not self.num_workers:
            return {}
        cells, counts = np.unique(self.worker_grids, return_counts=True)
        return dict(zip(cells.tolist(), counts.tolist()))

    @cached_property
    def _sorted_distances_by_grid(self) -> Dict[int, np.ndarray]:
        return {
            grid_index: -np.sort(-self.distances[positions])
            for grid_index, positions in self.tasks_by_grid.items()
        }

    def distances_in_grid(self, grid_index: int) -> List[float]:
        """Travel distances of the grid's tasks (non-increasing order)."""
        profile = self._sorted_distances_by_grid.get(grid_index)
        if profile is None:
            return []
        return profile.tolist()

    def prices_per_task(
        self,
        grid_prices: Mapping[int, float],
        p_min: float,
        p_max: float,
    ) -> np.ndarray:
        """Clamped per-task price vector for a per-grid price mapping.

        Grids absent from ``grid_prices`` default to ``p_min``, matching
        the engine's defensive behaviour for unpriced grids.
        """
        prices = np.full(self.num_tasks, p_min, dtype=np.float64)
        for grid_index, positions in self.tasks_by_grid.items():
            quoted = grid_prices.get(grid_index)
            if quoted is not None:
                prices[positions] = min(p_max, max(p_min, float(quoted)))
        return prices


class _LazyBipartiteGraph:
    """Materialise-on-first-touch stand-in for :class:`BipartiteGraph`.

    The warm-shard engine matches off the incremental adjacency plane and
    never reads the period graph, but the instance it dispatches still
    flows through stages that *may* (halo reconciliation never does;
    ``pipeline.match`` would).  The proxy defers the full graph build to
    the first attribute access, so the common warm path skips it entirely
    while any consumer that genuinely needs the graph still gets the
    exact batch-built one.
    """

    __slots__ = ("_factory", "_graph")

    def __init__(self, factory) -> None:
        self._factory = factory
        self._graph = None

    @property
    def materialised(self) -> bool:
        return self._graph is not None

    def __getattr__(self, name):
        graph = self._graph
        if graph is None:
            graph = self._factory()
            self._graph = graph
            self._factory = None
        return getattr(graph, name)


@dataclass
class PeriodInstance:
    """The observable state of one time period.

    Attributes:
        period: Time period index ``t``.
        grid: The pricing grid.
        tasks: Tasks issued in the period, annotated with ``grid_index``.
        workers: Workers available in the period.
        graph: Range-constrained bipartite graph between them.
        tasks_by_grid: Mapping grid index -> task positions (in ``tasks``).
        workers_by_grid: Mapping grid index -> number of workers located in
            the grid (used by the SDR/SDE/CappedUCB baselines, which reason
            per grid rather than through the bipartite graph).
        arrays: Struct-of-arrays view (:class:`PeriodArrays`) consumed by
            the vectorised simulation pipeline and the MAPS planner; built
            once by :meth:`build` (or lazily via :meth:`ensure_arrays`).
    """

    period: int
    grid: Grid
    tasks: List[Task]
    workers: List[Worker]
    graph: BipartiteGraph
    tasks_by_grid: Dict[int, List[int]] = field(default_factory=dict)
    workers_by_grid: Dict[int, int] = field(default_factory=dict)
    # compare=False keeps PeriodInstance equality defined by the object
    # fields, as before the cached view existed.
    arrays: Optional[PeriodArrays] = field(default=None, compare=False)

    @classmethod
    def build(
        cls,
        period: int,
        grid: Grid,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        metric: Union[str, DistanceMetric] = "euclidean",
        use_index: bool = True,
        max_degree: Optional[int] = None,
        build_graph: bool = True,
    ) -> "PeriodInstance":
        """Annotate tasks with their grid cell and build the bipartite graph.

        ``max_degree`` optionally caps each task's adjacency at its
        ``max_degree`` nearest workers (see
        :func:`repro.matching.bipartite.build_bipartite_graph`); ``None``
        keeps the exact range-constrained graph.  ``build_graph=False``
        defers the graph behind a :class:`_LazyBipartiteGraph` proxy —
        for callers that match off the incremental adjacency plane and
        only need the pricing-side views (arrays, grid buckets).
        """
        annotated: List[Task] = []
        for task in tasks:
            if task.grid_index is None:
                task = task.with_grid(grid.locate(task.origin))
            annotated.append(task)
        worker_list = list(workers)
        if build_graph:
            graph = build_bipartite_graph(
                annotated,
                worker_list,
                metric=metric,
                grid=grid,
                use_index=use_index,
                max_degree=max_degree,
            )
        else:
            graph = _LazyBipartiteGraph(
                lambda: build_bipartite_graph(
                    annotated,
                    worker_list,
                    metric=metric,
                    grid=grid,
                    use_index=use_index,
                    max_degree=max_degree,
                )
            )
        arrays = PeriodArrays.build(annotated, workers, grid)
        return cls(
            period=period,
            grid=grid,
            tasks=annotated,
            workers=worker_list,
            graph=graph,
            # Instance-owned copies: the public dicts stay mutable without
            # writing through to the arrays' internal caches.
            tasks_by_grid={
                g: list(positions) for g, positions in arrays.tasks_by_grid.items()
            },
            workers_by_grid=dict(arrays.workers_by_grid),
            arrays=arrays,
        )

    @classmethod
    def from_columns(
        cls,
        period: int,
        grid: Grid,
        task_columns,
        workers: Sequence[Worker],
        metric: Union[str, DistanceMetric] = "euclidean",
        max_degree: Optional[int] = None,
        worker_grids: Optional[np.ndarray] = None,
        worker_x: Optional[np.ndarray] = None,
        worker_y: Optional[np.ndarray] = None,
        worker_radii: Optional[np.ndarray] = None,
    ) -> "PeriodInstance":
        """Build an instance straight from columnar task buffers.

        The zero-copy counterpart of :meth:`build`: the
        :class:`~repro.simulation.arena.TaskColumns` arrays become the
        :class:`PeriodArrays` view and feed the vectorised graph builder
        directly, and ``tasks`` is a lazy view materialising a
        :class:`~repro.market.entities.Task` only when indexed — results
        are value-identical to :meth:`build` on the materialised objects.

        Args:
            period: The period index.
            grid: The pricing grid.
            task_columns: The period's tasks as columns (cells must be
                annotated, as the generators guarantee).
            workers: Worker records (list or lazy view).
            metric: Distance metric name for the range constraint.
            max_degree: Optional per-task adjacency cap.
            worker_grids: Optional pre-located 1-based worker cells
                (computed via :meth:`~repro.spatial.grid.Grid.locate_many`
                when omitted).
            worker_x / worker_y / worker_radii: Optional pre-extracted
                worker coordinate arrays (extracted from ``workers`` when
                omitted); callers that partition one pool across shards
                pass slices so extraction happens once per period.
        """
        from repro.matching.bipartite import build_graph_from_arrays
        from repro.simulation.arena import LazyTasks

        num_workers = len(workers)
        if worker_x is None or worker_y is None or worker_radii is None:
            worker_x = np.fromiter(
                (w.location.x for w in workers), dtype=np.float64, count=num_workers
            )
            worker_y = np.fromiter(
                (w.location.y for w in workers), dtype=np.float64, count=num_workers
            )
            worker_radii = np.fromiter(
                (w.radius for w in workers), dtype=np.float64, count=num_workers
            )
        if worker_grids is None:
            if num_workers:
                worker_grids = grid.locate_many(worker_x, worker_y)
            else:
                worker_grids = np.zeros(0, dtype=np.int64)
        arrays = PeriodArrays(
            task_grids=task_columns.cells,
            distances=task_columns.distances,
            valuations=task_columns.valuations,
            has_valuation=task_columns.has_valuation,
            worker_grids=worker_grids,
        )
        tasks = LazyTasks(task_columns)
        graph = build_graph_from_arrays(
            tasks,
            workers,
            task_columns.xs,
            task_columns.ys,
            worker_x,
            worker_y,
            worker_radii,
            metric,
            grid,
            max_degree,
        )
        return cls(
            period=period,
            grid=grid,
            tasks=tasks,
            workers=workers,
            graph=graph,
            tasks_by_grid={
                g: list(positions) for g, positions in arrays.tasks_by_grid.items()
            },
            workers_by_grid=dict(arrays.workers_by_grid),
            arrays=arrays,
        )

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def grid_indices_with_tasks(self) -> List[int]:
        return sorted(self.tasks_by_grid.keys())

    def ensure_arrays(self) -> PeriodArrays:
        """The :class:`PeriodArrays` view, built lazily if missing.

        Instances created through :meth:`build` carry the arrays already;
        hand-constructed instances (tests, notebooks) get them on demand.
        """
        if self.arrays is None:
            self.arrays = PeriodArrays.build(self.tasks, self.workers, self.grid)
        return self.arrays

    def distances_in_grid(self, grid_index: int) -> List[float]:
        """Travel distances of the grid's tasks (non-increasing order).

        Instances built through :meth:`build` serve this from the cached,
        pre-sorted per-grid profiles of :class:`PeriodArrays` (the MAPS
        planner queries every grid with demand each period).
        Hand-constructed instances without arrays fall back to the
        caller-supplied ``tasks_by_grid``, so unannotated tasks keep
        working as before the arrays existed.
        """
        if self.arrays is not None:
            return self.arrays.distances_in_grid(grid_index)
        positions = self.tasks_by_grid.get(grid_index, [])
        return sorted((self.tasks[pos].distance for pos in positions), reverse=True)

    def grid_market(self, grid_index: int, acceptance_ratio=None) -> GridMarket:
        """Build a :class:`GridMarket` view of one grid."""
        market = GridMarket(
            grid_index=grid_index, distances=self.distances_in_grid(grid_index)
        )
        if acceptance_ratio is not None:
            market.acceptance_ratio = acceptance_ratio
        return market

    def price_per_task(self, grid_prices: Mapping[int, float], default: float = 0.0) -> List[float]:
        """Expand per-grid prices into a per-task price vector."""
        prices = []
        for task in self.tasks:
            prices.append(float(grid_prices.get(task.grid_index, default)))
        return prices


@dataclass
class GDPInstance:
    """A GDP problem instance with ground-truth demand for evaluation.

    Attributes:
        instance: The observable :class:`PeriodInstance`.
        acceptance: Ground-truth per-grid acceptance models (hidden from
            pricing strategies; used only to evaluate the objective and to
            drive the simulator's accept/reject decisions).
    """

    instance: PeriodInstance
    acceptance: PerGridAcceptance

    def acceptance_probabilities(self, grid_prices: Mapping[int, float]) -> List[float]:
        """True ``S^g(p_r)`` per task for a per-grid price vector."""
        probabilities = []
        for task in self.instance.tasks:
            price = float(grid_prices.get(task.grid_index, 0.0))
            probabilities.append(
                self.acceptance.acceptance_ratio(task.grid_index, price)
            )
        return probabilities

    def expected_total_revenue(
        self,
        grid_prices: Mapping[int, float],
        method: str = "auto",
        num_samples: int = 2000,
        rng: Optional[RandomState] = None,
    ) -> float:
        """Evaluate ``E[U(B^t) | P^t]`` for a per-grid price vector.

        Args:
            grid_prices: Unit price per grid index.
            method: ``exact`` (possible-world enumeration, tasks <= 20),
                ``monte-carlo``, or ``auto`` (exact when feasible).
            num_samples: Sample count for the Monte-Carlo estimator.
            rng: Generator for the Monte-Carlo estimator.
        """
        prices = self.instance.price_per_task(grid_prices)
        probabilities = self.acceptance_probabilities(grid_prices)
        if method not in ("auto", "exact", "monte-carlo"):
            raise ValueError(f"unknown method {method!r}")
        use_exact = method == "exact" or (
            method == "auto" and self.instance.num_tasks <= 12
        )
        if use_exact:
            return exact_expected_revenue(self.instance.graph, prices, probabilities)
        estimate, _ = monte_carlo_expected_revenue(
            self.instance.graph, prices, probabilities, num_samples=num_samples, rng=rng
        )
        return estimate


__all__ = ["PeriodArrays", "PeriodInstance", "GDPInstance"]
