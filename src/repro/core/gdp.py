"""The Global Dynamic Pricing (GDP) problem instance.

Definition 7: given the tasks ``R^t`` and workers ``W^t`` of a time period
(with unknown acceptance ratios), find one unit price per task such that
the expected total revenue — defined through possible-world semantics over
the probabilistic bipartite graph and maximum-weight matchings — is
maximised.  The platform actually quotes one price per *grid*, so a price
vector is represented as ``{grid_index: unit_price}``.

:class:`PeriodInstance` bundles everything a pricing strategy may inspect
for one period; :class:`GDPInstance` additionally carries the ground-truth
acceptance models so the objective can be evaluated exactly (for small
instances) or by Monte-Carlo sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.market.acceptance import AcceptanceModel, PerGridAcceptance
from repro.market.curves import GridMarket
from repro.market.entities import Task, Worker
from repro.matching.bipartite import BipartiteGraph, build_bipartite_graph
from repro.matching.possible_worlds import (
    exact_expected_revenue,
    monte_carlo_expected_revenue,
)
from repro.spatial.geometry import DistanceMetric
from repro.spatial.grid import Grid
from repro.utils.rng import RandomState


@dataclass
class PeriodInstance:
    """The observable state of one time period.

    Attributes:
        period: Time period index ``t``.
        grid: The pricing grid.
        tasks: Tasks issued in the period, annotated with ``grid_index``.
        workers: Workers available in the period.
        graph: Range-constrained bipartite graph between them.
        tasks_by_grid: Mapping grid index -> task positions (in ``tasks``).
        workers_by_grid: Mapping grid index -> number of workers located in
            the grid (used by the SDR/SDE/CappedUCB baselines, which reason
            per grid rather than through the bipartite graph).
    """

    period: int
    grid: Grid
    tasks: List[Task]
    workers: List[Worker]
    graph: BipartiteGraph
    tasks_by_grid: Dict[int, List[int]] = field(default_factory=dict)
    workers_by_grid: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        period: int,
        grid: Grid,
        tasks: Sequence[Task],
        workers: Sequence[Worker],
        metric: Union[str, DistanceMetric] = "euclidean",
        use_index: bool = True,
    ) -> "PeriodInstance":
        """Annotate tasks with their grid cell and build the bipartite graph."""
        annotated: List[Task] = []
        for task in tasks:
            if task.grid_index is None:
                task = task.with_grid(grid.locate(task.origin))
            annotated.append(task)
        graph = build_bipartite_graph(
            annotated, list(workers), metric=metric, grid=grid, use_index=use_index
        )
        tasks_by_grid: Dict[int, List[int]] = {}
        for pos, task in enumerate(annotated):
            tasks_by_grid.setdefault(task.grid_index, []).append(pos)  # type: ignore[arg-type]
        workers_by_grid: Dict[int, int] = {}
        for worker in workers:
            cell = grid.locate(worker.location)
            workers_by_grid[cell] = workers_by_grid.get(cell, 0) + 1
        return cls(
            period=period,
            grid=grid,
            tasks=annotated,
            workers=list(workers),
            graph=graph,
            tasks_by_grid=tasks_by_grid,
            workers_by_grid=workers_by_grid,
        )

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def grid_indices_with_tasks(self) -> List[int]:
        return sorted(self.tasks_by_grid.keys())

    def distances_in_grid(self, grid_index: int) -> List[float]:
        """Travel distances of the grid's tasks (non-increasing order)."""
        positions = self.tasks_by_grid.get(grid_index, [])
        return sorted((self.tasks[pos].distance for pos in positions), reverse=True)

    def grid_market(self, grid_index: int, acceptance_ratio=None) -> GridMarket:
        """Build a :class:`GridMarket` view of one grid."""
        market = GridMarket(
            grid_index=grid_index, distances=self.distances_in_grid(grid_index)
        )
        if acceptance_ratio is not None:
            market.acceptance_ratio = acceptance_ratio
        return market

    def price_per_task(self, grid_prices: Mapping[int, float], default: float = 0.0) -> List[float]:
        """Expand per-grid prices into a per-task price vector."""
        prices = []
        for task in self.tasks:
            prices.append(float(grid_prices.get(task.grid_index, default)))
        return prices


@dataclass
class GDPInstance:
    """A GDP problem instance with ground-truth demand for evaluation.

    Attributes:
        instance: The observable :class:`PeriodInstance`.
        acceptance: Ground-truth per-grid acceptance models (hidden from
            pricing strategies; used only to evaluate the objective and to
            drive the simulator's accept/reject decisions).
    """

    instance: PeriodInstance
    acceptance: PerGridAcceptance

    def acceptance_probabilities(self, grid_prices: Mapping[int, float]) -> List[float]:
        """True ``S^g(p_r)`` per task for a per-grid price vector."""
        probabilities = []
        for task in self.instance.tasks:
            price = float(grid_prices.get(task.grid_index, 0.0))
            probabilities.append(
                self.acceptance.acceptance_ratio(task.grid_index, price)
            )
        return probabilities

    def expected_total_revenue(
        self,
        grid_prices: Mapping[int, float],
        method: str = "auto",
        num_samples: int = 2000,
        rng: Optional[RandomState] = None,
    ) -> float:
        """Evaluate ``E[U(B^t) | P^t]`` for a per-grid price vector.

        Args:
            grid_prices: Unit price per grid index.
            method: ``exact`` (possible-world enumeration, tasks <= 20),
                ``monte-carlo``, or ``auto`` (exact when feasible).
            num_samples: Sample count for the Monte-Carlo estimator.
            rng: Generator for the Monte-Carlo estimator.
        """
        prices = self.instance.price_per_task(grid_prices)
        probabilities = self.acceptance_probabilities(grid_prices)
        if method not in ("auto", "exact", "monte-carlo"):
            raise ValueError(f"unknown method {method!r}")
        use_exact = method == "exact" or (
            method == "auto" and self.instance.num_tasks <= 12
        )
        if use_exact:
            return exact_expected_revenue(self.instance.graph, prices, probabilities)
        estimate, _ = monte_carlo_expected_revenue(
            self.instance.graph, prices, probabilities, num_samples=num_samples, rng=rng
        )
        return estimate


__all__ = ["PeriodInstance", "GDPInstance"]
