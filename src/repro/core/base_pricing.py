"""Base Pricing (Algorithm 1 of the paper).

Base pricing assumes sufficient supply and looks for the price that
maximises the per-grid revenue curve ``p * S^g(p)`` — the Myerson reserve
price of the grid — using only accept/reject feedback:

1. build the geometric candidate ladder ``p_min, (1+alpha) p_min, ...``;
2. offer each candidate price ``p`` to ``h(p)`` requesters of the grid,
   where ``h(p)`` is the Hoeffding sample size that makes the empirical
   revenue point accurate to ``eps/2`` with probability ``1 - delta/k``;
3. keep the candidate maximising ``p * S_hat(p)`` (ties towards the
   smaller price) as the grid's estimate ``p^g_m``;
4. return the base price ``p_b`` as the arithmetic mean of all ``p^g_m``.

The interaction with requesters is abstracted behind the
:class:`ProbeOracle` protocol, which the simulator implements against the
ground-truth acceptance models (representing offers to historical
requesters), and which tests implement with deterministic tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.learning.estimator import GridAcceptanceEstimator
from repro.learning.sampling import (
    hoeffding_sample_size,
    num_candidate_prices,
    price_ladder,
)


class ProbeOracle(Protocol):
    """Source of accept/reject feedback used during calibration.

    The oracle represents offering a price to requesters of a grid (in the
    paper: "use the price p for h(p) times and observe the acceptance
    ratio").  Implementations may be backed by a simulator, by replayed
    historical logs, or by a fixed table in tests.
    """

    def offer(self, grid_index: int, price: float, count: int) -> int:
        """Offer ``price`` to ``count`` requesters of ``grid_index``.

        Returns:
            The number of requesters who accepted.
        """
        ...


@dataclass(frozen=True)
class BasePricingConfig:
    """Parameters of Algorithm 1.

    Attributes:
        p_min: Lower bound of the candidate prices.
        p_max: Upper bound of the candidate prices.
        alpha: Ladder multiplier; successive candidates differ by ``1+alpha``.
        epsilon: Target accuracy of the revenue-curve estimates.
        delta: Failure probability budget of the Hoeffding sampling.
        max_samples_per_price: Optional cap on ``h(p)``; real platforms
            cannot probe hundreds of requesters per price in every grid, so
            the experiments cap the calibration budget (documented in
            EXPERIMENTS.md).  ``None`` uses the uncapped Hoeffding size.
    """

    p_min: float = 1.0
    p_max: float = 5.0
    alpha: float = 0.5
    epsilon: float = 0.2
    delta: float = 0.01
    max_samples_per_price: Optional[int] = None

    def __post_init__(self) -> None:
        if self.p_min <= 0:
            raise ValueError("p_min must be positive")
        if self.p_max < self.p_min:
            raise ValueError("p_max must be at least p_min")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must lie in (0, 1)")
        if self.max_samples_per_price is not None and self.max_samples_per_price <= 0:
            raise ValueError("max_samples_per_price must be positive when given")

    @property
    def candidate_prices(self) -> List[float]:
        return price_ladder(self.p_min, self.p_max, self.alpha)

    @property
    def num_candidates(self) -> int:
        return num_candidate_prices(self.p_min, self.p_max, self.alpha)

    def samples_for(self, price: float) -> int:
        """``h(p)`` with the optional cap applied."""
        size = hoeffding_sample_size(price, self.epsilon, self.num_candidates, self.delta)
        if self.max_samples_per_price is not None:
            size = min(size, self.max_samples_per_price)
        return size


@dataclass
class BasePricingResult:
    """Output of Algorithm 1.

    Attributes:
        base_price: ``p_b`` — the arithmetic mean of the per-grid estimates.
        grid_reserve_prices: Estimated Myerson reserve price per grid.
        estimators: The acceptance statistics gathered per grid (reusable
            by MAPS as a warm start for its UCB index).
        total_probes: Total number of price offers issued by calibration.
    """

    base_price: float
    grid_reserve_prices: Dict[int, float]
    estimators: Dict[int, GridAcceptanceEstimator] = field(default_factory=dict)
    total_probes: int = 0

    def reserve_price(self, grid_index: int) -> float:
        return self.grid_reserve_prices[grid_index]


def estimate_grid_reserve_price(
    grid_index: int,
    oracle: ProbeOracle,
    config: BasePricingConfig,
) -> Tuple[float, GridAcceptanceEstimator, int]:
    """Estimate the Myerson reserve price of one grid (Alg. 1 lines 3–9).

    Returns:
        ``(reserve_price, estimator, probes_used)``.
    """
    ladder = config.candidate_prices
    estimator = GridAcceptanceEstimator(grid_index, ladder)
    probes = 0
    for price in ladder:
        count = config.samples_for(price)
        acceptances = oracle.offer(grid_index, price, count)
        if not 0 <= acceptances <= count:
            raise ValueError(
                f"oracle returned {acceptances} acceptances for {count} offers"
            )
        estimator.record_batch(price, count, acceptances)
        probes += count
    reserve_price, _ = estimator.best_revenue_price()
    # The algorithm clamps the estimate into [p_min, p_max]; the ladder is
    # already inside that interval, so clamping is a no-op kept for clarity.
    reserve_price = min(config.p_max, max(config.p_min, reserve_price))
    return reserve_price, estimator, probes


def run_base_pricing(
    grid_indices: Sequence[int],
    oracle: ProbeOracle,
    config: Optional[BasePricingConfig] = None,
) -> BasePricingResult:
    """Run Algorithm 1 over all grids and return the base price ``p_b``.

    Args:
        grid_indices: The grids to calibrate (typically every grid that has
            historical demand; grids never observed simply inherit the
            average).
        oracle: Accept/reject feedback source.
        config: Algorithm parameters (paper defaults when omitted).

    Returns:
        The :class:`BasePricingResult` with ``p_b`` and per-grid detail.

    Raises:
        ValueError: if ``grid_indices`` is empty.
    """
    if not grid_indices:
        raise ValueError("grid_indices must be non-empty")
    config = config or BasePricingConfig()
    reserve_prices: Dict[int, float] = {}
    estimators: Dict[int, GridAcceptanceEstimator] = {}
    total_probes = 0
    for grid_index in grid_indices:
        reserve, estimator, probes = estimate_grid_reserve_price(
            grid_index, oracle, config
        )
        reserve_prices[grid_index] = reserve
        estimators[grid_index] = estimator
        total_probes += probes
    base_price = sum(reserve_prices.values()) / len(reserve_prices)
    return BasePricingResult(
        base_price=base_price,
        grid_reserve_prices=reserve_prices,
        estimators=estimators,
        total_probes=total_probes,
    )


__all__ = [
    "ProbeOracle",
    "BasePricingConfig",
    "BasePricingResult",
    "estimate_grid_reserve_price",
    "run_base_pricing",
]
