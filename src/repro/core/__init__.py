"""Core contribution of the paper: the GDP problem, Base Pricing and MAPS.

* :mod:`repro.core.gdp` — the Global Dynamic Pricing problem instance and
  exact/Monte-Carlo evaluation of the expected total revenue objective;
* :mod:`repro.core.base_pricing` — Algorithm 1: Hoeffding-sampled
  estimation of per-grid Myerson reserve prices and the base price ``p_b``;
* :mod:`repro.core.maximizer` — Algorithm 3: the UCB-scored search for the
  price maximising the per-grid revenue approximation given a supply level;
* :mod:`repro.core.maps` — Algorithm 2: the matching-based dynamic pricing
  planner that allocates dependent supply across grids with a max-heap of
  marginal gains and an incrementally grown pre-matching.
"""

from repro.core.gdp import GDPInstance, PeriodArrays, PeriodInstance
from repro.core.base_pricing import (
    BasePricingConfig,
    BasePricingResult,
    ProbeOracle,
    run_base_pricing,
)
from repro.core.maximizer import MaximizerResult, calculate_maximizer
from repro.core.maps import MAPSPlan, MAPSPlanner

__all__ = [
    "GDPInstance",
    "PeriodArrays",
    "PeriodInstance",
    "BasePricingConfig",
    "BasePricingResult",
    "ProbeOracle",
    "run_base_pricing",
    "MaximizerResult",
    "calculate_maximizer",
    "MAPSPlan",
    "MAPSPlanner",
]
